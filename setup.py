"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file only enables legacy
``pip install -e . --no-use-pep517`` editable installs in offline
environments that lack the ``wheel`` package (PEP 660 editable wheels need
it).  Regular ``pip install -e .`` ignores this file's logic entirely.
"""

from setuptools import setup

setup()
