"""The rule-based plan rewriter.

:func:`rewrite_plan` normalizes a canonical plan further with algebraic
rules, applied bottom-up to a fixpoint:

* **constraint pushdown** — a conjunct that is a bare constraint atom whose
  variables are covered by a sibling relation scan is pushed *into* that
  scan (the conjunction of a generalized relation and a constraint is again
  a generalized relation, so the filtered scan is evaluated symbolically in
  one step and forms one shareable subplan).  Only covered filters move:
  pushing a filter that introduces new variables would reorder the lowered
  result's coordinates.
* **empty/absorbing-operand elimination** — an empty conjunct empties the
  conjunction, empty disjuncts are dropped, ``A \\ ∅ = A``, ``∅ \\ B = ∅``
  and ``A \\ A = ∅`` (structurally, by digest).  With a database at hand,
  a scan of a syntactically empty stored relation is recognized as empty.
* **disjunct/conjunct dedup and unwrapping** — re-applied after the other
  rules so their outputs stay canonical (via
  :func:`repro.plan.canonical.canonicalize`).

:func:`intern_plan` is the CSE pass: it rebuilds a tree (or a forest) so
that structurally identical subtrees — same ``key``, i.e. same lowering —
are the *same* :class:`~repro.plan.nodes.PlanNode` object.  Physical
lowering memoizes on object identity, so an interned forest plans each
shared subexpression once; :func:`shared_subplans` reports which digests
appear under several roots (the candidates the service estimates once per
batch).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.constraints.database import ConstraintDatabase
from repro.plan.canonical import canonicalize
from repro.plan.nodes import (
    Conjoin,
    ConstraintFilter,
    Disjoin,
    EmptyPlan,
    NegateDiff,
    PlanNode,
    Project,
    RelationScan,
    walk,
)


def rewrite_plan(
    plan: PlanNode, database: ConstraintDatabase | None = None
) -> PlanNode:
    """Apply the rewrite rules bottom-up until the plan stops changing.

    The rule set is normalizing: constraint pushdown into relation scans,
    empty/absorbing-operand elimination (``A \\ A = ∅``, empty disjuncts
    drop) and duplicate collapse, iterated to a fixpoint.  With a database
    the rules may evaluate pushed-down filters symbolically; without one
    only the structural rules fire.
    """
    current = canonicalize(plan)
    for _ in range(32):  # fixpoint guard; rules strictly shrink the tree
        rewritten = canonicalize(_rewrite_once(current, database))
        if rewritten.key == current.key:
            return rewritten
        current = rewritten
    return current


def intern_plan(
    plan: PlanNode, pool: dict[str, PlanNode] | None = None
) -> PlanNode:
    """Rebuild the tree sharing identical subtrees as single node objects.

    ``pool`` maps structural keys to their representative node; passing the
    same pool across several calls interns a whole forest, so a subtree
    repeated across queries is one shared object.
    """
    if pool is None:
        pool = {}
    existing = pool.get(plan.key)
    if existing is not None:
        return existing
    if isinstance(plan, Conjoin):
        rebuilt: PlanNode = Conjoin([intern_plan(op, pool) for op in plan.operands])
    elif isinstance(plan, Disjoin):
        rebuilt = Disjoin([intern_plan(op, pool) for op in plan.operands])
    elif isinstance(plan, NegateDiff):
        rebuilt = NegateDiff(
            intern_plan(plan.minuend, pool), intern_plan(plan.subtrahend, pool)
        )
    elif isinstance(plan, Project):
        rebuilt = Project(intern_plan(plan.operand, pool), plan.drop)
    else:
        rebuilt = plan
    return pool.setdefault(rebuilt.key, rebuilt)


def shared_subplans(roots: Sequence[PlanNode]) -> dict[str, PlanNode]:
    """Digest → representative node for subplans appearing under several roots.

    Only *proper* sharing counts: a digest must occur under at least two
    distinct roots (a repeated subtree inside one query is already shared by
    interning).  Roots themselves participate — two queries with a common
    root digest share trivially, but that case is the whole-query cache's
    job, so root digests are only reported when they also occur as a strict
    subplan elsewhere.
    """
    first_root: dict[str, int] = {}
    strict_subplan: set[str] = set()
    shared: dict[str, PlanNode] = {}
    for index, root in enumerate(roots):
        for position, node in enumerate(walk(root)):
            if isinstance(node, (EmptyPlan, ConstraintFilter)):
                continue  # nothing worth caching: free to recompute
            if position > 0:
                strict_subplan.add(node.digest)
            seen_at = first_root.setdefault(node.digest, index)
            if seen_at != index:
                shared.setdefault(node.digest, node)
    return {
        digest: node for digest, node in shared.items() if digest in strict_subplan
    }


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _rewrite_once(
    plan: PlanNode, database: ConstraintDatabase | None
) -> PlanNode:
    if isinstance(plan, RelationScan):
        if database is not None and _scan_is_empty(plan, database):
            return EmptyPlan(plan.free_variables())
        return plan
    if isinstance(plan, (ConstraintFilter, EmptyPlan)):
        return plan
    if isinstance(plan, Conjoin):
        operands = [_rewrite_once(op, database) for op in plan.operands]
        return Conjoin(_push_filters(operands))
    if isinstance(plan, Disjoin):
        return Disjoin([_rewrite_once(op, database) for op in plan.operands])
    if isinstance(plan, NegateDiff):
        return NegateDiff(
            _rewrite_once(plan.minuend, database),
            _rewrite_once(plan.subtrahend, database),
        )
    if isinstance(plan, Project):
        return Project(_rewrite_once(plan.operand, database), plan.drop)
    raise TypeError(f"unsupported plan node {plan!r}")


def _push_filters(operands: Iterable[PlanNode]) -> list[PlanNode]:
    """Push covered constraint conjuncts into their sibling relation scans.

    Each filter moves into the *first* scan whose argument set covers the
    filter's variables; uncovered filters stay where they are.  The
    conjunction's value and variable order are unchanged — the scan denotes
    its relation intersected with the filters, and no filter introduces a
    variable its scan does not already bind.
    """
    operands = list(operands)
    scans = [
        (index, op) for index, op in enumerate(operands) if isinstance(op, RelationScan)
    ]
    if not scans:
        return operands
    pushed: dict[int, list] = {}
    remaining: list[tuple[int, PlanNode]] = []
    for index, op in enumerate(operands):
        if isinstance(op, ConstraintFilter):
            variables = set(op.constraint.variables())
            target = next(
                (
                    scan_index
                    for scan_index, scan in scans
                    if variables <= set(scan.arguments)
                ),
                None,
            )
            if target is not None:
                pushed.setdefault(target, []).append(op.constraint)
                continue
        remaining.append((index, op))
    if not pushed:
        return operands
    rebuilt: list[PlanNode] = []
    remaining_map = dict(remaining)
    for index, op in enumerate(operands):
        if index in pushed:
            scan = operands[index]
            assert isinstance(scan, RelationScan)
            rebuilt.append(
                RelationScan(
                    scan.name, scan.arguments, (*scan.filters, *pushed[index])
                )
            )
        elif index in remaining_map:
            rebuilt.append(remaining_map[index])
    return rebuilt


def _scan_is_empty(scan: RelationScan, database: ConstraintDatabase) -> bool:
    """Is the scanned stored relation syntactically empty?"""
    if scan.name not in database:
        return False
    relation = database.relation(scan.name)
    return all(disjunct.is_syntactically_empty() for disjunct in relation.disjuncts)


def plan_statistics(roots: Sequence[PlanNode]) -> Mapping[str, int]:
    """Node and sharing counts for a forest (used by explain/metrics)."""
    total = 0
    digests: dict[str, int] = {}
    for root in roots:
        for node in walk(root):
            total += 1
            digests[node.digest] = digests.get(node.digest, 0) + 1
    return {
        "nodes": total,
        "distinct": len(digests),
        "repeated": sum(1 for count in digests.values() if count > 1),
    }
