"""Canonicalization: query ASTs become normalized logical plans.

:func:`build_plan` translates an AST into the :mod:`repro.plan.nodes` IR and
normalizes it in the same pass:

* nested conjunctions/disjunctions are **flattened** (``(a AND b) AND c`` and
  ``a AND (b AND c)`` build the same plan);
* structurally duplicate operands of ``AND``/``OR`` are **de-duplicated** by
  content digest, keeping the first occurrence (idempotence — this is also
  the fix for the union generator double-lowering duplicate disjuncts);
* **double negation** is eliminated and a negated constraint atom is pushed
  into the atom (``¬(t ≤ 0)`` becomes the filter ``t > 0``);
* every negated conjunct is collected into one :class:`~repro.plan.nodes.NegateDiff`
  subtrahend (``A ∧ ¬B ∧ ¬C`` becomes ``A \\ (B ∪ C)``);
* the bound-variable tuple of a projection is sorted
  (``EXISTS x, y`` = ``EXISTS y, x``);
* single-operand ``AND``/``OR`` wrappers are unwrapped.

Commutative operand *order* is normalized in the content hash, not in the
tree: every node's ``digest`` sorts the operand digests of ``AND``/``OR``
(see :mod:`repro.plan.nodes`), so plans that differ only in operand order
share the digest, while the tree keeps the written order that physical
lowering follows (it decides the variable order of the lowered result).

:func:`canonicalize` re-applies the same normal form to an existing plan —
it is idempotent, and building from any operand permutation of a query
yields plans with equal digests (property-tested in ``tests/plan``).
"""

from __future__ import annotations

from repro.plan.nodes import (
    Conjoin,
    ConstraintFilter,
    Disjoin,
    EmptyPlan,
    NegateDiff,
    PlanNode,
    Project,
    RelationScan,
)
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query
from repro.queries.compiler import CompilationError


def build_plan(query: Query) -> PlanNode:
    """Translate a query AST into a normalized logical plan.

    Flattens nested ``AND``/``OR`` chains, collapses structural duplicates,
    cancels double negation and collects negated conjuncts into one
    difference node — so structurally equivalent queries build plans with
    equal digests.  ``build_plan(q).digest == build_plan(q2).digest``
    whenever ``q`` and ``q2`` differ only by operand order or nesting.
    """
    if isinstance(query, QRelation):
        return RelationScan(query.name, query.arguments)
    if isinstance(query, QConstraint):
        return ConstraintFilter(query.constraint)
    if isinstance(query, QNot):
        inner = _strip_negations(query)
        if isinstance(inner, Query):
            return build_plan(inner)
        # An odd number of negations with no enclosing conjunction: the
        # complement is not well-bounded, so there is no plan shape for it.
        raise CompilationError(
            "negation is only supported inside a conjunction (as a difference); "
            "top-level complements are not well-bounded"
        )
    if isinstance(query, QAnd):
        return _build_conjunction(query)
    if isinstance(query, QOr):
        operands = [
            op
            for op in _dedup(build_plan(op) for op in _flatten_or(query))
            if not isinstance(op, EmptyPlan)
        ]
        if not operands:
            return EmptyPlan(query.free_variables())
        if len(operands) == 1:
            return operands[0]
        return Disjoin(operands)
    if isinstance(query, QExists):
        operand = build_plan(query.operand)
        drop = tuple(
            name for name in query.variables if name in set(operand.free_variables())
        )
        if not drop:
            # Quantifying variables the body does not mention is a no-op.
            return operand
        if isinstance(operand, EmptyPlan):
            return EmptyPlan(
                tuple(n for n in operand.free_variables() if n not in set(drop))
            )
        if isinstance(operand, Project):
            # EX[x](EX[y](p)) = EX[x,y](p)
            return Project(operand.operand, operand.drop + tuple(drop))
        return Project(operand, drop)
    raise TypeError(f"unsupported query node {query!r}")


def canonicalize(plan: PlanNode) -> PlanNode:
    """Re-normalize an existing plan (idempotent: a built plan is a fixpoint)."""
    if isinstance(plan, (RelationScan, ConstraintFilter, EmptyPlan)):
        return plan
    if isinstance(plan, Conjoin):
        operands = _dedup(_flatten_plan(plan, Conjoin, canonicalize))
        if any(isinstance(op, EmptyPlan) for op in operands):
            return EmptyPlan(plan.free_variables())
        return operands[0] if len(operands) == 1 else Conjoin(operands)
    if isinstance(plan, Disjoin):
        operands = [
            op
            for op in _dedup(_flatten_plan(plan, Disjoin, canonicalize))
            if not isinstance(op, EmptyPlan)
        ]
        if not operands:
            return EmptyPlan(plan.free_variables())
        return operands[0] if len(operands) == 1 else Disjoin(operands)
    if isinstance(plan, NegateDiff):
        minuend = canonicalize(plan.minuend)
        subtrahend = canonicalize(plan.subtrahend)
        if isinstance(subtrahend, EmptyPlan):
            return minuend
        if isinstance(minuend, EmptyPlan) or minuend.digest == subtrahend.digest:
            return EmptyPlan(plan.free_variables())
        return NegateDiff(minuend, subtrahend)
    if isinstance(plan, Project):
        operand = canonicalize(plan.operand)
        if isinstance(operand, EmptyPlan):
            return EmptyPlan(plan.free_variables())
        if isinstance(operand, Project):
            return Project(operand.operand, operand.drop + plan.drop)
        return Project(operand, plan.drop)
    raise TypeError(f"unsupported plan node {plan!r}")


def plan_digest(query: Query) -> str:
    """The canonical content digest of a query's logical plan."""
    return build_plan(query).digest


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _strip_negations(query: QNot) -> Query | None:
    """Resolve a negation chain: a query for even depth, ``None`` for odd.

    ``¬¬x`` collapses to ``x``; an odd chain ending in a constraint atom is
    pushed into the atom (``¬(t ≤ 0)`` = ``t > 0``), any other odd chain has
    no stand-alone plan form.
    """
    negated = False
    node: Query = query
    while isinstance(node, QNot):
        negated = not negated
        node = node.operand
    if not negated:
        return node
    if isinstance(node, QConstraint):
        return QConstraint(node.constraint.negate())
    return None


def _flatten_and(query: QAnd):
    for operand in query.operands:
        if isinstance(operand, QAnd):
            yield from _flatten_and(operand)
        else:
            yield operand


def _flatten_or(query: QOr):
    for operand in query.operands:
        if isinstance(operand, QOr):
            yield from _flatten_or(operand)
        else:
            yield operand


def _flatten_plan(plan: PlanNode, node_type: type, transform):
    for operand in plan.operands:  # type: ignore[attr-defined]
        normalized = transform(operand)
        if isinstance(normalized, node_type):
            yield from normalized.operands
        else:
            yield normalized


def _dedup(operands) -> list[PlanNode]:
    """Drop structural duplicates (by digest), keeping first-occurrence order."""
    unique: dict[str, PlanNode] = {}
    for operand in operands:
        unique.setdefault(operand.digest, operand)
    return list(unique.values())


def _build_conjunction(query: QAnd) -> PlanNode:
    """Split a conjunction into positives and a collected subtrahend."""
    positives: list[PlanNode] = []
    negatives: list[PlanNode] = []
    for operand in _flatten_and(query):
        if isinstance(operand, QNot):
            resolved = _strip_negations(operand)
            if resolved is not None:
                positives.append(build_plan(resolved))
            else:
                negatives.append(build_plan(_unwrap_odd(operand)))
        else:
            positives.append(build_plan(operand))
    positives = _dedup(positives)
    if not positives:
        raise CompilationError("a conjunction needs at least one positive operand")
    if any(isinstance(op, EmptyPlan) for op in positives):
        return EmptyPlan(query.free_variables())
    minuend = positives[0] if len(positives) == 1 else Conjoin(positives)
    negatives = [op for op in _dedup(negatives) if not isinstance(op, EmptyPlan)]
    if not negatives:
        return minuend
    subtrahend = negatives[0] if len(negatives) == 1 else Disjoin(negatives)
    if minuend.digest == subtrahend.digest:
        # A ∧ ¬A is syntactically empty.
        return EmptyPlan(query.free_variables())
    return NegateDiff(minuend, subtrahend)


def _unwrap_odd(query: QNot) -> Query:
    """The innermost operand of an odd negation chain (the set being removed)."""
    node: Query = query
    while isinstance(node, QNot):
        inner = node.operand
        if isinstance(inner, QNot):
            node = inner.operand
        else:
            return inner
    return node
