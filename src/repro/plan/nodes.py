"""The logical plan IR: immutable, content-hashed operator trees.

A :class:`PlanNode` is the seam between the query AST and the physical
evaluation machinery.  The AST mirrors what the user *wrote*; the plan
mirrors what will be *evaluated*:

* ``RelationScan``    — read a stored generalized relation (optionally with
                        constraint atoms pushed down into the scan);
* ``ConstraintFilter``— a bare linear constraint atom;
* ``Conjoin``         — n-ary conjunction (set intersection);
* ``Disjoin``         — n-ary disjunction (set union);
* ``NegateDiff``      — ``minuend ∧ ¬subtrahend``, the only negation shape
                        the sampling route supports (Proposition 4.2's
                        difference generator);
* ``Project``         — existential quantification (Theorem 4.3);
* ``EmptyPlan``       — the syntactically empty set, produced by the
                        rewriter's empty/absorbing-operand elimination.

Every node eagerly computes two identities:

``key``
    A structural rendering that keeps the *written* operand order.  Physical
    lowering follows this order (it decides variable/column order of the
    lowered result), and CSE interns subtrees on it.

``digest``
    A SHA-256 content hash in which the operands of the commutative
    operators are *sorted*, so plans that differ only in operand order —
    or in duplicated operands, after canonicalization — share the digest.
    The service derives cache keys and subplan-sharing identities from it:
    volumes are invariant under both operand order and coordinate
    permutation, so a digest match is sufficient for value reuse.

Nodes are immutable; all normalization lives in
:mod:`repro.plan.canonical` and :mod:`repro.plan.rewrite`, which build new
trees instead of mutating.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

from repro.constraints.atoms import AtomicConstraint
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query
from repro.queries.compiler import CompilationError

__all__ = [
    "CompilationError",
    "Conjoin",
    "ConstraintFilter",
    "Disjoin",
    "EmptyPlan",
    "NegateDiff",
    "PlanNode",
    "Project",
    "RelationScan",
    "referenced_relations",
    "walk",
]


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()


def _merge_names(parts: Iterable[tuple[str, ...]]) -> tuple[str, ...]:
    ordered: list[str] = []
    for part in parts:
        for name in part:
            if name not in ordered:
                ordered.append(name)
    return tuple(ordered)


class PlanNode:
    """Base class of logical plan nodes (immutable, content-hashed).

    A plan is a tree of relation scans, constraint filters, conjunctions,
    disjunctions, differences and projections.  Every node carries two
    stable identities: ``key`` (structural, order-preserving) and
    ``digest`` (SHA-256 content hash with commutative operand order
    normalized — ``A AND B`` and ``B AND A`` share a digest).  The digest
    is what the service layer's cache keys, coalescing and subplan sharing
    address.  Example::

        plan = build_plan(parse_query("Zone(x, y) and x <= 1", database))
        plan.digest  # 64 hex chars, stable across processes
    """

    __slots__ = ("key", "digest")

    #: Short operator tag used by ``explain`` renderings.
    kind: str = "?"

    def children(self) -> tuple["PlanNode", ...]:
        """The operand subplans, in written (lowering) order."""
        return ()

    def free_variables(self) -> tuple[str, ...]:
        """Free variables of the subplan, in lowering order."""
        raise NotImplementedError

    def to_query(self) -> Query:
        """Reconstruct an equivalent query AST (used for symbolic leaves)."""
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PlanNode) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.key})"


class RelationScan(PlanNode):
    """Scan a stored relation ``R(v_1, ..., v_k)``, with pushed-down filters.

    ``filters`` holds constraint atoms the rewriter pushed into the scan:
    the scan denotes the relation intersected with every filter, evaluated
    symbolically in one step (the conjunction of generalized tuples is again
    a generalized tuple, so no sampling is spent on it).
    """

    __slots__ = ("name", "arguments", "filters")

    kind = "scan"

    def __init__(
        self,
        name: str,
        arguments: Sequence[str],
        filters: Sequence[AtomicConstraint] = (),
    ) -> None:
        self.name = name
        self.arguments = tuple(arguments)
        if not self.arguments:
            raise ValueError("relation scans need at least one argument")
        # Filters keep their *written* (first-occurrence, de-duplicated)
        # order: lowering evaluates them in that order, which decides the
        # variable order of the lowered relation.  The digest sorts them — a
        # conjunction of constraints is order-insensitive as a set.
        unique = {str(constraint): constraint for constraint in filters}
        self.filters = tuple(unique.values())
        prefix = f"R:{self.name}({','.join(self.arguments)})"
        self.key = prefix
        if self.filters:
            self.key += "|F:" + ";".join(unique)
        digest_payload = prefix
        if self.filters:
            digest_payload += "|F:" + ";".join(sorted(unique))
        self.digest = _digest(digest_payload)

    def free_variables(self) -> tuple[str, ...]:
        extra = (tuple(sorted(f.variables())) for f in self.filters)
        return _merge_names((self.arguments, *extra))

    def to_query(self) -> Query:
        atom = QRelation(self.name, self.arguments)
        if not self.filters:
            return atom
        return QAnd((atom, *(QConstraint(constraint) for constraint in self.filters)))


class ConstraintFilter(PlanNode):
    """A bare linear constraint atom."""

    __slots__ = ("constraint",)

    kind = "filter"

    def __init__(self, constraint: AtomicConstraint) -> None:
        self.constraint = constraint
        self.key = f"C:{constraint}"
        self.digest = _digest(self.key)

    def free_variables(self) -> tuple[str, ...]:
        return tuple(sorted(self.constraint.variables()))

    def to_query(self) -> Query:
        return QConstraint(self.constraint)


class Conjoin(PlanNode):
    """N-ary conjunction of subplans."""

    __slots__ = ("operands",)

    kind = "conjoin"

    def __init__(self, operands: Sequence[PlanNode]) -> None:
        self.operands = tuple(operands)
        if not self.operands:
            raise ValueError("Conjoin requires at least one operand")
        self.key = "AND(" + ";".join(op.key for op in self.operands) + ")"
        self.digest = _digest(
            "AND(" + ";".join(sorted(op.digest for op in self.operands)) + ")"
        )

    def children(self) -> tuple[PlanNode, ...]:
        return self.operands

    def free_variables(self) -> tuple[str, ...]:
        return _merge_names(op.free_variables() for op in self.operands)

    def to_query(self) -> Query:
        return QAnd(tuple(op.to_query() for op in self.operands))


class Disjoin(PlanNode):
    """N-ary disjunction of subplans."""

    __slots__ = ("operands",)

    kind = "disjoin"

    def __init__(self, operands: Sequence[PlanNode]) -> None:
        self.operands = tuple(operands)
        if not self.operands:
            raise ValueError("Disjoin requires at least one operand")
        self.key = "OR(" + ";".join(op.key for op in self.operands) + ")"
        self.digest = _digest(
            "OR(" + ";".join(sorted(op.digest for op in self.operands)) + ")"
        )

    def children(self) -> tuple[PlanNode, ...]:
        return self.operands

    def free_variables(self) -> tuple[str, ...]:
        return _merge_names(op.free_variables() for op in self.operands)

    def to_query(self) -> Query:
        return QOr(tuple(op.to_query() for op in self.operands))


class NegateDiff(PlanNode):
    """``minuend ∧ ¬subtrahend`` — the difference generator's shape.

    The subtrahend only ever contributes a membership oracle; the rewriter
    collects every negated conjunct of a conjunction into one subtrahend
    (a :class:`Disjoin` when there are several), mirroring
    ``A ∧ ¬B ∧ ¬C = A \\ (B ∪ C)``.
    """

    __slots__ = ("minuend", "subtrahend")

    kind = "negate-diff"

    def __init__(self, minuend: PlanNode, subtrahend: PlanNode) -> None:
        self.minuend = minuend
        self.subtrahend = subtrahend
        self.key = f"DIFF({minuend.key};{subtrahend.key})"
        # Order matters: the difference is not commutative.
        self.digest = _digest(f"DIFF({minuend.digest};{subtrahend.digest})")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.minuend, self.subtrahend)

    def free_variables(self) -> tuple[str, ...]:
        return _merge_names(
            (self.minuend.free_variables(), self.subtrahend.free_variables())
        )

    def to_query(self) -> Query:
        positives = (
            self.minuend.operands
            if isinstance(self.minuend, Conjoin)
            else (self.minuend,)
        )
        negatives = (
            self.subtrahend.operands
            if isinstance(self.subtrahend, Disjoin)
            else (self.subtrahend,)
        )
        return QAnd(
            tuple(op.to_query() for op in positives)
            + tuple(QNot(op.to_query()) for op in negatives)
        )


class Project(PlanNode):
    """Existential quantification: drop the ``drop`` variables of the child."""

    __slots__ = ("operand", "drop")

    kind = "project"

    def __init__(self, operand: PlanNode, drop: Sequence[str]) -> None:
        self.operand = operand
        self.drop = tuple(sorted(set(drop)))
        if not self.drop:
            raise ValueError("Project requires at least one variable to drop")
        self.key = f"EX[{','.join(self.drop)}]({operand.key})"
        self.digest = _digest(f"EX[{','.join(self.drop)}]({operand.digest})")

    def children(self) -> tuple[PlanNode, ...]:
        return (self.operand,)

    def free_variables(self) -> tuple[str, ...]:
        dropped = set(self.drop)
        return tuple(
            name for name in self.operand.free_variables() if name not in dropped
        )

    def to_query(self) -> Query:
        return QExists(self.drop, self.operand.to_query())


class EmptyPlan(PlanNode):
    """The syntactically empty set (produced by the rewriter, never lowered)."""

    __slots__ = ("variables",)

    kind = "empty"

    def __init__(self, variables: Sequence[str] = ()) -> None:
        self.variables = tuple(variables)
        self.key = f"EMPTY[{','.join(self.variables)}]"
        self.digest = _digest(self.key)

    def free_variables(self) -> tuple[str, ...]:
        return self.variables

    def to_query(self) -> Query:
        raise CompilationError("the empty plan has no query form")


def walk(node: PlanNode) -> Iterable[PlanNode]:
    """Pre-order traversal of a plan tree."""
    yield node
    for child in node.children():
        yield from walk(child)


def referenced_relations(node: PlanNode) -> tuple[str, ...]:
    """The stored-relation names a subtree scans, sorted and de-duplicated.

    This is the data-dependency footprint of a subplan: its value (and its
    content-addressed sample streams) depends on exactly these relations'
    instances, so a cache entry keyed by the subtree's digest stays valid
    under any mutation that leaves all of them untouched.  The service
    derives plan-aware cache keys and incremental invalidation from it —
    a pure-constraint subtree returns ``()`` and its entries survive every
    database mutation.
    """
    return tuple(
        sorted({sub.name for sub in walk(node) if isinstance(sub, RelationScan)})
    )
