"""Plan explanation: the canonical plan with per-node route/cost annotations.

:func:`explain_plan` runs the front half of the compiler — build, rewrite,
intern — and then *annotates* the plan instead of lowering it: every node is
tagged with the route physical lowering would choose (symbolic evaluation,
union/intersection/difference/projection generator), a syntactic disjunct
estimate (the cost driver of the symbolic-vs-observable decision), its
dimension and its content digest.  Shared subtrees (same node object after
CSE interning) are marked, so the output makes visible exactly what the
service's subplan cache can reuse.

The rendering is deliberately plain text — it is what
``QueryEngine.explain`` and ``examples/plan_demo.py`` print::

    disjoin                [union-generator]    dim=2 disjuncts~10 digest=5c1f20a9
      scan Z               [symbolic]           dim=2 disjuncts~9  digest=e3b1c763  (shared)
      scan E1              [symbolic]           dim=2 disjuncts~1  digest=9a41d2efa
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.constraints.database import ConstraintDatabase
from repro.plan.canonical import build_plan
from repro.plan.lowering import LoweringOptions
from repro.plan.nodes import (
    Conjoin,
    ConstraintFilter,
    Disjoin,
    EmptyPlan,
    NegateDiff,
    PlanNode,
    Project,
    RelationScan,
)
from repro.plan.rewrite import intern_plan, rewrite_plan
from repro.queries.ast import Query


@dataclass(frozen=True)
class NodeAnnotation:
    """One explained plan node (pre-order position ``depth`` levels deep)."""

    node: PlanNode
    depth: int
    route: str
    dimension: int
    disjunct_estimate: int
    shared: bool

    def label(self) -> str:
        if isinstance(self.node, RelationScan):
            name = f"scan {self.node.name}"
            if self.node.filters:
                name += f" |{len(self.node.filters)} filter(s)"
            return name
        if isinstance(self.node, ConstraintFilter):
            return f"filter {self.node.constraint}"
        if isinstance(self.node, Project):
            return f"project -[{','.join(self.node.drop)}]"
        return self.node.kind


@dataclass
class PlanExplanation:
    """The canonical plan of a query plus its lowering annotations."""

    plan: PlanNode
    annotations: list[NodeAnnotation] = field(default_factory=list)
    #: Filled by ``QueryEngine.explain``: the service planner's whole-query
    #: verdict (route, budgets) for the same request.
    service_plan: object | None = None
    #: Filled by ``QueryEngine.explain(analyze=True)``: observed runtime
    #: statistics (a :class:`repro.telemetry.analyze.TraceAnalysis`) from
    #: actually executing the query under a recording tracer.
    analysis: object | None = None

    @property
    def digest(self) -> str:
        return self.plan.digest

    def shared_digests(self) -> tuple[str, ...]:
        seen = []
        for annotation in self.annotations:
            if annotation.shared and annotation.node.digest not in seen:
                seen.append(annotation.node.digest)
        return tuple(seen)

    def render(self) -> str:
        lines = []
        for annotation in self.annotations:
            indent = "  " * annotation.depth
            route = f"[{annotation.route}]"
            suffix = (
                f"dim={annotation.dimension} "
                f"disjuncts~{annotation.disjunct_estimate} "
                f"digest={annotation.node.digest[:8]}"
            )
            if annotation.shared:
                suffix += "  (shared)"
            line = f"{indent}{annotation.label():<28} {route:<22} {suffix}"
            if self.analysis is not None:
                stats = self.analysis.for_node(annotation.node.digest)
                if stats is not None:
                    line += f"  <- {stats.describe()}"
            lines.append(line)
        if self.analysis is not None:
            lines.append(self.analysis.render())
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def explain_plan(
    query: Query | PlanNode,
    database: ConstraintDatabase,
    options: LoweringOptions | None = None,
) -> PlanExplanation:
    """Canonicalize, rewrite and annotate a query's plan (no execution).

    Returns a :class:`PlanExplanation` whose nodes carry route and cost
    annotations (symbolic vs observable, estimated samples); ``str()`` of
    it renders the familiar indented EXPLAIN tree.  Example::

        print(explain_plan(parse_query("Zone(x, y)", db), db))
    """
    options = options if options is not None else LoweringOptions()
    plan = query if isinstance(query, PlanNode) else build_plan(query)
    plan = intern_plan(rewrite_plan(plan, database))
    occurrences: dict[int, int] = {}
    _count(plan, occurrences)
    explanation = PlanExplanation(plan=plan)
    _annotate(plan, database, options, occurrences, explanation, depth=0, symbolic=False)
    return explanation


def _count(plan: PlanNode, occurrences: dict[int, int]) -> None:
    occurrences[id(plan)] = occurrences.get(id(plan), 0) + 1
    for child in plan.children():
        _count(child, occurrences)


def _disjunct_estimate(plan: PlanNode, database: ConstraintDatabase) -> int:
    """Syntactic DNF-size bound: the planner profile's estimate, per subtree."""
    if isinstance(plan, RelationScan):
        if plan.name in database:
            return max(len(database.relation(plan.name).disjuncts), 1)
        return 1
    if isinstance(plan, (ConstraintFilter, EmptyPlan)):
        return 1
    if isinstance(plan, Conjoin):
        product = 1
        for operand in plan.operands:
            product *= _disjunct_estimate(operand, database)
        return product
    if isinstance(plan, Disjoin):
        return sum(_disjunct_estimate(op, database) for op in plan.operands)
    if isinstance(plan, NegateDiff):
        return _disjunct_estimate(plan.minuend, database)
    if isinstance(plan, Project):
        return _disjunct_estimate(plan.operand, database)
    raise TypeError(f"unsupported plan node {plan!r}")


def _is_symbolic(
    plan: PlanNode,
    database: ConstraintDatabase,
    options: LoweringOptions,
    prefer: bool = False,
) -> bool:
    """Would lowering keep this subtree symbolic?

    ``prefer`` mirrors the lowering's symbolic-preferring context (the
    children of a conjunction): there a disjunction of symbolic operands
    merges into one DNF instead of becoming a union generator.
    """
    if isinstance(plan, (RelationScan, ConstraintFilter, EmptyPlan)):
        return True
    if isinstance(plan, Conjoin):
        return (
            all(_is_symbolic(op, database, options, prefer=True) for op in plan.operands)
            and _disjunct_estimate(plan, database) <= options.max_symbolic_disjuncts
        )
    if isinstance(plan, Disjoin):
        return prefer and all(
            _is_symbolic(op, database, options, prefer=True) for op in plan.operands
        )
    return False


def _route(
    plan: PlanNode,
    database: ConstraintDatabase,
    options: LoweringOptions,
    symbolic: bool,
) -> str:
    if isinstance(plan, EmptyPlan):
        return "empty"
    if symbolic or _is_symbolic(plan, database, options):
        return "symbolic"
    if isinstance(plan, Conjoin):
        return "intersection-generator"
    if isinstance(plan, Disjoin):
        return "union-generator"
    if isinstance(plan, NegateDiff):
        return "difference-generator"
    if isinstance(plan, Project):
        return "projection-generator"
    return "symbolic"


def _annotate(
    plan: PlanNode,
    database: ConstraintDatabase,
    options: LoweringOptions,
    occurrences: dict[int, int],
    explanation: PlanExplanation,
    depth: int,
    symbolic: bool,
) -> None:
    route = _route(plan, database, options, symbolic)
    explanation.annotations.append(
        NodeAnnotation(
            node=plan,
            depth=depth,
            route=route,
            dimension=len(plan.free_variables()),
            disjunct_estimate=_disjunct_estimate(plan, database),
            shared=occurrences.get(id(plan), 0) > 1,
        )
    )
    # Below a projection everything must stay symbolic; below a node that
    # lowers symbolically the children are symbolic too.
    child_symbolic = symbolic or isinstance(plan, Project) or route == "symbolic"
    for child in plan.children():
        _annotate(
            child, database, options, occurrences, explanation, depth + 1, child_symbolic
        )


def explain_forest(
    queries: Sequence[Query | PlanNode], database: ConstraintDatabase
) -> list[PlanExplanation]:
    """Explain several queries against one shared interning pool.

    Subtrees repeated *across* the queries are marked shared — the view of a
    batch the service's plan forest sees.
    """
    pool: dict[str, PlanNode] = {}
    plans = [
        intern_plan(
            rewrite_plan(
                query if isinstance(query, PlanNode) else build_plan(query), database
            ),
            pool,
        )
        for query in queries
    ]
    occurrences: dict[int, int] = {}
    for plan in plans:
        _count(plan, occurrences)
    options = LoweringOptions()
    explanations = []
    for plan in plans:
        explanation = PlanExplanation(plan=plan)
        _annotate(
            plan, database, options, occurrences, explanation, depth=0, symbolic=False
        )
        explanations.append(explanation)
    return explanations
