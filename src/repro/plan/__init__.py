"""repro.plan — the logical plan IR between query ASTs and evaluation.

The compiler pipeline is the classic three-stage separation:

1. **canonicalize** (:mod:`repro.plan.canonical`) — the AST becomes an
   immutable :class:`~repro.plan.nodes.PlanNode` tree, flattened and
   de-duplicated, with a stable content ``digest`` per subplan (commutative
   operand order is normalized inside the digest, while the tree keeps the
   written order physical lowering follows);
2. **rewrite** (:mod:`repro.plan.rewrite`) — algebraic rules: constraint
   pushdown into relation scans, empty/absorbing-operand elimination,
   disjunct dedup, and CSE interning that turns repeated subtrees into
   shared node objects;
3. **lower** (:mod:`repro.plan.lowering`) — each subtree becomes either a
   symbolic generalized relation or an observable sampling plan, with the
   symbolic-vs-observable decision driven by a cost bound and union members
   optionally wired to the service's subplan estimate cache.

:mod:`repro.plan.explain` renders the annotated plan without executing it.
"""

from repro.plan.canonical import build_plan, canonicalize, plan_digest
from repro.plan.explain import (
    NodeAnnotation,
    PlanExplanation,
    explain_forest,
    explain_plan,
)
from repro.plan.lowering import (
    LoweringOptions,
    SubplanSharing,
    lower_plan,
    observable_from_relation,
)
from repro.plan.nodes import (
    CompilationError,
    Conjoin,
    ConstraintFilter,
    Disjoin,
    EmptyPlan,
    NegateDiff,
    PlanNode,
    Project,
    RelationScan,
    walk,
)
from repro.plan.rewrite import intern_plan, rewrite_plan, shared_subplans

__all__ = [
    "build_plan",
    "canonicalize",
    "plan_digest",
    "NodeAnnotation",
    "PlanExplanation",
    "explain_forest",
    "explain_plan",
    "LoweringOptions",
    "SubplanSharing",
    "lower_plan",
    "observable_from_relation",
    "CompilationError",
    "Conjoin",
    "ConstraintFilter",
    "Disjoin",
    "EmptyPlan",
    "NegateDiff",
    "PlanNode",
    "Project",
    "RelationScan",
    "walk",
    "intern_plan",
    "rewrite_plan",
    "shared_subplans",
]
