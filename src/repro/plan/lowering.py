"""Physical lowering: logical plans become observable evaluation plans.

This pass replaces the query compiler's former direct AST lowering.  It maps
each :class:`~repro.plan.nodes.PlanNode` to either a *symbolic* generalized
relation or an *observable* sampling plan, following Section 4 of the paper:

* relation scans (with pushed-down filters) evaluate symbolically — the
  conjunction of generalized tuples is again a generalized tuple;
* conjunctions stay symbolic while every operand is symbolic **and** the
  planner's cost model says the DNF product is affordable
  (:attr:`LoweringOptions.max_symbolic_disjuncts`); past that bound, or with
  an observable operand, they lower to the rejection-based intersection
  generator (Proposition 4.1);
* disjunctions in an *observable* context (the root, a union member, a
  difference operand) lower to the union generator (Theorem 4.1 /
  Corollary 4.2), one member per disjunct subplan — the member boundary is
  what the service shares across queries; under a conjunction or a
  projection, a disjunction of symbolic operands merges into one DNF
  relation instead (the pre-plan-IR compiler's symbolic collapse), so
  conjunctions over unions of stored relations stay symbolic;
* ``NegateDiff`` lowers to the difference generator (Proposition 4.2);
* projections lower per convex disjunct of their (necessarily symbolic)
  operand (Theorem 4.3).

Lowering memoizes on node *identity*: an interned forest
(:func:`repro.plan.rewrite.intern_plan`) lowers every shared subtree once.

The optional :class:`SubplanSharing` hook connects the union generator's
member estimates to the service's subplan cache: the lowering asks it for a
content-addressed seed per member (so each member estimate is a pure
function of its subplan digest — alignment included — not of sibling order)
and for a cached estimate to prime.  Without the hook, member estimation
follows the historical shared-stream behaviour; the only structural
departure from the pre-plan-IR compiler is that observable-context
disjunctions union their operands' observables instead of merging DNFs
first (statistically equivalent, and the seam sharing needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.core.convex import ConvexObservable
from repro.core.difference import DifferenceObservable
from repro.core.intersection import IntersectionObservable
from repro.core.observable import GeneratorParams, ObservableRelation
from repro.core.projection import ProjectionObservable
from repro.core.union import UnionObservable
from repro.plan.nodes import (
    Conjoin,
    ConstraintFilter,
    Disjoin,
    EmptyPlan,
    NegateDiff,
    PlanNode,
    Project,
    RelationScan,
    referenced_relations,
)
from repro.queries.compiler import CompilationError


@dataclass(frozen=True)
class LoweringOptions:
    """Knobs of the physical lowering pass.

    Attributes
    ----------
    sampler:
        Walk used by the convex generators (``"hit_and_run"`` or
        ``"ball_walk"``).
    samples_per_phase:
        Per-phase budget of every convex member's telescoping estimator (the
        service planner sets it from the request's accuracy).
    max_symbolic_disjuncts:
        Cost bound of the symbolic-vs-observable decision for conjunctions:
        a conjunction of symbolic operands whose DNF disjunct product would
        exceed this bound lowers to the rejection-based intersection
        generator instead of materialising the product.  The default keeps
        every practical query symbolic — the planner can tighten it.
    """

    sampler: str = "hit_and_run"
    samples_per_phase: int = 800
    max_symbolic_disjuncts: int = 512


class SubplanSharing:
    """Hook connecting union-member lowering to a subplan estimate store.

    The service's broker subclasses this; the base class provides the
    no-reuse behaviour (content-addressed seeds only), which is what keeps a
    sharing and a non-sharing session bit-identical: the *seeding* is part
    of the lowering semantics, reuse only skips recomputation.
    """

    def member_seed(
        self, digest: str, epsilon: float, delta: float, samples_per_phase: int
    ) -> int:
        """A stable seed for the member subplan's estimate stream."""
        raise NotImplementedError

    def member_lookup(
        self, digest: str, epsilon: float, delta: float, samples_per_phase: int
    ) -> object | None:
        """A cached estimate dominating ``(ε, δ)``, or ``None`` (no reuse here)."""
        return None

    def register_relations(self, digest: str, relations: tuple[str, ...]) -> None:
        """Record which stored relations the subtree behind ``digest`` scans.

        Lowering announces every digest's relation footprint before deriving
        seeds or keys from it; the service's broker uses the footprint for
        plan-aware cache keys (entries survive mutations of unreferenced
        relations).  The default keeps no registry.
        """


def observable_from_relation(
    relation: GeneralizedRelation,
    params: GeneratorParams | None = None,
    sampler: str = "hit_and_run",
    samples_per_phase: int = 800,
) -> ObservableRelation:
    """Wrap a symbolic DNF relation as an observable (union of convex disjuncts).

    ``samples_per_phase`` bounds the per-phase budget of each member's
    telescoping volume estimator; the default keeps compiled plans laptop-fast
    while staying well within the loose ratios the experiments assert.
    """
    params = params if params is not None else GeneratorParams()
    members = _convex_members(relation, params, sampler, samples_per_phase)
    if len(members) == 1:
        return members[0]
    return UnionObservable(members, params=params)


def _convex_members(
    relation: GeneralizedRelation,
    params: GeneratorParams,
    sampler: str,
    samples_per_phase: int,
) -> list[ObservableRelation]:
    """One :class:`ConvexObservable` per usable disjunct of a DNF relation.

    Syntactically empty, float-empty and unbounded disjuncts are skipped;
    raises when nothing observable remains.  Shared by the plain and the
    sharing-aware union constructions so their member lists can never drift.
    """
    from repro.volume.telescoping import TelescopingConfig

    telescoping = TelescopingConfig(samples_per_phase=samples_per_phase)
    members: list[ObservableRelation] = []
    for disjunct in relation.disjuncts:
        if disjunct.is_syntactically_empty():
            continue
        observable = ConvexObservable(
            disjunct, params=params, sampler=sampler, telescoping=telescoping
        )
        if observable.polytope.is_empty() or not observable.is_well_bounded():
            continue
        members.append(observable)
    if not members:
        raise CompilationError("relation has no non-empty, well-bounded disjunct")
    return members


def lower_plan(
    plan: PlanNode,
    database: ConstraintDatabase,
    params: GeneratorParams | None = None,
    options: LoweringOptions | None = None,
    sharing: SubplanSharing | None = None,
) -> ObservableRelation:
    """Lower a logical plan to an observable evaluation plan."""
    lowering = _Lowering(database, params, options, sharing)
    return lowering.lower_observable(plan)


class _Lowering:
    """One lowering run: carries the context and the per-node memo."""

    def __init__(
        self,
        database: ConstraintDatabase,
        params: GeneratorParams | None,
        options: LoweringOptions | None,
        sharing: SubplanSharing | None,
    ) -> None:
        self.database = database
        self.params = params if params is not None else GeneratorParams()
        self.options = options if options is not None else LoweringOptions()
        self.sharing = sharing
        # Memoized on node identity (and context): an interned forest lowers
        # each shared subtree exactly once.
        self._memo: dict[tuple[int, object], object] = {}

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def lower(
        self, plan: PlanNode, symbolic: "bool | str" = False
    ) -> tuple[str, object]:
        """Lower one node in one of three contexts.

        ``symbolic`` is the context of the consuming parent:

        * ``False`` — the result is consumed as an observable (the root, a
          union member, a difference operand).  Disjunctions lower to the
          union generator, one member per disjunct subplan — the sharing
          boundary;
        * ``"prefer"`` — the parent is a conjunction that would like to
          stay symbolic: disjunctions of symbolic operands merge into one
          DNF relation (the pre-plan-IR compiler's collapse), everything
          else behaves as in the observable context;
        * ``True`` — the parent (a projection) *requires* a symbolic
          result; non-symbolic shapes raise.

        Returns ``("relation", GeneralizedRelation)`` or
        ``("observable", ObservableRelation)``.
        """
        memo_key = (id(plan), symbolic)
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        result = self._lower(plan, symbolic)
        self._memo[memo_key] = result
        return result

    def lower_observable(self, plan: PlanNode) -> ObservableRelation:
        """Lower a node and wrap symbolic results as observables."""
        memo_key = (id(plan), "observable")
        cached = self._memo.get(memo_key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        self._register(plan)
        kind, value = self.lower(plan, False)
        if kind == "observable":
            observable = value
        else:
            observable = self._relation_observable(value, plan.digest)  # type: ignore[arg-type]
        self._memo[memo_key] = observable
        return observable  # type: ignore[return-value]

    def _relation_observable(
        self, relation: GeneralizedRelation, digest: str | None
    ) -> ObservableRelation:
        """Observable form of a symbolic subtree result.

        With a sharing hook and a subplan digest, the DNF's union is built
        with *per-disjunct* content-addressed streams (synthetic digests
        ``<digest>#d<i>``): every disjunct volume becomes a pure function of
        content, so the service can bank and prime them across queries —
        the inner unions of a shared base-map scan are where repeated
        traffic spends most of its samples.
        """
        if self.sharing is None or digest is None:
            return observable_from_relation(
                relation,
                self.params,
                self.options.sampler,
                self.options.samples_per_phase,
            )
        members = _convex_members(
            relation, self.params, self.options.sampler,
            self.options.samples_per_phase,
        )
        if len(members) == 1:
            return members[0]
        digests = tuple(f"{digest}#d{index}" for index in range(len(members)))
        union = UnionObservable(
            members,
            params=self.params,
            member_seeds=self._member_seeds(digests, len(members)),
            member_digests=digests,
        )
        self._prime_members(union, digests)
        return union

    def _lower(self, plan: PlanNode, symbolic: "bool | str") -> tuple[str, object]:
        if isinstance(plan, EmptyPlan):
            raise CompilationError("the query result is syntactically empty")
        if isinstance(plan, RelationScan):
            return "relation", self._lower_scan(plan)
        if isinstance(plan, ConstraintFilter):
            return "relation", self._constraint_relation(plan)
        if isinstance(plan, Conjoin):
            return self._lower_conjoin(plan, symbolic)
        if isinstance(plan, Disjoin):
            return self._lower_disjoin(plan, symbolic)
        if isinstance(plan, NegateDiff):
            if symbolic is True:
                raise CompilationError(
                    "existential quantification is only compiled over symbolic "
                    "sub-queries; normalise the query so quantifiers sit above "
                    "conjunctions of atoms"
                )
            return self._lower_difference(plan)
        if isinstance(plan, Project):
            return self._lower_project(plan)
        raise TypeError(f"unsupported plan node {plan!r}")

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------
    def _lower_scan(self, plan: RelationScan) -> GeneralizedRelation:
        if plan.name not in self.database:
            raise CompilationError(f"unknown relation {plan.name!r}")
        instance = self.database.relation(plan.name)
        attributes = self.database.schema[plan.name].attributes
        if len(attributes) != len(plan.arguments):
            raise CompilationError(
                f"relation {plan.name} expects {len(attributes)} arguments, "
                f"got {len(plan.arguments)}"
            )
        relation = instance.rename(
            dict(zip(attributes, plan.arguments))
        ).simplify()
        for constraint in plan.filters:
            relation = relation.intersection(
                self._constraint_relation(ConstraintFilter(constraint))
            )
        return relation

    def _constraint_relation(self, plan: ConstraintFilter) -> GeneralizedRelation:
        order = tuple(sorted(plan.constraint.variables()))
        tuple_ = GeneralizedTuple((plan.constraint,), order)
        return GeneralizedRelation.from_tuple(tuple_).simplify()

    # ------------------------------------------------------------------
    # Connectives
    # ------------------------------------------------------------------
    def _lower_conjoin(
        self, plan: Conjoin, symbolic: "bool | str"
    ) -> tuple[str, object]:
        # Children of a conjunction are lowered symbolic-preferring: a
        # disjunction of symbolic operands merges into one DNF so the whole
        # conjunction can stay symbolic (the classic collapse).
        child_mode: "bool | str" = True if symbolic is True else "prefer"
        lowered = [self.lower(op, child_mode) for op in plan.operands]
        if all(kind == "relation" for kind, _ in lowered):
            product = 1
            for _, value in lowered:
                product *= max(len(value.disjuncts), 1)  # type: ignore[union-attr]
            if symbolic is True or product <= self.options.max_symbolic_disjuncts:
                relation = lowered[0][1]
                for _, other in lowered[1:]:
                    relation = relation.intersection(other)  # type: ignore[union-attr]
                return "relation", relation
            # The DNF product is past the cost bound: rejection sampling
            # against the operands beats materialising the product.
        for operand in plan.operands:
            self._register(operand)
        members = [
            value
            if kind == "observable"
            else self._relation_observable(value, operand.digest)  # type: ignore[arg-type]
            for operand, (kind, value) in zip(plan.operands, lowered)
        ]
        if len(members) == 1:
            return "observable", members[0]
        return "observable", IntersectionObservable(members, params=self.params)

    def _lower_disjoin(
        self, plan: Disjoin, symbolic: "bool | str"
    ) -> tuple[str, object]:
        child_mode: "bool | str" = True if symbolic is True else "prefer"
        lowered = [self.lower(op, child_mode) for op in plan.operands]
        all_symbolic = all(kind == "relation" for kind, _ in lowered)
        if symbolic is True or (symbolic == "prefer" and all_symbolic):
            # A projection above requires — or a conjunction above prefers —
            # the symbolic merge (DNF concatenation).
            relations = [value for _, value in lowered]
            order = relations[0].variables  # type: ignore[union-attr]
            for other in relations[1:]:
                order = _extend(order, other.variables)  # type: ignore[union-attr]
            merged = relations[0].with_variables(order)  # type: ignore[union-attr]
            for other in relations[1:]:
                merged = merged.union(other.with_variables(order))  # type: ignore[union-attr]
            return "relation", merged
        order = plan.free_variables()
        members: list[ObservableRelation] = []
        digests: list[str | None] = []
        for operand, (kind, value) in zip(plan.operands, lowered):
            self._register(operand)
            if kind == "relation":
                aligned_order = _extend(order, value.variables)  # type: ignore[union-attr]
                aligned = value.with_variables(aligned_order)  # type: ignore[union-attr]
                # The member's identity must cover its coordinate order: the
                # same subtree embedded in a different variable order walks
                # different coordinates, so it may only share cache entries
                # (and seeds) with identically-aligned occurrences.
                member_digest = operand.digest
                if aligned_order != tuple(value.variables):  # type: ignore[union-attr]
                    member_digest += "@" + ",".join(aligned_order)
                try:
                    member = self._relation_observable(aligned, member_digest)
                except CompilationError:
                    # Mirror the DNF path: disjuncts with nothing observable
                    # (empty after float conversion, or unbounded) are
                    # skipped, not fatal — unless nothing remains.
                    continue
            else:
                member = value  # type: ignore[assignment]
                member_digest = operand.digest
            members.append(member)
            digests.append(member_digest)
        if not members:
            raise CompilationError("relation has no non-empty, well-bounded disjunct")
        if len(members) == 1:
            return "observable", members[0]
        union = UnionObservable(
            members,
            params=self.params,
            member_seeds=self._member_seeds(digests, len(members)),
            member_digests=tuple(digests),
        )
        self._prime_members(union, digests)
        return "observable", union

    def _lower_difference(self, plan: NegateDiff) -> tuple[str, object]:
        minuend = self.lower_observable(plan.minuend)
        subtrahend = self.lower_observable(plan.subtrahend)
        return "observable", DifferenceObservable(
            minuend, subtrahend, params=self.params
        )

    def _lower_project(self, plan: Project) -> tuple[str, object]:
        kind, value = self.lower(plan.operand, symbolic=True)
        if kind != "relation":
            raise CompilationError(
                "existential quantification is only compiled over symbolic "
                "sub-queries; normalise the query so quantifiers sit above "
                "conjunctions of atoms"
            )
        keep = tuple(
            name
            for name in value.variables  # type: ignore[union-attr]
            if name not in set(plan.drop)
        )
        if not keep:
            raise CompilationError("projection must keep at least one variable")
        members: list[ObservableRelation] = []
        for disjunct in value.disjuncts:  # type: ignore[union-attr]
            if disjunct.is_syntactically_empty():
                continue
            source = ConvexObservable(
                disjunct, params=self.params, sampler=self.options.sampler
            )
            if source.polytope.is_empty() or not source.is_well_bounded():
                continue
            members.append(
                ProjectionObservable(source, keep=keep, params=self.params)
            )
        if not members:
            raise CompilationError("projection has no non-empty disjunct")
        if len(members) == 1:
            return "observable", members[0]
        return "observable", UnionObservable(members, params=self.params)

    # ------------------------------------------------------------------
    # Sharing hooks
    # ------------------------------------------------------------------
    def _register(self, plan: PlanNode) -> None:
        """Announce a subtree's relation footprint before its digest is used.

        Synthetic digests lowering derives from this one (``@order``
        alignment, ``#dN`` per-disjunct streams) inherit the footprint on
        the broker side, so registering the base digest covers them all.
        """
        if self.sharing is not None:
            self.sharing.register_relations(plan.digest, referenced_relations(plan))

    def _member_seeds(
        self, digests: Sequence[str | None], count: int
    ) -> tuple[int, ...] | None:
        if self.sharing is None or any(digest is None for digest in digests):
            return None
        epsilon, delta = UnionObservable.member_accuracy(self.params, count)
        return tuple(
            self.sharing.member_seed(
                digest, epsilon, delta, self.options.samples_per_phase
            )
            for digest in digests
        )

    def _prime_members(
        self, union: UnionObservable, digests: Sequence[str | None]
    ) -> None:
        if self.sharing is None or union.member_seeds is None:
            # Priming without per-member seeds would shift the shared-stream
            # positions of the remaining members and break determinism.
            return
        epsilon, delta = UnionObservable.member_accuracy(
            self.params, len(union.members)
        )
        for index, digest in enumerate(digests):
            if digest is None:
                continue
            cached = self.sharing.member_lookup(
                digest, epsilon, delta, self.options.samples_per_phase
            )
            if cached is not None:
                union.prime_member_volume(index, cached)  # type: ignore[arg-type]


def _extend(order: tuple[str, ...], extra: Sequence[str]) -> tuple[str, ...]:
    merged = list(order)
    for name in extra:
        if name not in merged:
            merged.append(name)
    return tuple(merged)
