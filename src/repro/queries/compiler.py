"""Compilation of queries into observable (sampling-based) evaluation plans.

The compiler is a thin facade over the :mod:`repro.plan` pipeline: the query
AST is canonicalized into the logical plan IR (:func:`repro.plan.build_plan`),
normalized by the rule rewriter (:func:`repro.plan.rewrite_plan` — constraint
pushdown, empty-operand elimination, disjunct dedup, CSE interning), and
physically lowered (:func:`repro.plan.lower_plan`) into an
:class:`~repro.core.observable.ObservableRelation` — an object that can
generate almost uniform points of the query result and estimate its volume
without ever materialising the result symbolically.  The lowering follows
Section 4 of the paper:

* relation atoms          → the stored relation, wrapped per convex disjunct
                            (:class:`ConvexObservable`, unioned when the DNF
                            has several disjuncts — Theorem 4.1);
* conjunction             → symbolic conjunction while every operand is
                            symbolic and the DNF product is affordable,
                            rejection-based intersection otherwise
                            (Proposition 4.1);
* disjunction             → the union generator (Theorem 4.1 / Corollary 4.2),
                            one member per (de-duplicated) disjunct subplan;
* conjunction with a negated operand → the difference generator
                            (Proposition 4.2);
* existential quantifier  → the projection generator (Theorem 4.3), applied
                            per convex disjunct.

Structurally duplicate disjuncts are de-duplicated at plan time — the former
direct lowering compiled ``a OR a`` into two union members, doubling that
disjunct's selection weight (and the rejection traffic paying for it) in the
union generator.

Positive existential queries can additionally be normalised into the
conjunctive-component form consumed by Algorithm 5
(:func:`to_positive_existential`).
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.core.observable import GeneratorParams, ObservableRelation
from repro.core.query_reconstruction import (
    ConjunctiveComponent,
    PositiveExistentialQuery,
    RelationAtom,
)
from repro.queries.ast import QAnd, QConstraint, QExists, QOr, QRelation, Query

__all__ = [
    "CompilationError",
    "compile_query",
    "compile_plan",
    "observable_from_relation",
    "to_positive_existential",
]


class CompilationError(RuntimeError):
    """Raised when a query shape is outside the compilable fragment.

    Shared by the whole pipeline: plan construction, the rewriter and
    physical lowering all raise it (defined here, below :mod:`repro.plan`,
    so the plan modules can import it without a cycle).
    """


def observable_from_relation(
    relation: GeneralizedRelation,
    params: GeneratorParams | None = None,
    sampler: str = "hit_and_run",
    samples_per_phase: int = 800,
) -> ObservableRelation:
    """Wrap a symbolic DNF relation as an observable (union of convex disjuncts).

    Delegates to :func:`repro.plan.lowering.observable_from_relation` (kept
    here for the historical import path).
    """
    from repro.plan.lowering import observable_from_relation as _lower

    return _lower(relation, params, sampler, samples_per_phase)


def compile_plan(
    query,
    database: ConstraintDatabase,
    params: GeneratorParams | None = None,
    options=None,
    sharing=None,
) -> ObservableRelation:
    """Canonicalize, rewrite and lower a query (or prepared plan) in one step.

    ``query`` accepts an AST or an already-built
    :class:`~repro.plan.nodes.PlanNode`; ``options`` is a
    :class:`~repro.plan.lowering.LoweringOptions`; ``sharing`` connects the
    union generator's member estimates to a subplan store (the service's
    broker) — without it the compiled plan is self-contained.
    """
    # Imported lazily: repro.plan dispatches on the AST of this package.
    from repro.plan.canonical import build_plan
    from repro.plan.lowering import lower_plan
    from repro.plan.nodes import PlanNode
    from repro.plan.rewrite import intern_plan, rewrite_plan
    from repro.telemetry.tracer import current_tracer

    tracer = current_tracer()
    with tracer.span("plan-canonicalize"):
        plan = query if isinstance(query, PlanNode) else build_plan(query)
    with tracer.span("plan-rewrite"):
        plan = intern_plan(rewrite_plan(plan, database))
    with tracer.span("plan-lower"):
        return lower_plan(plan, database, params=params, options=options, sharing=sharing)


def compile_query(
    query: Query,
    database: ConstraintDatabase,
    params: GeneratorParams | None = None,
    sampler: str = "hit_and_run",
    samples_per_phase: int = 800,
) -> ObservableRelation:
    """Compile a query into an observable evaluation plan.

    ``samples_per_phase`` is forwarded to every convex member's telescoping
    estimator; the service planner uses it to enforce per-query sample
    budgets.  (Kept signature-compatible with the pre-plan-IR compiler;
    :func:`compile_plan` exposes the full pipeline.)
    """
    from repro.plan.lowering import LoweringOptions

    return compile_plan(
        query,
        database,
        params=params,
        options=LoweringOptions(sampler=sampler, samples_per_phase=samples_per_phase),
    )


def to_positive_existential(
    query: Query, output_variables: Sequence[str] | None = None
) -> PositiveExistentialQuery:
    """Normalise a positive existential query into Algorithm 5's component form.

    The query must be built from relation atoms with conjunction, disjunction
    and existential quantification only; disjunction is pushed to the top and
    every conjunctive component lists its relation atoms and output variables.
    """
    if not query.is_positive_existential():
        raise CompilationError("only positive existential queries can be normalised")
    free = tuple(output_variables) if output_variables is not None else query.free_variables()
    components = _components_of(query)
    normalised = tuple(
        ConjunctiveComponent(atoms=tuple(atoms), output_variables=free) for atoms in components
    )
    return PositiveExistentialQuery(components=normalised, output_variables=free)


def _components_of(query: Query) -> list[list[RelationAtom]]:
    """DNF of relation atoms (constraint atoms are not supported in this normal form)."""
    if isinstance(query, QRelation):
        return [[RelationAtom(query.name, query.arguments)]]
    if isinstance(query, QExists):
        # The quantified variables are implicit in the component form: every
        # variable that is not an output variable is projected away.
        return _components_of(query.operand)
    if isinstance(query, QOr):
        result: list[list[RelationAtom]] = []
        for operand in query.operands:
            result.extend(_components_of(operand))
        return result
    if isinstance(query, QAnd):
        partial: list[list[RelationAtom]] = [[]]
        for operand in query.operands:
            operand_components = _components_of(operand)
            partial = [
                existing + extra for existing in partial for extra in operand_components
            ]
        return partial
    if isinstance(query, QConstraint):
        raise CompilationError(
            "constraint atoms are not supported in the component normal form; "
            "fold them into the stored relations instead"
        )
    raise CompilationError(f"query node {query!r} is not positive existential")
