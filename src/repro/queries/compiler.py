"""Compilation of queries into observable (sampling-based) evaluation plans.

The compiler turns a query over a constraint database into an
:class:`~repro.core.observable.ObservableRelation`, i.e. an object that can
generate almost uniform points of the query result and estimate its volume —
without ever materialising the result symbolically.  The mapping follows
Section 4 of the paper:

* relation atoms          → the stored relation, wrapped per convex disjunct
                            (:class:`ConvexObservable`, unioned when the DNF
                            has several disjuncts — Theorem 4.1);
* conjunction             → symbolic conjunction when both sides are symbolic
                            (the conjunction of generalized tuples is again a
                            generalized tuple), rejection-based intersection
                            otherwise (Proposition 4.1);
* disjunction             → the union generator (Theorem 4.1 / Corollary 4.2);
* conjunction with a negated operand → the difference generator
                            (Proposition 4.2);
* existential quantifier  → the projection generator (Theorem 4.3), applied
                            per convex disjunct.

Positive existential queries can additionally be normalised into the
conjunctive-component form consumed by Algorithm 5
(:func:`to_positive_existential`).
"""

from __future__ import annotations

from typing import Sequence

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.core.convex import ConvexObservable
from repro.core.difference import DifferenceObservable
from repro.core.intersection import IntersectionObservable
from repro.core.observable import GeneratorParams, ObservableRelation
from repro.core.projection import ProjectionObservable
from repro.core.query_reconstruction import (
    ConjunctiveComponent,
    PositiveExistentialQuery,
    RelationAtom,
)
from repro.core.union import UnionObservable
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query
from repro.queries.symbolic import evaluate_symbolic


class CompilationError(RuntimeError):
    """Raised when a query shape is outside the compilable fragment."""


def observable_from_relation(
    relation: GeneralizedRelation,
    params: GeneratorParams | None = None,
    sampler: str = "hit_and_run",
    samples_per_phase: int = 800,
) -> ObservableRelation:
    """Wrap a symbolic DNF relation as an observable (union of convex disjuncts).

    ``samples_per_phase`` bounds the per-phase budget of each member's
    telescoping volume estimator; the default keeps compiled plans laptop-fast
    while staying well within the loose ratios the experiments assert.
    """
    from repro.volume.telescoping import TelescopingConfig

    params = params if params is not None else GeneratorParams()
    telescoping = TelescopingConfig(samples_per_phase=samples_per_phase)
    members: list[ObservableRelation] = []
    for disjunct in relation.disjuncts:
        if disjunct.is_syntactically_empty():
            continue
        observable = ConvexObservable(
            disjunct, params=params, sampler=sampler, telescoping=telescoping
        )
        if observable.polytope.is_empty() or not observable.is_well_bounded():
            continue
        members.append(observable)
    if not members:
        raise CompilationError("relation has no non-empty, well-bounded disjunct")
    if len(members) == 1:
        return members[0]
    return UnionObservable(members, params=params)


def compile_query(
    query: Query,
    database: ConstraintDatabase,
    params: GeneratorParams | None = None,
    sampler: str = "hit_and_run",
    samples_per_phase: int = 800,
) -> ObservableRelation:
    """Compile a query into an observable evaluation plan.

    ``samples_per_phase`` is forwarded to every convex member's telescoping
    estimator; the service planner uses it to enforce per-query sample
    budgets.
    """
    params = params if params is not None else GeneratorParams()
    kind, value = _compile(query, database, params, sampler, samples_per_phase)
    if kind == "relation":
        return observable_from_relation(value, params, sampler, samples_per_phase)
    return value


def _compile(
    query: Query,
    database: ConstraintDatabase,
    params: GeneratorParams,
    sampler: str,
    samples_per_phase: int = 800,
):
    """Recursive compilation returning ``("relation", GeneralizedRelation)`` or
    ``("observable", ObservableRelation)``.

    Symbolic sub-results are kept symbolic as long as possible so that chains
    of conjunctions collapse into single convex bodies instead of stacks of
    rejection samplers.
    """
    if isinstance(query, (QRelation, QConstraint)):
        return "relation", evaluate_symbolic(query, database)
    if isinstance(query, QAnd):
        positives = [op for op in query.operands if not isinstance(op, QNot)]
        negatives = [op.operand for op in query.operands if isinstance(op, QNot)]
        if not positives:
            raise CompilationError("a conjunction needs at least one positive operand")
        compiled = [_compile(op, database, params, sampler, samples_per_phase) for op in positives]
        if all(kind == "relation" for kind, _ in compiled):
            relation = compiled[0][1]
            for _, other in compiled[1:]:
                relation = relation.intersection(other)
            positive_result = ("relation", relation)
        else:
            members = [
                value if kind == "observable" else observable_from_relation(value, params, sampler, samples_per_phase)
                for kind, value in compiled
            ]
            if len(members) == 1:
                positive_result = ("observable", members[0])
            else:
                positive_result = (
                    "observable",
                    IntersectionObservable(members, params=params),
                )
        if not negatives:
            return positive_result
        # A ∧ ¬B ∧ ¬C  =  A \ (B ∪ C): the difference generator only needs
        # membership in the subtrahend, so it is compiled as an observable.
        kind, value = positive_result
        minuend = (
            value if kind == "observable" else observable_from_relation(value, params, sampler, samples_per_phase)
        )
        negative_compiled = [_compile(op, database, params, sampler, samples_per_phase) for op in negatives]
        negative_members = [
            value if kind == "observable" else observable_from_relation(value, params, sampler, samples_per_phase)
            for kind, value in negative_compiled
        ]
        subtrahend = (
            negative_members[0]
            if len(negative_members) == 1
            else UnionObservable(negative_members, params=params)
        )
        return "observable", DifferenceObservable(minuend, subtrahend, params=params)
    if isinstance(query, QOr):
        compiled = [_compile(op, database, params, sampler, samples_per_phase) for op in query.operands]
        if all(kind == "relation" for kind, _ in compiled):
            relation = compiled[0][1]
            order = relation.variables
            for _, other in compiled[1:]:
                relation = relation.union(other)
            return "relation", relation.with_variables(order)
        members = [
            value if kind == "observable" else observable_from_relation(value, params, sampler, samples_per_phase)
            for kind, value in compiled
        ]
        return "observable", UnionObservable(members, params=params)
    if isinstance(query, QExists):
        kind, value = _compile(query.operand, database, params, sampler, samples_per_phase)
        if kind != "relation":
            raise CompilationError(
                "existential quantification is only compiled over symbolic sub-queries; "
                "normalise the query so quantifiers sit above conjunctions of atoms"
            )
        keep = tuple(
            name for name in value.variables if name not in set(query.variables)
        )
        if not keep:
            raise CompilationError("projection must keep at least one variable")
        members: list[ObservableRelation] = []
        for disjunct in value.disjuncts:
            if disjunct.is_syntactically_empty():
                continue
            source = ConvexObservable(disjunct, params=params, sampler=sampler)
            if source.polytope.is_empty() or not source.is_well_bounded():
                continue
            members.append(ProjectionObservable(source, keep=keep, params=params))
        if not members:
            raise CompilationError("projection has no non-empty disjunct")
        if len(members) == 1:
            return "observable", members[0]
        return "observable", UnionObservable(members, params=params)
    if isinstance(query, QNot):
        raise CompilationError(
            "negation is only supported inside a conjunction (as a difference); "
            "top-level complements are not well-bounded"
        )
    raise TypeError(f"unsupported query node {query!r}")


def to_positive_existential(
    query: Query, output_variables: Sequence[str] | None = None
) -> PositiveExistentialQuery:
    """Normalise a positive existential query into Algorithm 5's component form.

    The query must be built from relation atoms with conjunction, disjunction
    and existential quantification only; disjunction is pushed to the top and
    every conjunctive component lists its relation atoms and output variables.
    """
    if not query.is_positive_existential():
        raise CompilationError("only positive existential queries can be normalised")
    free = tuple(output_variables) if output_variables is not None else query.free_variables()
    components = _components_of(query)
    normalised = tuple(
        ConjunctiveComponent(atoms=tuple(atoms), output_variables=free) for atoms in components
    )
    return PositiveExistentialQuery(components=normalised, output_variables=free)


def _components_of(query: Query) -> list[list[RelationAtom]]:
    """DNF of relation atoms (constraint atoms are not supported in this normal form)."""
    if isinstance(query, QRelation):
        return [[RelationAtom(query.name, query.arguments)]]
    if isinstance(query, QExists):
        # The quantified variables are implicit in the component form: every
        # variable that is not an output variable is projected away.
        return _components_of(query.operand)
    if isinstance(query, QOr):
        result: list[list[RelationAtom]] = []
        for operand in query.operands:
            result.extend(_components_of(operand))
        return result
    if isinstance(query, QAnd):
        partial: list[list[RelationAtom]] = [[]]
        for operand in query.operands:
            operand_components = _components_of(operand)
            partial = [
                existing + extra for existing in partial for extra in operand_components
            ]
        return partial
    if isinstance(query, QConstraint):
        raise CompilationError(
            "constraint atoms are not supported in the component normal form; "
            "fold them into the stored relations instead"
        )
    raise CompilationError(f"query node {query!r} is not positive existential")
