"""Approximate aggregate queries (the motivating application).

Aggregate queries — "what is the area of the result?", "which fraction of
region A lies inside region B?" — only need the result's measure, not its
symbolic description, and an approximate answer is usually sufficient.  This
is the class of applications the paper's introduction motivates (statistical
analysis and decision support over GIS data); the functions below expose it
directly on top of the compiled observable plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service -> queries)
    from repro.inference.refine import RefinableEstimate

from repro.constraints.database import ConstraintDatabase
from repro.core.observable import GeneratorParams
from repro.geometry.volume import relation_volume_exact
from repro.queries.ast import QAnd, QRelation, Query
from repro.queries.compiler import compile_query
from repro.queries.symbolic import evaluate_symbolic
from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate


@dataclass
class AggregateResult:
    """An aggregate answer together with the work spent producing it.

    Attributes
    ----------
    value:
        The aggregate value (a volume, or a ratio of volumes).
    estimate:
        The underlying :class:`VolumeEstimate` (``None`` for derived ratios).
    exact:
        Whether the value was computed exactly or estimated.
    refinable:
        For answers produced by an adaptive estimator, the resumable
        computation state (:class:`repro.inference.refine.RefinableEstimate`)
        — the service cache uses it to *continue* a cached coarse answer to
        a tighter ε instead of recomputing.  ``None`` for one-shot routes.
    """

    value: float
    estimate: VolumeEstimate | None
    exact: bool
    refinable: "RefinableEstimate | None" = None


def approximate_volume(
    query: Query,
    database: ConstraintDatabase,
    epsilon: float = 0.2,
    delta: float = 0.1,
    params: GeneratorParams | None = None,
    rng: np.random.Generator | int | None = None,
) -> AggregateResult:
    """Estimate the volume of the query result without symbolic evaluation."""
    rng = ensure_rng(rng)
    params = params if params is not None else GeneratorParams(epsilon=epsilon, delta=delta)
    plan = compile_query(query, database, params=params)
    estimate = plan.estimate_volume(epsilon, delta, rng=rng)
    return AggregateResult(value=estimate.value, estimate=estimate, exact=False)


def exact_volume(query: Query, database: ConstraintDatabase, max_disjuncts: int = 20) -> AggregateResult:
    """Exact volume of the query result (symbolic evaluation + inclusion–exclusion)."""
    relation = evaluate_symbolic(query, database)
    value = relation_volume_exact(relation, max_disjuncts=max_disjuncts)
    return AggregateResult(value=value, estimate=None, exact=True)


def overlap_fraction(
    region_a: str,
    region_b: str,
    database: ConstraintDatabase,
    epsilon: float = 0.2,
    delta: float = 0.1,
    rng: np.random.Generator | int | None = None,
) -> AggregateResult:
    """The fraction ``vol(A ∩ B) / vol(A)`` of region A covered by region B.

    A typical GIS decision-support aggregate ("how much of the district lies
    in the flood zone?"); both volumes are estimated with the sampling
    machinery and their ratio is returned.
    """
    rng = ensure_rng(rng)
    attributes_a = database.schema[region_a].attributes
    attributes_b = database.schema[region_b].attributes
    if len(attributes_a) != len(attributes_b):
        raise ValueError("regions must have the same arity to be overlapped")
    variables = tuple(f"v{i + 1}" for i in range(len(attributes_a)))
    atom_a = QRelation(region_a, variables)
    atom_b = QRelation(region_b, variables)
    numerator = approximate_volume(QAnd((atom_a, atom_b)), database, epsilon, delta, rng=rng)
    denominator = approximate_volume(atom_a, database, epsilon, delta, rng=rng)
    if denominator.value <= 0:
        return AggregateResult(value=0.0, estimate=None, exact=False)
    return AggregateResult(
        value=numerator.value / denominator.value, estimate=None, exact=False
    )
