"""Exact symbolic evaluation of queries (the classical baseline).

The classical approach to constraint query evaluation is entirely symbolic:
relation atoms are instantiated, boolean connectives map to the DNF-preserving
operations of :mod:`repro.constraints.relations`, and existential quantifiers
are eliminated with Fourier--Motzkin.  The result is an explicit generalized
relation — exact, but with costs that can blow up (doubly exponentially for
quantifier elimination, exponentially for complements), which is the paper's
motivation for approximate evaluation.  This evaluator provides the ground
truth against which the sampling-based results are measured.
"""

from __future__ import annotations

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query


class SymbolicEvaluationError(RuntimeError):
    """Raised when a query cannot be evaluated symbolically (e.g. unbounded negation)."""


def evaluate_symbolic(
    query: Query, database: ConstraintDatabase, variables: tuple[str, ...] | None = None
) -> GeneralizedRelation:
    """Evaluate a query exactly against a database instance.

    ``variables`` fixes the output variable order (defaults to the query's
    free variables in their natural order).
    """
    order = variables if variables is not None else query.free_variables()
    relation = _evaluate(query, database, tuple(order))
    return relation.simplify()


def _evaluate(
    query: Query, database: ConstraintDatabase, order: tuple[str, ...]
) -> GeneralizedRelation:
    if isinstance(query, QRelation):
        instance = database.relation(query.name)
        attributes = database.schema[query.name].attributes
        if len(attributes) != len(query.arguments):
            raise SymbolicEvaluationError(
                f"relation {query.name} expects {len(attributes)} arguments, "
                f"got {len(query.arguments)}"
            )
        renamed = instance.rename(dict(zip(attributes, query.arguments)))
        return renamed.with_variables(_extend(order, renamed.variables))
    if isinstance(query, QConstraint):
        constraint_order = _extend(order, tuple(sorted(query.constraint.variables())))
        tuple_ = GeneralizedTuple((query.constraint,), constraint_order)
        return GeneralizedRelation.from_tuple(tuple_)
    if isinstance(query, QAnd):
        parts = [_evaluate(operand, database, order) for operand in query.operands]
        result = parts[0]
        for part in parts[1:]:
            result = result.intersection(part)
        return result
    if isinstance(query, QOr):
        parts = [_evaluate(operand, database, order) for operand in query.operands]
        full_order = parts[0].variables
        for part in parts[1:]:
            full_order = _extend(full_order, part.variables)
        result = parts[0].with_variables(full_order)
        for part in parts[1:]:
            result = result.union(part.with_variables(full_order))
        return result
    if isinstance(query, QNot):
        inner = _evaluate(query.operand, database, order)
        return inner.complement()
    if isinstance(query, QExists):
        inner = _evaluate(query.operand, database, order)
        keep = tuple(name for name in inner.variables if name not in set(query.variables))
        return inner.project(keep)
    raise TypeError(f"unsupported query node {query!r}")


def _extend(order: tuple[str, ...], extra: tuple[str, ...]) -> tuple[str, ...]:
    merged = list(order)
    for name in extra:
        if name not in merged:
            merged.append(name)
    return tuple(merged)
