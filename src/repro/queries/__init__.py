"""Query layer: ASTs, symbolic baseline, observable compilation, aggregates, engine."""

from repro.queries.aggregates import (
    AggregateResult,
    approximate_volume,
    exact_volume,
    overlap_fraction,
)
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query
from repro.queries.compiler import (
    CompilationError,
    compile_plan,
    compile_query,
    observable_from_relation,
    to_positive_existential,
)
from repro.queries.engine import QueryEngine
from repro.queries.symbolic import SymbolicEvaluationError, evaluate_symbolic

__all__ = [
    "AggregateResult",
    "approximate_volume",
    "exact_volume",
    "overlap_fraction",
    "Query",
    "QRelation",
    "QConstraint",
    "QAnd",
    "QOr",
    "QNot",
    "QExists",
    "CompilationError",
    "compile_plan",
    "compile_query",
    "observable_from_relation",
    "to_positive_existential",
    "QueryEngine",
    "SymbolicEvaluationError",
    "evaluate_symbolic",
]
