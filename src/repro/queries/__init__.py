"""repro.queries — FO+LIN queries over constraint databases.

The query layer: ASTs and the :func:`parse_query` surface language,
symbolic (exact) evaluation as the baseline, compilation to observable
plans through :mod:`repro.plan`, aggregate operators, and the
:class:`QueryEngine` facade routing between them.
"""

from repro.queries.aggregates import (
    AggregateResult,
    approximate_volume,
    exact_volume,
    overlap_fraction,
)
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query
from repro.queries.compiler import (
    CompilationError,
    compile_plan,
    compile_query,
    observable_from_relation,
    to_positive_existential,
)
from repro.queries.engine import QueryEngine
from repro.queries.parser import parse_query
from repro.queries.symbolic import SymbolicEvaluationError, evaluate_symbolic

__all__ = [
    "AggregateResult",
    "approximate_volume",
    "exact_volume",
    "overlap_fraction",
    "Query",
    "QRelation",
    "QConstraint",
    "QAnd",
    "QOr",
    "QNot",
    "QExists",
    "CompilationError",
    "compile_plan",
    "compile_query",
    "observable_from_relation",
    "to_positive_existential",
    "QueryEngine",
    "parse_query",
    "SymbolicEvaluationError",
    "evaluate_symbolic",
]
