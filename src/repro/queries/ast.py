"""Query ASTs: FO+LIN over a database schema.

The query language of the paper is first-order logic over the linear
structure *and* the database schema: atoms are either linear constraints or
relation predicates ``R(v_1, ..., v_k)`` referring to the stored generalized
relations.  This module defines the corresponding AST; evaluation lives in
:mod:`repro.queries.symbolic` (exact, through the relational algebra and
Fourier--Motzkin) and :mod:`repro.queries.compiler` (approximate, by compiling
to the observable operators of :mod:`repro.core`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.constraints.atoms import AtomicConstraint


class Query:
    """Base class of query AST nodes."""

    def free_variables(self) -> tuple[str, ...]:
        """The free variables of the query, in a deterministic order."""
        raise NotImplementedError

    def is_positive_existential(self) -> bool:
        """Does the query avoid negation and universal quantification?"""
        raise NotImplementedError

    # Convenience builders ------------------------------------------------
    def and_(self, other: "Query") -> "Query":
        """Conjunction with another query."""
        return QAnd((self, other))

    def or_(self, other: "Query") -> "Query":
        """Disjunction with another query."""
        return QOr((self, other))

    def not_(self) -> "Query":
        """Negation."""
        return QNot(self)

    def exists(self, *variables: str) -> "Query":
        """Existential quantification."""
        return QExists(tuple(variables), self)


class QRelation(Query):
    """A relation atom ``R(v_1, ..., v_k)``."""

    __slots__ = ("name", "arguments")

    def __init__(self, name: str, arguments: Sequence[str]) -> None:
        self.name = name
        self.arguments = tuple(arguments)
        if not self.arguments:
            raise ValueError("relation atoms need at least one argument")
        if len(set(self.arguments)) != len(self.arguments):
            raise ValueError(
                "relation atoms must use distinct variables; add explicit equalities instead"
            )

    def free_variables(self) -> tuple[str, ...]:
        return self.arguments

    def is_positive_existential(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"{self.name}({', '.join(self.arguments)})"


class QConstraint(Query):
    """A linear constraint atom."""

    __slots__ = ("constraint",)

    def __init__(self, constraint: AtomicConstraint) -> None:
        self.constraint = constraint

    def free_variables(self) -> tuple[str, ...]:
        return tuple(sorted(self.constraint.variables()))

    def is_positive_existential(self) -> bool:
        return True

    def __repr__(self) -> str:
        return f"QConstraint({self.constraint})"


class QAnd(Query):
    """Conjunction of sub-queries."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Query]) -> None:
        self.operands = tuple(operands)
        if not self.operands:
            raise ValueError("QAnd requires at least one operand")

    def free_variables(self) -> tuple[str, ...]:
        return _merge(operand.free_variables() for operand in self.operands)

    def is_positive_existential(self) -> bool:
        return all(operand.is_positive_existential() for operand in self.operands)

    def __repr__(self) -> str:
        return "(" + " AND ".join(map(repr, self.operands)) + ")"


class QOr(Query):
    """Disjunction of sub-queries."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Query]) -> None:
        self.operands = tuple(operands)
        if not self.operands:
            raise ValueError("QOr requires at least one operand")

    def free_variables(self) -> tuple[str, ...]:
        return _merge(operand.free_variables() for operand in self.operands)

    def is_positive_existential(self) -> bool:
        return all(operand.is_positive_existential() for operand in self.operands)

    def __repr__(self) -> str:
        return "(" + " OR ".join(map(repr, self.operands)) + ")"


class QNot(Query):
    """Negation of a sub-query."""

    __slots__ = ("operand",)

    def __init__(self, operand: Query) -> None:
        self.operand = operand

    def free_variables(self) -> tuple[str, ...]:
        return self.operand.free_variables()

    def is_positive_existential(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"NOT {self.operand!r}"


class QExists(Query):
    """Existential quantification over a tuple of variables."""

    __slots__ = ("variables", "operand")

    def __init__(self, variables: Sequence[str], operand: Query) -> None:
        self.variables = tuple(variables)
        if not self.variables:
            raise ValueError("QExists requires at least one variable")
        self.operand = operand

    def free_variables(self) -> tuple[str, ...]:
        bound = set(self.variables)
        return tuple(name for name in self.operand.free_variables() if name not in bound)

    def is_positive_existential(self) -> bool:
        return self.operand.is_positive_existential()

    def __repr__(self) -> str:
        return f"EXISTS {self.variables} . {self.operand!r}"


def _merge(parts: Iterable[tuple[str, ...]]) -> tuple[str, ...]:
    ordered: list[str] = []
    for part in parts:
        for name in part:
            if name not in ordered:
                ordered.append(name)
    return tuple(ordered)
