"""The end-to-end query engine.

:class:`QueryEngine` ties the layers together: it holds a constraint database
and answers queries either exactly (symbolic evaluation — the classical,
potentially exponential route) or approximately (sampling-based observables
and convex-hull reconstruction — the paper's route).  It is the object the
examples and the GIS-style benchmarks drive.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.core.observable import GeneratorParams, ObservableRelation
from repro.core.query_reconstruction import RelationEstimate, reconstruct_positive_existential
from repro.queries.aggregates import AggregateResult, approximate_volume, exact_volume
from repro.queries.ast import Query
from repro.queries.compiler import compile_query, to_positive_existential
from repro.queries.symbolic import evaluate_symbolic
from repro.sampling.rng import ensure_rng

Mode = Literal["exact", "approximate", "auto", "adaptive"]


class QueryEngine:
    """Evaluate FO+LIN queries over a constraint database, exactly or approximately.

    Parameters
    ----------
    database:
        The constraint database instance.
    params:
        Default accuracy parameters for approximate evaluation.
    """

    def __init__(
        self, database: ConstraintDatabase, params: GeneratorParams | None = None
    ) -> None:
        self.database = database
        self.params = params if params is not None else GeneratorParams()

    # ------------------------------------------------------------------
    # Symbolic (exact) evaluation
    # ------------------------------------------------------------------
    def evaluate_exact(self, query: Query) -> GeneralizedRelation:
        """Exact result as an explicit DNF relation (may blow up symbolically)."""
        return evaluate_symbolic(query, self.database)

    # ------------------------------------------------------------------
    # Sampling-based evaluation
    # ------------------------------------------------------------------
    def compile(self, query: Query) -> ObservableRelation:
        """Compile the query into an observable plan (generator + volume estimator)."""
        return compile_query(query, self.database, params=self.params)

    def sample_result(
        self, query: Query, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw almost uniform points of the query result without materialising it."""
        rng = ensure_rng(rng)
        plan = self.compile(query)
        return plan.generate_many(count, rng)

    def reconstruct(
        self,
        query: Query,
        samples_per_component: int = 400,
        rng: np.random.Generator | int | None = None,
    ) -> RelationEstimate:
        """Approximate the *shape* of a positive existential query result.

        Algorithm 5: the result is returned as a union of convex hulls, a
        relation estimate in the sense of Definition 4.1.
        """
        rng = ensure_rng(rng)
        normal_form = to_positive_existential(query)
        return reconstruct_positive_existential(
            self.database,
            normal_form,
            params=self.params,
            samples_per_component=samples_per_component,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def volume(
        self,
        query: Query,
        mode: Mode = "approximate",
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> AggregateResult:
        """Volume of the query result, exactly or approximately.

        ``mode="auto"`` delegates estimator choice to the service planner
        (:class:`repro.service.planner.Planner`), which weighs the query's
        dimension, atom count and the requested accuracy against the cost of
        each route.  ``mode="adaptive"`` forces the confidence-sequence
        route (:mod:`repro.inference`): the estimator stops as soon as the
        requested ``(ε, δ)`` is certified by the data, and the returned
        result carries the resumable state
        (:attr:`~repro.queries.aggregates.AggregateResult.refinable`) so it
        can later be continued to a tighter ε.  Queries the adaptive route
        cannot serve (projection, negation) fall back to the observable
        route, exactly as the planner's fallback rules dictate.
        """
        if mode == "exact":
            return exact_volume(query, self.database)
        epsilon = epsilon if epsilon is not None else self.params.epsilon
        delta = delta if delta is not None else self.params.delta
        if mode in ("auto", "adaptive"):
            # Imported lazily: repro.service builds on the query layer.
            from repro.service.planner import Planner
            from repro.service.session import run_plan

            plan = Planner().plan(
                query,
                self.database,
                epsilon=epsilon,
                delta=delta,
                route="adaptive" if mode == "adaptive" else None,
            )
            return run_plan(plan, query, self.database, params=self.params, rng=rng)
        return approximate_volume(
            query, self.database, epsilon=epsilon, delta=delta, params=self.params, rng=rng
        )
