"""The end-to-end query engine.

:class:`QueryEngine` ties the layers together: it holds a constraint database
and answers queries either exactly (symbolic evaluation — the classical,
potentially exponential route) or approximately (sampling-based observables
and convex-hull reconstruction — the paper's route).  It is the object the
examples and the GIS-style benchmarks drive.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Literal

import numpy as np

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.core.observable import GeneratorParams, ObservableRelation
from repro.core.query_reconstruction import RelationEstimate, reconstruct_positive_existential
from repro.queries.aggregates import AggregateResult, approximate_volume, exact_volume
from repro.queries.ast import Query
from repro.queries.compiler import compile_query, to_positive_existential
from repro.queries.symbolic import evaluate_symbolic
from repro.sampling.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.plan.explain import PlanExplanation

Mode = Literal["exact", "approximate", "auto", "adaptive"]


class QueryEngine:
    """Evaluate FO+LIN queries over a constraint database, exactly or approximately.

    Example::

        engine = QueryEngine(database)
        query = parse_query("Zone(x, y) and x <= 1", database)
        engine.volume(query, mode="auto").value     # planner-routed estimate
        print(engine.explain(query, analyze=True))  # EXPLAIN ANALYZE

    Parameters
    ----------
    database:
        The constraint database instance.
    params:
        Default accuracy parameters for approximate evaluation.
    """

    def __init__(
        self, database: ConstraintDatabase, params: GeneratorParams | None = None
    ) -> None:
        self.database = database
        self.params = params if params is not None else GeneratorParams()

    # ------------------------------------------------------------------
    # Symbolic (exact) evaluation
    # ------------------------------------------------------------------
    def evaluate_exact(self, query: Query) -> GeneralizedRelation:
        """Exact result as an explicit DNF relation (may blow up symbolically)."""
        return evaluate_symbolic(query, self.database)

    # ------------------------------------------------------------------
    # Sampling-based evaluation
    # ------------------------------------------------------------------
    def compile(self, query: Query) -> ObservableRelation:
        """Compile the query into an observable plan (generator + volume estimator)."""
        return compile_query(query, self.database, params=self.params)

    def sample_result(
        self, query: Query, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw almost uniform points of the query result without materialising it."""
        rng = ensure_rng(rng)
        plan = self.compile(query)
        return plan.generate_many(count, rng)

    def reconstruct(
        self,
        query: Query,
        samples_per_component: int = 400,
        rng: np.random.Generator | int | None = None,
    ) -> RelationEstimate:
        """Approximate the *shape* of a positive existential query result.

        Algorithm 5: the result is returned as a union of convex hulls, a
        relation estimate in the sense of Definition 4.1.
        """
        rng = ensure_rng(rng)
        normal_form = to_positive_existential(query)
        return reconstruct_positive_existential(
            self.database,
            normal_form,
            params=self.params,
            samples_per_component=samples_per_component,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def explain(
        self,
        query: Query,
        analyze: bool = False,
        mode: Mode = "auto",
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
        tracer=None,
    ) -> "PlanExplanation":
        """The canonical logical plan with per-node route/cost annotations.

        The returned :class:`repro.plan.explain.PlanExplanation` additionally
        carries the service planner's whole-query verdict (estimator route,
        sample and time budgets) as ``explanation.service_plan`` — the same
        plan ``volume(mode="auto")`` would execute — so one call shows both
        *how* the query lowers and *which* estimator would run it.

        With ``analyze=True`` (EXPLAIN ANALYZE) the query is additionally
        **executed** under a recording tracer and the observed statistics —
        per-subplan samples and provenance, the union acceptance rate, the
        adaptive route's per-checkpoint ``(n, estimate, eps)`` trajectory,
        kernel counters — are attached as ``explanation.analysis`` and folded
        into :meth:`~repro.plan.explain.PlanExplanation.render`.  ``mode``,
        ``epsilon``, ``delta`` and ``rng`` select the execution exactly as
        :meth:`volume` would; pass a
        :class:`~repro.telemetry.tracer.RecordingTracer` as ``tracer`` to
        keep the raw spans (e.g. for a Chrome trace export).
        """
        from repro.plan.explain import explain_plan
        from repro.service.planner import Planner

        explanation = explain_plan(query, self.database)
        fill_epsilon, fill_delta = self._fill_accuracy(epsilon, delta)
        explanation.service_plan = Planner().plan(
            query, self.database, epsilon=fill_epsilon, delta=fill_delta
        )
        if analyze:
            from repro.telemetry.analyze import analyze_trace
            from repro.telemetry.tracer import RecordingTracer, activate

            if tracer is None:
                tracer = RecordingTracer()
            with activate(tracer):
                result = self.volume(
                    query, mode=mode, epsilon=epsilon, delta=delta, rng=rng
                )
            explanation.analysis = analyze_trace(tracer, result)
        return explanation

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def volume(
        self,
        query: Query,
        mode: Mode = "approximate",
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> AggregateResult:
        """Volume of the query result, exactly or approximately.

        ``mode="auto"`` delegates estimator choice to the service planner
        (:class:`repro.service.planner.Planner`), which weighs the query's
        dimension, atom count and the requested accuracy against the cost of
        each route.  ``mode="adaptive"`` forces the confidence-sequence
        route (:mod:`repro.inference`): the estimator stops as soon as the
        requested ``(ε, δ)`` is certified by the data, and the returned
        result carries the resumable state
        (:attr:`~repro.queries.aggregates.AggregateResult.refinable`) so it
        can later be continued to a tighter ε.  Queries the adaptive route
        cannot serve (projection, negation) fall back to the observable
        route, exactly as the planner's fallback rules dictate.
        """
        try:
            handler = self._VOLUME_MODES[mode]
        except KeyError:
            valid = ", ".join(sorted(self._VOLUME_MODES))
            raise ValueError(
                f"unknown volume mode {mode!r} (valid modes: {valid})"
            ) from None
        return handler(self, query, epsilon, delta, rng)

    def _volume_exact(self, query, epsilon, delta, rng) -> AggregateResult:
        return exact_volume(query, self.database)

    def _volume_approximate(self, query, epsilon, delta, rng) -> AggregateResult:
        epsilon, delta = self._fill_accuracy(epsilon, delta)
        return approximate_volume(
            query, self.database, epsilon=epsilon, delta=delta, params=self.params, rng=rng
        )

    def _volume_planned(self, query, epsilon, delta, rng, route=None) -> AggregateResult:
        epsilon, delta = self._fill_accuracy(epsilon, delta)
        # Imported lazily: repro.service builds on the query layer.
        from repro.service.planner import Planner
        from repro.service.session import run_plan

        plan = Planner().plan(
            query, self.database, epsilon=epsilon, delta=delta, route=route
        )
        return run_plan(plan, query, self.database, params=self.params, rng=rng)

    def _volume_adaptive(self, query, epsilon, delta, rng) -> AggregateResult:
        return self._volume_planned(query, epsilon, delta, rng, route="adaptive")

    def _fill_accuracy(
        self, epsilon: float | None, delta: float | None
    ) -> tuple[float, float]:
        return (
            epsilon if epsilon is not None else self.params.epsilon,
            delta if delta is not None else self.params.delta,
        )

    #: Mode-name → handler table driving :meth:`volume`; adding a route is
    #: one entry here instead of another elif chain branch.
    _VOLUME_MODES = {
        "exact": _volume_exact,
        "approximate": _volume_approximate,
        "auto": _volume_planned,
        "adaptive": _volume_adaptive,
    }
