"""A textual language for FO+LIN *queries* over a database schema.

:mod:`repro.constraints.parser` reads closed linear-constraint formulas;
this module extends the same surface syntax with **relation atoms** so whole
queries — the ASTs of :mod:`repro.queries.ast` — can travel as text through
the CLI and the serving front end::

    "Zone(x, y) and x <= 1/2"
    "Parks(x, y) or Lakes(x, y)"
    "exists y. Map(x, y) and y >= 0"
    "Region(x, y) and not (x + y >= 1)"

Grammar (informal, on top of the constraint grammar)::

    query       := "exists" name+ "." query | disjunction
    disjunction := conjunction ("or" conjunction)*
    conjunction := negation ("and" negation)*
    negation    := "not" negation | "(" query ")" | atom
    atom        := NAME "(" name ("," name)* ")"     -- relation atom
                 | comparison                        -- linear constraint(s)

Keywords are case-insensitive and ``&``/``|``/``!`` work as synonyms of
``and``/``or``/``not``, exactly as in the constraint language.  ``forall``
is rejected: the query AST is existential (wrap a negation instead).

Example::

    >>> from repro.queries.parser import parse_query
    >>> parse_query("Zone(x, y) and x <= 1/2")
    (Zone(x, y) AND QConstraint(x - 1/2 <= 0))
"""

from __future__ import annotations

from repro.constraints.formulas import And, Atom, Formula
from repro.constraints.parser import ParseError, _Parser, _Token, _tokenize
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query

__all__ = ["ParseError", "parse_query"]


class _QueryParser(_Parser):
    """Recursive-descent parser producing :class:`~repro.queries.ast.Query` nodes.

    Arithmetic, comparisons and tokenization are inherited from the
    constraint parser; only the boolean skeleton and the relation atoms are
    defined here.
    """

    def parse_query(self) -> Query:
        query = self._q_quantified()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected trailing input {leftover.value!r} at position {leftover.position}"
            )
        return query

    def _q_quantified(self) -> Query:
        if self._match_keyword("forall"):
            raise ParseError(
                "forall is not part of the query language; "
                "rewrite as 'not exists ... not ...'"
            )
        if self._match_keyword("exists"):
            names: list[str] = []
            while True:
                token = self._peek()
                if token is not None and token.kind == "name":
                    names.append(self._advance().value)
                    self._match_op(",")
                else:
                    break
            if not names:
                raise ParseError("exists requires at least one variable")
            self._expect("op", ".")
            return QExists(tuple(names), self._q_quantified())
        return self._q_disjunction()

    def _q_disjunction(self) -> Query:
        operands = [self._q_conjunction()]
        while self._match_keyword("or") or self._match_op("|"):
            operands.append(self._q_conjunction())
        if len(operands) == 1:
            return operands[0]
        return QOr(operands)

    def _q_conjunction(self) -> Query:
        operands = [self._q_negation()]
        while self._match_keyword("and") or self._match_op("&"):
            operands.append(self._q_negation())
        if len(operands) == 1:
            return operands[0]
        return QAnd(operands)

    def _q_negation(self) -> Query:
        if self._match_keyword("not") or self._match_op("!"):
            return QNot(self._q_negation())
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        if token.kind == "keyword" and token.value in ("exists", "forall"):
            return self._q_quantified()
        if token.kind == "op" and token.value == "(":
            # A parenthesised query or a parenthesised arithmetic expression
            # opening a comparison; try the query first and backtrack (the
            # same disambiguation the constraint parser uses).
            saved = self._index
            self._advance()
            try:
                inner = self._q_quantified()
                self._expect("op", ")")
            except ParseError:
                self._index = saved
                return self._q_comparison()
            after = self._peek()
            if after is not None and after.kind == "op" and after.value in (
                "<=", ">=", "==", "!=", "=", "<", ">",
            ):
                self._index = saved
                return self._q_comparison()
            return inner
        if token.kind == "name" and self._peek_is_relation_atom():
            return self._q_relation_atom()
        return self._q_comparison()

    def _peek_is_relation_atom(self) -> bool:
        """Is the upcoming ``name`` token followed by ``(``? (``R(x, y)``)"""
        following = (
            self._tokens[self._index + 1]
            if self._index + 1 < len(self._tokens)
            else None
        )
        return following is not None and following.kind == "op" and following.value == "("

    def _q_relation_atom(self) -> Query:
        name = self._advance().value
        self._expect("op", "(")
        arguments: list[str] = []
        while True:
            token = self._expect("name")
            arguments.append(token.value)
            if self._match_op(","):
                continue
            self._expect("op", ")")
            break
        try:
            return QRelation(name, arguments)
        except ValueError as error:
            raise ParseError(str(error)) from None

    def _q_comparison(self) -> Query:
        return _formula_atoms_to_query(self._comparison())


def _formula_atoms_to_query(formula: Formula) -> Query:
    """Convert the constraint parser's comparison output to query nodes.

    A comparison chain ``a <= b <= c`` parses to ``And(Atom, Atom)``; each
    atom becomes a :class:`~repro.queries.ast.QConstraint`.
    """
    if isinstance(formula, Atom):
        return QConstraint(formula.constraint)
    if isinstance(formula, And):
        return QAnd([_formula_atoms_to_query(operand) for operand in formula.operands])
    raise ParseError(f"expected a linear comparison, got {formula!r}")


def parse_query(text: str) -> Query:
    """Parse a textual FO+LIN query (relation atoms + linear constraints).

    Returns the :class:`~repro.queries.ast.Query` AST the engine, the
    planner and the serving layer consume.  Raises
    :class:`~repro.constraints.parser.ParseError` for malformed input.

    Example::

        >>> query = parse_query("exists y. Map(x, y) and 0 <= x <= 1")
        >>> query.free_variables()
        ('x',)
    """
    tokens: list[_Token] = _tokenize(text)
    if not tokens:
        raise ParseError("empty query")
    return _QueryParser(tokens, text).parse_query()
