"""The ``repro`` console entry point: deploy and query the serving front end.

Three subcommands (full reference in ``docs/cli.md``):

``repro serve``
    Start the HTTP front end for a deployment described by a TOML config
    file (:mod:`repro.serving.config`), with flag overrides for the common
    knobs.

``repro query``
    Issue one volume query — against a running server (``--server``), or
    in process against a config-described database when no server is given.
    ``--stream`` switches to the anytime NDJSON protocol and prints each
    certified checkpoint as it arrives.

``repro top``
    Render the live per-plan-digest profile table of a running server
    (``GET /v1/profile``): calls, cache-hit ratios, wall-clock quantiles,
    samples drawn and chosen routes, refreshed every ``--interval`` seconds
    (``--once`` prints a single table and exits).

Exit codes are stable and scriptable:

====  =========================================================
code  meaning
====  =========================================================
0     success
1     computation or server failure (``internal``)
2     usage error: bad flags or config (argparse's convention)
3     the query was rejected (``invalid_request`` / ``invalid_query``)
4     shed by admission control (``overloaded`` / ``queue_full``)
5     deadline (``deadline_unreachable`` / ``deadline_exceeded``)
6     the server could not be reached
====  =========================================================
"""

from __future__ import annotations

import argparse
import http.client
import json
import sys
import urllib.parse
from typing import Any

__all__ = ["main"]

EXIT_OK = 0
EXIT_INTERNAL = 1
EXIT_USAGE = 2
EXIT_REJECTED = 3
EXIT_SHED = 4
EXIT_DEADLINE = 5
EXIT_UNREACHABLE = 6

_CODE_EXITS = {
    "invalid_request": EXIT_REJECTED,
    "invalid_query": EXIT_REJECTED,
    "not_found": EXIT_REJECTED,
    "method_not_allowed": EXIT_REJECTED,
    "overloaded": EXIT_SHED,
    "queue_full": EXIT_SHED,
    "deadline_unreachable": EXIT_DEADLINE,
    "deadline_exceeded": EXIT_DEADLINE,
    "internal": EXIT_INTERNAL,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Serve and query spatial constraint databases over HTTP.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="start the HTTP serving front end")
    serve.add_argument("--config", help="deployment TOML file", default=None)
    serve.add_argument("--host", help="bind address (overrides config)")
    serve.add_argument("--port", type=int, help="bind port (overrides config)")
    serve.add_argument("--preset", help="database preset (overrides config)")
    serve.add_argument("--workers", type=int, help="compute threads (overrides config)")
    serve.add_argument("--store", help="persistent result store path (overrides config)")

    query = commands.add_parser("query", help="issue one volume query")
    query.add_argument("query", help="query text, e.g. 'Zone(x, y) and x <= 1/2'")
    query.add_argument("--server", help="server base URL, e.g. http://127.0.0.1:8787")
    query.add_argument("--config", help="deployment TOML (in-process mode)", default=None)
    query.add_argument("--epsilon", type=float, default=None)
    query.add_argument("--delta", type=float, default=None)
    query.add_argument("--seed", type=int, default=None)
    query.add_argument("--deadline-ms", type=float, default=None)
    query.add_argument("--priority", type=int, default=None)
    query.add_argument(
        "--stream", action="store_true", help="anytime NDJSON stream (server mode only)"
    )

    top = commands.add_parser(
        "top", help="live per-plan-digest profile table from a running server"
    )
    top.add_argument(
        "--server",
        required=True,
        help="server base URL, e.g. http://127.0.0.1:8787",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="refresh period in seconds"
    )
    top.add_argument(
        "--once", action="store_true", help="print one table and exit"
    )
    top.add_argument(
        "--limit", type=int, default=15, help="number of profile rows to show"
    )
    return parser


def _load_config(path: str | None):
    from repro.serving.config import ServingConfig, load_config

    return load_config(path) if path else ServingConfig()


def _cmd_serve(options: argparse.Namespace) -> int:
    import dataclasses

    from repro.serving.server import run_server

    try:
        config = _load_config(options.config)
        overrides: dict[str, Any] = {}
        if options.host is not None:
            overrides["host"] = options.host
        if options.port is not None:
            overrides["port"] = options.port
        if options.preset is not None:
            overrides["database_preset"] = options.preset
        if options.workers is not None:
            overrides["workers"] = options.workers
        if options.store is not None:
            overrides["store_path"] = options.store
        if overrides:
            config = dataclasses.replace(config, **overrides)
    except (OSError, ValueError) as error:
        print(f"repro serve: bad configuration: {error}", file=sys.stderr)
        return EXIT_USAGE
    run_server(config)
    return EXIT_OK


def _request_body(options: argparse.Namespace) -> dict:
    body: dict[str, Any] = {"query": options.query}
    for name in ("epsilon", "delta", "seed", "deadline_ms", "priority"):
        value = getattr(options, name)
        if value is not None:
            body[name] = value
    return body


def _cmd_query_remote(options: argparse.Namespace) -> int:
    parsed = urllib.parse.urlparse(options.server)
    if parsed.scheme not in ("http", "") or not (parsed.hostname or parsed.path):
        print(f"repro query: bad server URL {options.server!r}", file=sys.stderr)
        return EXIT_USAGE
    host = parsed.hostname or parsed.path
    port = parsed.port or 8787
    path = "/v1/stream" if options.stream else "/v1/query"
    try:
        connection = http.client.HTTPConnection(host, port, timeout=600)
        connection.request(
            "POST",
            path,
            body=json.dumps(_request_body(options)),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
    except (ConnectionError, OSError) as error:
        print(f"repro query: cannot reach {host}:{port}: {error}", file=sys.stderr)
        return EXIT_UNREACHABLE

    exit_code = EXIT_OK
    try:
        if options.stream and response.status == 200:
            # NDJSON: print each event as it arrives; the final/error event
            # decides the exit code.
            buffer = b""
            while True:
                chunk = response.read(1)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if not line.strip():
                        continue
                    event = json.loads(line)
                    print(json.dumps(event), flush=True)
                    if event.get("event") == "error":
                        exit_code = _CODE_EXITS.get(
                            event.get("error", {}).get("code", "internal"),
                            EXIT_INTERNAL,
                        )
            return exit_code
        payload = json.loads(response.read() or b"{}")
        print(json.dumps(payload, indent=2))
        if response.status != 200:
            code = payload.get("error", {}).get("code", "internal")
            return _CODE_EXITS.get(code, EXIT_INTERNAL)
        return EXIT_OK
    finally:
        connection.close()


def _cmd_query_local(options: argparse.Namespace) -> int:
    from repro.serving.config import build_session
    from repro.serving.protocol import ProtocolError, QueryRequest

    try:
        config = _load_config(options.config)
    except (OSError, ValueError) as error:
        print(f"repro query: bad configuration: {error}", file=sys.stderr)
        return EXIT_USAGE
    try:
        request = QueryRequest.from_body(_request_body(options))
    except ProtocolError as error:
        print(f"repro query: {error}", file=sys.stderr)
        return _CODE_EXITS.get(error.code, EXIT_REJECTED)
    try:
        session = build_session(config)
        from repro.service.executor import BatchRequest

        outcome = session.submit_batch(
            [BatchRequest(request.query, epsilon=request.epsilon, delta=request.delta)],
            rng=request.seed,
        )[0]
    except ValueError as error:
        print(f"repro query: {error}", file=sys.stderr)
        return EXIT_REJECTED
    except Exception as error:
        print(f"repro query: computation failed: {error}", file=sys.stderr)
        return EXIT_INTERNAL
    estimate = outcome.result.estimate
    payload: dict[str, Any] = {
        "value": outcome.result.value,
        "exact": outcome.result.exact,
        "cached": outcome.cached,
        "route": outcome.plan.estimator,
    }
    if estimate is not None:
        payload["certified_epsilon"] = estimate.epsilon
        payload["samples_used"] = estimate.samples_used
    print(json.dumps(payload, indent=2))
    return EXIT_OK


def _cmd_query(options: argparse.Namespace) -> int:
    if options.stream and not options.server:
        print("repro query: --stream requires --server", file=sys.stderr)
        return EXIT_USAGE
    if options.server:
        return _cmd_query_remote(options)
    return _cmd_query_local(options)


def _parse_server(url: str) -> tuple[str, int] | None:
    parsed = urllib.parse.urlparse(url)
    if parsed.scheme not in ("http", "") or not (parsed.hostname or parsed.path):
        return None
    return parsed.hostname or parsed.path, parsed.port or 8787


def _fetch_profile(host: str, port: int) -> dict:
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        connection.request("GET", "/v1/profile")
        response = connection.getresponse()
        return json.loads(response.read() or b"{}")
    finally:
        connection.close()


def _render_top(payload: dict, limit: int) -> str:
    lines_prefix: list[str] = []
    execution = payload.get("execution") or {}
    kernels = execution.get("kernels") or {}
    arena = execution.get("arena") or {}
    if kernels or arena:
        backend = kernels.get("backend", "?")
        numba = "yes" if kernels.get("numba_available") else "no"
        lines_prefix.append(
            f"kernels: {backend} (numba available: {numba})  "
            f"arena: {'on' if arena.get('enabled') else 'off'} "
            f"epoch={arena.get('epoch', 0)} "
            f"segments={arena.get('segments', 0)} "
            f"bytes={arena.get('bytes', 0)} "
            f"publishes={arena.get('publishes', 0)} "
            f"reuses={arena.get('reuses', 0)}"
        )
    header = (
        f"{'DIGEST':14} {'CALLS':>6} {'HITS':>6} {'HIT%':>6} "
        f"{'P50(ms)':>9} {'P95(ms)':>9} {'SAMPLES':>10} ROUTE"
    )
    lines = lines_prefix + [header]
    for row in payload.get("profiles", [])[:limit]:
        lines.append(
            f"{row.get('digest', '')[:12]:14} "
            f"{row.get('calls', 0):>6} "
            f"{row.get('hits', 0):>6} "
            f"{100.0 * row.get('hit_ratio', 0.0):>5.1f}% "
            f"{1e3 * row.get('wall_p50', 0.0):>9.2f} "
            f"{1e3 * row.get('wall_p95', 0.0):>9.2f} "
            f"{row.get('samples_total', 0):>10} "
            f"{row.get('route', '')}"
        )
    if len(lines) == 1:
        lines.append("(no profiles yet)")
    for slo in payload.get("slo", []):
        lines.append(
            f"SLO {slo.get('histogram')}: objective={slo.get('objective')} "
            f"burn 1m={slo.get('burn_1m', 0.0):.2f} "
            f"1h={slo.get('burn_1h', 0.0):.2f} "
            f"{'OK' if slo.get('healthy') else 'BURNING'}"
        )
    auditor = payload.get("auditor")
    if auditor:
        alarms = auditor.get("alarms", [])
        lines.append(
            f"calibration: {auditor.get('probes', 0)} probes, "
            f"{len(auditor.get('cells', []))} cells, "
            f"{len(alarms)} alarm(s)"
        )
    return "\n".join(lines)


def _cmd_top(options: argparse.Namespace) -> int:
    import time as _time

    server = _parse_server(options.server)
    if server is None:
        print(f"repro top: bad server URL {options.server!r}", file=sys.stderr)
        return EXIT_USAGE
    host, port = server
    try:
        while True:
            try:
                payload = _fetch_profile(host, port)
            except (ConnectionError, OSError) as error:
                print(
                    f"repro top: cannot reach {host}:{port}: {error}",
                    file=sys.stderr,
                )
                return EXIT_UNREACHABLE
            print(_render_top(payload, options.limit), flush=True)
            if options.once:
                return EXIT_OK
            print(flush=True)
            _time.sleep(max(0.1, options.interval))
    except KeyboardInterrupt:
        return EXIT_OK


def main(argv: list[str] | None = None) -> int:
    """The ``repro`` console entry point; returns the process exit code."""
    options = _build_parser().parse_args(argv)
    if options.command == "serve":
        return _cmd_serve(options)
    if options.command == "top":
        return _cmd_top(options)
    return _cmd_query(options)


if __name__ == "__main__":  # pragma: no cover - direct execution convenience
    sys.exit(main())
