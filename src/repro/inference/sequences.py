"""Anytime-valid confidence sequences over streaming Bernoulli/bounded batches.

The paper's estimators fix their sample sizes *a priori* from worst-case
Chernoff/Hoeffding budgets (:mod:`repro.volume.chernoff`): every query pays
for the hardest possible instance.  A **confidence sequence** inverts the
contract — it maintains an interval that is valid *simultaneously at every
checkpoint* of the stream, so an estimator may look at the data as it
arrives and stop the moment its ``(ε, δ)`` target is certified.  Easy
instances (large volume fractions, low-variance phases) stop orders of
magnitude earlier; hard instances degrade gracefully toward the fixed
schedule.

Construction
------------
Validity comes from a plain union bound over a deterministic **checkpoint
schedule**.  Observations are folded into sufficient statistics
``(n, Σx, Σx²)`` continuously, but the interval is only *evaluated* at
schedule positions ``n_k = ceil(base · growth^(k-1))``; evaluation ``k``
spends ``δ_k = δ / (k (k+1))`` of the failure budget (``Σ_k δ_k = δ``), so

``P[ ∃k : p ∉ I_k ] ≤ Σ_k δ_k ≤ δ``

holds at every stopping rule that only inspects the sequence at checkpoints.
Two radii are provided:

* :class:`HoeffdingSequence` — the distribution-free Hoeffding radius
  ``sqrt(ln(2/δ_k) / (2 n))`` for values in ``[0, 1]``;
* :class:`EmpiricalBernsteinSequence` — the Maurer–Pontil empirical
  Bernstein radius ``sqrt(2 V̂ ln(4/δ_k) / n) + 7 ln(4/δ_k) / (3 (n-1))``,
  which adapts to the observed variance ``V̂`` (a Bernoulli phase with
  ratio near 1 has vanishing variance and stops almost immediately).

Because the schedule is fixed up front — independent of how the stream is
chunked into oracle blocks — the stopping decision is **bit-identical for
every block size and execution backend**: the adaptive estimators draw
exactly up to the next checkpoint, however many oracle calls that takes.

All state is a handful of floats and ints, so sequences pickle cheaply;
this is what makes :class:`repro.inference.refine.RefinableEstimate`
resumable across process boundaries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CheckpointSchedule",
    "ConfidenceInterval",
    "ConfidenceSequence",
    "EmpiricalBernsteinSequence",
    "HoeffdingSequence",
    "checkpoint_delta",
    "split_delta",
]


def split_delta(delta: float, parts: int) -> list[float]:
    """Divide a failure budget evenly across ``parts`` telescoping phases.

    The union bound is exact: the phase events' probabilities sum to at most
    ``delta``.  Phases receive equal shares; variance-aware *ε* allocation is
    the adaptive estimators' job (δ shares must be fixed before any data is
    seen for the per-phase sequences to stay valid).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must lie strictly between 0 and 1")
    if parts < 1:
        raise ValueError("parts must be at least 1")
    return [delta / parts] * parts


def checkpoint_delta(delta: float, checkpoint: int) -> float:
    """The failure-budget share spent by the ``checkpoint``-th evaluation.

    ``δ_k = δ / (k (k+1))`` telescopes: ``Σ_{k≥1} δ_k = δ``, so a sequence
    may be evaluated at arbitrarily many checkpoints without ever exceeding
    its total budget.
    """
    if checkpoint < 1:
        raise ValueError("checkpoint indices are 1-based")
    return delta / (checkpoint * (checkpoint + 1))


@dataclass(frozen=True)
class CheckpointSchedule:
    """Deterministic positions at which a confidence sequence is evaluated.

    ``checkpoint(k) = ceil(base · growth^(k-1))`` (made strictly increasing),
    a geometric grid: the δ spent per evaluation shrinks quadratically while
    the sample counts grow geometrically, so the radius inflation over a
    one-shot bound stays bounded.  The schedule is part of the estimator's
    *definition*, not an execution knob — it never depends on the oracle
    block size, which is what makes adaptive stopping block-size invariant.
    """

    base: int = 64
    growth: float = 1.5

    def __post_init__(self) -> None:
        if self.base < 1:
            raise ValueError("base must be at least 1")
        if self.growth <= 1.0:
            raise ValueError("growth must exceed 1")

    def checkpoint(self, index: int) -> int:
        """Sample count of the ``index``-th (1-based) checkpoint."""
        if index < 1:
            raise ValueError("checkpoint indices are 1-based")
        # Strictly increasing even when base * growth^k rounds to the same
        # integer (only possible for growth close to 1 and tiny base).
        raw = math.ceil(self.base * self.growth ** (index - 1))
        return max(raw, self.base + index - 1)


@dataclass(frozen=True)
class ConfidenceInterval:
    """One checkpoint's verdict: ``mean ∈ [lower, upper]`` with the spent δ.

    ``lower``/``upper`` are clipped to ``[0, 1]`` (the observations are
    bounded).  ``count`` and ``checkpoint`` record *when* the verdict was
    issued, so refinement can report how much of the stream each accuracy
    level consumed.
    """

    mean: float
    lower: float
    upper: float
    count: int
    checkpoint: int

    @property
    def width(self) -> float:
        """Full width ``upper - lower`` of the interval."""
        return self.upper - self.lower

    @property
    def ratio_point(self) -> float:
        """The geometric midpoint ``sqrt(lower · upper)``.

        Reporting the geometric midpoint makes the *ratio* error symmetric:
        for any true mean in the interval the multiplicative error is at
        most ``sqrt(upper / lower)``, which is what :meth:`meets_ratio`
        certifies against.
        """
        return math.sqrt(max(self.lower, 0.0) * max(self.upper, 0.0))

    def meets_additive(self, epsilon: float) -> bool:
        """Is the half-width at most ``epsilon``?"""
        return self.width <= 2.0 * epsilon

    def meets_ratio(self, epsilon: float) -> bool:
        """Does :attr:`ratio_point` approximate every interval value within ``1 + ε``?

        True when ``upper ≤ (1 + ε)² · lower`` (and the interval is bounded
        away from zero): the geometric midpoint is then within a
        multiplicative ``sqrt(upper/lower) ≤ 1 + ε`` of any point of the
        interval — the paper's ratio-approximation contract.
        """
        if self.lower <= 0.0:
            return False
        return self.upper <= (1.0 + epsilon) ** 2 * self.lower

    @property
    def achieved_ratio_epsilon(self) -> float:
        """The tightest ε for which :meth:`meets_ratio` holds (``inf`` if none)."""
        if self.lower <= 0.0:
            return float("inf")
        return math.sqrt(self.upper / self.lower) - 1.0


class ConfidenceSequence:
    """Shared machinery: sufficient statistics, schedule and δ accounting.

    Subclasses implement :meth:`_radius`.  Instances hold only scalars, so
    they pickle cheaply and a restored copy continues the sequence exactly
    where it left off.  Typical driver loop::

        seq = HoeffdingSequence(delta=0.05)
        while True:
            seq.observe(draw(seq.pending()))
            if seq.checkpoint().meets_ratio(epsilon):
                break
    """

    def __init__(self, delta: float, schedule: CheckpointSchedule | None = None) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must lie strictly between 0 and 1")
        self.delta = delta
        self.schedule = schedule if schedule is not None else CheckpointSchedule()
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.checkpoints = 0
        self.last_interval: ConfidenceInterval | None = None
        # Per-checkpoint (count, mean, lower, upper) — the raw material of the
        # telemetry trajectory view.  Bounded by the geometric schedule (a few
        # dozen entries even at the sample ceiling), plain tuples so the
        # sequence keeps pickling cheaply.
        self.history: list[tuple[int, float, float, float]] = []

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def observe(self, values: np.ndarray) -> None:
        """Fold a batch of values in ``[0, 1]`` into the sufficient statistics."""
        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        if float(values.min()) < 0.0 or float(values.max()) > 1.0:
            raise ValueError("observations must lie in [0, 1]")
        self.count += int(values.size)
        self.total += float(values.sum())
        self.total_sq += float(np.square(values).sum())

    def observe_bernoulli(self, successes: int, trials: int) -> None:
        """Fold ``trials`` Bernoulli observations with ``successes`` ones.

        The fast path for membership counting: for 0/1 values
        ``Σx² = Σx``, so a whole oracle block folds in O(1).
        """
        if trials < 0 or not 0 <= successes <= trials:
            raise ValueError("need 0 <= successes <= trials")
        self.count += trials
        self.total += float(successes)
        self.total_sq += float(successes)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Empirical mean of the stream so far (``0.0`` before any data)."""
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased empirical variance (``0.0`` with fewer than two samples)."""
        if self.count < 2:
            return 0.0
        centred = self.total_sq - self.count * self.mean**2
        return max(centred / (self.count - 1), 0.0)

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    @property
    def next_checkpoint(self) -> int:
        """Sample count at which the next evaluation is due."""
        return self.schedule.checkpoint(self.checkpoints + 1)

    def pending(self) -> int:
        """Samples still to draw before the next checkpoint (0 when ready)."""
        return max(self.next_checkpoint - self.count, 0)

    def checkpoint(self) -> ConfidenceInterval:
        """Evaluate the sequence now, spending the next checkpoint's δ share.

        Callers normally evaluate exactly at schedule positions (that is
        what makes adaptive stopping reproducible), but validity only
        requires that every evaluation spend its own δ share — evaluating
        off-schedule (e.g. when a sample cap truncates a checkpoint) is
        still covered by the union bound.
        """
        if self.count < 1:
            raise ValueError("cannot evaluate an empty sequence")
        index = self.checkpoints + 1
        share = checkpoint_delta(self.delta, index)
        radius = self._radius(share)
        mean = self.mean
        interval = ConfidenceInterval(
            mean=mean,
            lower=max(mean - radius, 0.0),
            upper=min(mean + radius, 1.0),
            count=self.count,
            checkpoint=index,
        )
        self.checkpoints = index
        self.last_interval = interval
        self.history.append((interval.count, mean, interval.lower, interval.upper))
        return interval

    def trajectory(self, scale: float = 1.0) -> list[tuple[int, float, float]]:
        """Per-checkpoint ``(n, estimate, eps)`` points for telemetry.

        ``estimate`` is the ratio point (geometric midpoint) times ``scale``
        (e.g. the box volume), ``eps`` the achieved ratio accuracy at that
        checkpoint (``inf`` while the interval still touches zero).  Derived
        from :attr:`history`, so it never consumes randomness.
        """
        points: list[tuple[int, float, float]] = []
        for count, _mean, lower, upper in self.history:
            midpoint = math.sqrt(max(lower, 0.0) * max(upper, 0.0))
            eps = math.sqrt(upper / lower) - 1.0 if lower > 0.0 else float("inf")
            points.append((count, midpoint * scale, eps))
        return points

    def _radius(self, delta_share: float) -> float:
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(delta={self.delta}, count={self.count}, "
            f"mean={self.mean:.4f}, checkpoints={self.checkpoints})"
        )


class HoeffdingSequence(ConfidenceSequence):
    """Distribution-free anytime-valid sequence for values in ``[0, 1]``.

    Radius ``sqrt(ln(2/δ_k) / (2 n))`` — the one-shot Hoeffding radius at
    the checkpoint's δ share.  Ignores the variance, so it is the right
    baseline and the wrong tool for low-variance phases (use
    :class:`EmpiricalBernsteinSequence` there).
    """

    def _radius(self, delta_share: float) -> float:
        return math.sqrt(math.log(2.0 / delta_share) / (2.0 * self.count))


class EmpiricalBernsteinSequence(ConfidenceSequence):
    """Variance-adaptive sequence via the Maurer–Pontil empirical Bernstein bound.

    Radius ``sqrt(2 V̂ ln(4/δ_k) / n) + 7 ln(4/δ_k) / (3 (n - 1))`` for
    values in ``[0, 1]`` (two-sided, δ_k split evenly over the two tails).
    When the empirical variance ``V̂`` is small the first term collapses and
    the interval shrinks at rate ``1/n`` instead of ``1/sqrt(n)`` — the
    source of the adaptive estimators' largest savings.
    """

    def _radius(self, delta_share: float) -> float:
        log_term = math.log(4.0 / delta_share)
        if self.count < 2:
            # Too little data for an empirical variance: fall back to the
            # (valid, wider) Hoeffding radius at the same share.
            return math.sqrt(math.log(2.0 / delta_share) / (2.0 * self.count))
        return math.sqrt(2.0 * self.variance * log_term / self.count) + (
            7.0 * log_term / (3.0 * (self.count - 1))
        )


#: Registry used by the adaptive estimators' ``sequence`` config knob.
SEQUENCE_KINDS: dict[str, type[ConfidenceSequence]] = {
    "hoeffding": HoeffdingSequence,
    "empirical_bernstein": EmpiricalBernsteinSequence,
}


def make_sequence(
    kind: str, delta: float, schedule: CheckpointSchedule | None = None
) -> ConfidenceSequence:
    """Build a confidence sequence by registry name.

    ``make_sequence("empirical_bernstein", delta=0.05)`` — the indirection
    the adaptive estimators use so a config string can pick the radius
    family (``"hoeffding"`` or ``"empirical_bernstein"``).
    """
    try:
        cls = SEQUENCE_KINDS[kind]
    except KeyError:
        choices = ", ".join(sorted(SEQUENCE_KINDS))
        raise ValueError(f"unknown sequence kind {kind!r} (choose from: {choices})") from None
    return cls(delta, schedule=schedule)
