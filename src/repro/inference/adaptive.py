"""Adaptive volume estimators: stop exactly when the (ε, δ) contract is met.

Both estimators replace an a-priori Chernoff/Hoeffding sample budget with an
anytime-valid confidence sequence (:mod:`repro.inference.sequences`): they
draw through the existing batch oracles in ``block_size`` blocks, evaluate
the sequence at its deterministic checkpoints, and stop the moment the
requested accuracy is *certified* by the data — which on easy instances
(large volume fractions, low-variance phases) is many times earlier than the
worst-case schedule.

Both are **resumable**: an instance carries its own random generator and
sufficient statistics, pickles across process boundaries, and a later
``run(tighter_epsilon)`` call continues the same sample stream instead of
starting over.  Because the continuation consumes the identical stream a
cold run would, refining an :class:`AdaptiveMonteCarlo` from ε = 0.2 to
ε = 0.05 lands on exactly the value a cold ε = 0.05 run produces — having
drawn only the difference.

:class:`AdaptiveMonteCarlo` is the adaptive counterpart of
:func:`repro.volume.monte_carlo.monte_carlo_volume` (uniform box proposals,
Bernoulli hit stream); :class:`AdaptiveTelescoping` is the adaptive
counterpart of :class:`repro.volume.telescoping.TelescopingVolumeEstimator`
(one confidence sequence per telescoping phase, δ divided across phases by
the union-bound splitter, ε reallocated to high-variance phases by a pilot +
Neyman-style rule).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Literal

import numpy as np

from repro.geometry.polytope import HPolytope
from repro.inference.sequences import (
    CheckpointSchedule,
    ConfidenceInterval,
    ConfidenceSequence,
    make_sequence,
    split_delta,
)
from repro.sampling.oracles import (
    BatchOracle,
    as_batch_oracle,
    batch_oracle_from_polytope,
    batch_oracle_from_predicate,
)
from repro.sampling.rejection import count_box_hits
from repro.sampling.rng import RandomState, ensure_rng, spawn_rngs
from repro.telemetry.tracer import current_tracer
from repro.volume.base import EstimationError, VolumeEstimate

__all__ = [
    "AdaptiveConfig",
    "AdaptiveMonteCarlo",
    "AdaptiveTelescoping",
    "AdaptiveTelescopingConfig",
]

SequenceKind = Literal["hoeffding", "empirical_bernstein"]


@dataclass(frozen=True)
class AdaptiveConfig:
    """Execution and stopping parameters of :class:`AdaptiveMonteCarlo`.

    Attributes
    ----------
    block_size:
        Proposals judged per batch-oracle call.  Purely an execution knob:
        the drawn stream, the checkpoint positions and therefore the
        stopping decision are bit-identical for every block size.
    schedule:
        Checkpoint positions of the confidence sequence.  Part of the
        estimator's definition — two estimators only produce comparable
        (and refinement-compatible) streams when their schedules agree.
    sequence:
        Radius family: ``"empirical_bernstein"`` (variance-adaptive,
        default) or ``"hoeffding"`` (distribution-free baseline).
    min_fraction:
        The volume-fraction assumption the per-run sample cap is dimensioned
        for: a ``run(ε)`` call draws at most
        ``chernoff_ratio_sample_size(ε, δ, min_fraction)`` samples — exactly
        the budget a *fixed* estimator would commit up front under the same
        assumption — before giving up (``details["met"] = False``).  Because
        the cap is a pure function of the requested ε, a warm continuation
        and a cold run walk identical checkpoints.
    max_samples:
        Absolute ceiling on the stream length, over every ``run`` call.
    """

    block_size: int = 8192
    schedule: CheckpointSchedule = field(default_factory=CheckpointSchedule)
    sequence: SequenceKind = "empirical_bernstein"
    min_fraction: float = 0.05
    max_samples: int = 200_000

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block_size must be at least 1")
        if not 0 < self.min_fraction <= 1:
            raise ValueError("min_fraction must lie in (0, 1]")
        if self.max_samples < 1:
            raise ValueError("max_samples must be at least 1")


class AdaptiveMonteCarlo:
    """Box-sampling volume estimator with confidence-sequence stopping.

    Parameters
    ----------
    body:
        The set whose volume (inside ``bounds``) is estimated: anything with
        a vectorized ``contains_points`` method (``GeneralizedRelation``,
        ``HPolytope``, ``Ball``) or an explicit (batch) membership oracle.
        Passing a symbolic body keeps the estimator picklable — the service
        ships resumable estimators to worker processes and back.
    bounds:
        The enclosing box to sample uniformly.
    delta:
        Total failure budget of the confidence sequence (fixed for the
        lifetime of the estimator; refinement to a tighter ε under the same
        δ is statistically free, tightening δ is not).
    rng:
        The estimator's own stream (seed or generator); consumed
        incrementally across ``run`` calls.
    """

    def __init__(
        self,
        body,
        bounds: list[tuple[float, float]],
        delta: float,
        rng: RandomState = None,
        config: AdaptiveConfig | None = None,
    ) -> None:
        self.body = body
        self.bounds = [(float(low), float(high)) for low, high in bounds]
        box_volume = 1.0
        for low, high in self.bounds:
            if high < low:
                raise ValueError("invalid bounding box")
            box_volume *= high - low
        self.box_volume = box_volume
        self.config = config if config is not None else AdaptiveConfig()
        self.rng = ensure_rng(rng)
        self.sequence: ConfidenceSequence = make_sequence(
            self.config.sequence, delta, schedule=self.config.schedule
        )
        self.exhausted = False
        self._oracle: BatchOracle | None = None

    # ------------------------------------------------------------------
    @property
    def delta(self) -> float:
        """The failure budget the estimator was constructed with."""
        return self.sequence.delta

    @property
    def samples_used(self) -> int:
        """Total proposals drawn over the estimator's lifetime."""
        return self.sequence.count

    def _batch_oracle(self) -> BatchOracle:
        if self._oracle is None:
            contains_points = getattr(self.body, "contains_points", None)
            if contains_points is not None:
                self._oracle = batch_oracle_from_predicate(contains_points)
            else:
                self._oracle = as_batch_oracle(self.body)
        return self._oracle

    def __getstate__(self) -> dict:
        # The lazily built oracle may close over unpicklable state; it is
        # rebuilt from the body on the other side.
        state = dict(self.__dict__)
        state["_oracle"] = None
        return state

    # ------------------------------------------------------------------
    def run(self, epsilon: float) -> VolumeEstimate:
        """Draw until a ratio-``(1 + ε)`` estimate is certified (resumable).

        Returns as soon as the current checkpoint interval meets the target
        — immediately, without drawing, when a previous (tighter or equal)
        run already certified it.  When :attr:`~AdaptiveConfig.max_samples`
        is exhausted first, the returned estimate carries the *achieved*
        accuracy and ``details["met"] = False`` so callers can fall back.
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie strictly between 0 and 1")
        from repro.volume.chernoff import chernoff_ratio_sample_size

        with current_tracer().span(
            "adaptive-run", epsilon=epsilon, sequence=self.config.sequence
        ) as span:
            estimate = self._run_traced(epsilon, chernoff_ratio_sample_size)
            span.annotate(
                met=estimate.details["met"],
                samples=estimate.samples_used,
                checkpoints=estimate.details["checkpoints"],
                trajectory=estimate.details["trajectory"],
            )
        return estimate

    def _run_traced(self, epsilon: float, chernoff_ratio_sample_size) -> VolumeEstimate:
        sequence = self.sequence
        # The fixed-budget schedule for this run's contract (under the
        # min_fraction assumption) is the cap: adaptive stopping never
        # spends more than the a-priori estimator would have, and the cap
        # grows with a tightening ε so refinement is never starved by the
        # budget of an earlier, looser run.
        cap = min(
            chernoff_ratio_sample_size(epsilon, self.delta, self.config.min_fraction),
            self.config.max_samples,
        )
        oracle = self._batch_oracle()
        drawn_before = sequence.count
        interval = sequence.last_interval
        met = interval is not None and interval.meets_ratio(epsilon)
        while not met:
            # The stream only ever stops *at schedule positions*: a cap that
            # falls between checkpoints ends the run at the last completed
            # one instead of forcing an off-schedule evaluation.  This is
            # what keeps a warm continuation's checkpoint walk — and hence
            # its stopping decision — bit-identical to a cold run's, no
            # matter which caps the intermediate runs carried.
            target = sequence.next_checkpoint
            if target > cap:
                if interval is None and sequence.count < cap:
                    # Degenerate cap below the first checkpoint: take one
                    # (off-schedule) look before giving up.
                    target = cap
                else:
                    break
            pending = target - sequence.count
            hits = count_box_hits(
                oracle, self.bounds, pending, self.rng, self.config.block_size
            )
            sequence.observe_bernoulli(hits, pending)
            interval = sequence.checkpoint()
            met = interval.meets_ratio(epsilon)
        self.exhausted = not met
        return self._estimate(epsilon, interval, sequence.count - drawn_before)

    def _estimate(
        self, epsilon: float, interval: ConfidenceInterval | None, new_samples: int
    ) -> VolumeEstimate:
        assert interval is not None  # run() always reaches a first checkpoint
        met = interval.meets_ratio(epsilon)
        achieved = epsilon if met else interval.achieved_ratio_epsilon
        value = interval.ratio_point * self.box_volume
        return VolumeEstimate(
            value=value,
            epsilon=achieved,
            delta=self.delta,
            method="adaptive-monte-carlo",
            samples_used=self.sequence.count,
            oracle_calls=self.sequence.count,
            details={
                "met": met,
                "hit_fraction": interval.mean,
                "interval": (interval.lower, interval.upper),
                "box_volume": self.box_volume,
                "checkpoints": interval.checkpoint,
                "new_samples": new_samples,
                "sequence": self.config.sequence,
                "trajectory": self.sequence.trajectory(self.box_volume),
            },
        )


# ----------------------------------------------------------------------
# Adaptive telescoping
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveTelescopingConfig:
    """Parameters of :class:`AdaptiveTelescoping`.

    Mirrors :class:`repro.volume.telescoping.TelescopingConfig` where the
    concepts coincide (sampler, rounding, cube ratio) and replaces the fixed
    ``samples_per_phase`` with confidence-sequence stopping knobs.
    ``min_cv`` floors the pilot's coefficient-of-variation estimate so a
    zero-variance pilot cannot starve a phase of its ε share.
    """

    sampler: Literal["hit_and_run", "ball_walk"] = "hit_and_run"
    rounding: Literal["chebyshev", "covariance"] = "chebyshev"
    cube_ratio: float = 2.0
    schedule: CheckpointSchedule = field(default_factory=CheckpointSchedule)
    sequence: SequenceKind = "empirical_bernstein"
    max_samples_per_phase: int = 20_000
    block_size: int = 8192
    min_cv: float = 0.05

    def __post_init__(self) -> None:
        if self.cube_ratio <= 1.0:
            raise ValueError("cube_ratio must exceed 1")
        if self.max_samples_per_phase < 1:
            raise ValueError("max_samples_per_phase must be at least 1")
        if self.block_size < 1:
            raise ValueError("block_size must be at least 1")
        # A zero floor would let an all-degenerate pilot zero every Neyman
        # weight and divide by nothing in the allocation.
        if self.min_cv <= 0:
            raise ValueError("min_cv must be positive")


class AdaptiveTelescoping:
    """Telescoping volume estimator with per-phase adaptive stopping.

    The telescoping product structure is the classical one (homothetic cubes
    ``K_i = Q(K) ∩ C_i``, consecutive ratios at least ``1 / cube_ratio``);
    what changes is the per-phase budget:

    * δ is divided across the phases by the union-bound splitter
      (:func:`repro.inference.sequences.split_delta`);
    * a **pilot** (the schedule's first checkpoint in every phase) measures
      each phase's empirical variance;
    * the log-accuracy budget ``ln(1 + ε)`` is then allocated
      Neyman-style — shares proportional to ``cv_i^(2/3)``, the split that
      minimises total samples when phase ``i`` needs ``(cv_i / ε_i)²``
      samples — so high-variance phases receive the accuracy slack and
      low-variance phases stop almost immediately;
    * each phase then continues its confidence sequence until its own ratio
      target is certified.

    ``run`` is resumable exactly like :class:`AdaptiveMonteCarlo.run`: a
    tighter ε reallocates the budget from the richer statistics and
    continues every phase's stream in place.
    """

    def __init__(
        self,
        polytope: HPolytope,
        delta: float,
        rng: RandomState = None,
        config: AdaptiveTelescopingConfig | None = None,
    ) -> None:
        if not 0 < delta < 1:
            raise ValueError("delta must lie strictly between 0 and 1")
        self.polytope = polytope
        self.delta = delta
        self.rng = ensure_rng(rng)
        self.config = config if config is not None else AdaptiveTelescopingConfig()
        self.exhausted = False
        # Filled by _prepare on the first run (rounding may consume the rng).
        self.rounded = None
        self.radii: list[float] | None = None
        self.sequences: list[ConfidenceSequence] | None = None
        self.phase_rngs: list[np.random.Generator] | None = None
        self._bodies: dict[int, HPolytope] = {}

    # ------------------------------------------------------------------
    @property
    def samples_used(self) -> int:
        """Total walk samples drawn across all phases so far."""
        if self.sequences is None:
            return 0
        return sum(sequence.count for sequence in self.sequences)

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_bodies"] = {}  # rebuilt deterministically from radii
        return state

    def _prepare(self) -> None:
        if self.sequences is not None:
            return
        from repro.geometry.rounding import round_by_chebyshev, round_by_covariance

        if self.polytope.is_empty():
            raise EstimationError("polytope is empty; it has no well-bounded volume")
        if self.config.rounding == "covariance":
            self.rounded = round_by_covariance(self.polytope, self.rng)
        else:
            self.rounded = round_by_chebyshev(self.polytope)
        dimension = self.rounded.polytope.dimension
        radius = 1.0 / math.sqrt(dimension)
        radii = [radius]
        growth = self.config.cube_ratio ** (1.0 / dimension)
        while radii[-1] < self.rounded.outer_radius:
            radii.append(radii[-1] * growth)
        self.radii = radii
        phases = len(radii) - 1
        shares = split_delta(self.delta, max(phases, 1))
        self.sequences = [
            make_sequence(self.config.sequence, share, schedule=self.config.schedule)
            for share in shares[:phases]
        ]
        self.phase_rngs = spawn_rngs(self.rng, phases)

    def _body(self, index: int) -> HPolytope:
        """The ``index``-th telescoping body ``Q(K) ∩ C_index`` (cached)."""
        body = self._bodies.get(index)
        if body is None:
            assert self.radii is not None and self.rounded is not None
            radius = self.radii[index]
            dimension = self.rounded.polytope.dimension
            body = self.rounded.polytope.restrict_to_box(
                [(-radius, radius)] * dimension
            )
            self._bodies[index] = body
        return body

    def _draw_phase(self, phase: int, count: int) -> np.ndarray:
        """``count`` almost uniform samples of phase ``phase``'s outer body."""
        assert self.phase_rngs is not None
        body = self._body(phase + 1)
        rng = self.phase_rngs[phase]
        if self.config.sampler == "hit_and_run":
            from repro.sampling.hit_and_run import HitAndRunSampler

            return HitAndRunSampler(body).sample(rng, count)
        if self.config.sampler == "ball_walk":
            from repro.sampling.ball_walk import BallWalkSampler
            from repro.sampling.oracles import oracle_from_polytope

            chebyshev = body.chebyshev_ball()
            if chebyshev is None or chebyshev.radius <= 0:
                raise EstimationError("intermediate body is not full-dimensional")
            walker = BallWalkSampler(
                oracle_from_polytope(body),
                body.dimension,
                start=chebyshev.center,
                batch_oracle=batch_oracle_from_polytope(body),
            )
            return walker.sample(rng, count)
        raise ValueError(f"unknown sampler {self.config.sampler!r}")

    def _observe_phase(self, phase: int, count: int) -> None:
        """Draw ``count`` samples of phase ``phase`` and fold the hit counts."""
        assert self.radii is not None and self.sequences is not None
        tracer = current_tracer()
        with tracer.span(
            "telescoping-phase", phase=phase, sampler=self.config.sampler
        ) as span:
            samples = self._draw_phase(phase, count)
            inner = self.radii[phase]
            inside = int(np.sum(np.max(np.abs(samples), axis=1) <= inner + 1e-12))
            self.sequences[phase].observe_bernoulli(inside, samples.shape[0])
            if tracer.enabled:
                span.annotate(samples=int(samples.shape[0]), hits=inside)
                span.count("walk_samples", int(samples.shape[0]))
                if tracer.diagnostics:
                    from repro.sampling.diagnostics import uniformity_summary

                    summary = uniformity_summary(
                        samples,
                        [(-self.radii[phase + 1], self.radii[phase + 1])]
                        * samples.shape[1],
                        support_oracle=batch_oracle_from_polytope(self._body(phase + 1)),
                    )
                    if summary:
                        span.annotate(**summary)

    # ------------------------------------------------------------------
    def _allocate(self, epsilon: float) -> list[float]:
        """Neyman-style per-phase ε shares from the current variance estimates.

        The log budget ``ln(1 + ε)`` is split with weights
        ``max(cv_i, min_cv)^(2/3)``; the shares multiply back to exactly
        ``1 + ε``, so certifying each phase at ``(1 + ε_i)`` certifies the
        product at ``(1 + ε)``.
        """
        assert self.sequences is not None
        budget = math.log1p(epsilon)
        weights = []
        for sequence in self.sequences:
            mean = max(sequence.mean, 1.0 / (2.0 * self.config.cube_ratio))
            cv = math.sqrt(sequence.variance) / mean
            weights.append(max(cv, self.config.min_cv) ** (2.0 / 3.0))
        total = sum(weights)
        return [math.expm1(budget * weight / total) for weight in weights]

    def run(self, epsilon: float) -> VolumeEstimate:
        """Estimate the volume within ratio ``1 + ε`` w.p. ``1 - δ`` (resumable)."""
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie strictly between 0 and 1")
        with current_tracer().span(
            "adaptive-telescoping-run", epsilon=epsilon, sampler=self.config.sampler
        ) as span:
            estimate = self._run_traced(epsilon)
            span.annotate(
                met=estimate.details["met"],
                samples=estimate.samples_used,
                phases=estimate.details["phases"],
            )
        return estimate

    def _run_traced(self, epsilon: float) -> VolumeEstimate:
        self._prepare()
        assert self.sequences is not None and self.radii is not None
        drawn_before = self.samples_used
        cap = self.config.max_samples_per_phase
        # Pilot: bring every phase to its first checkpoint so the allocation
        # has a variance estimate to work with.
        for phase, sequence in enumerate(self.sequences):
            if sequence.checkpoints == 0:
                self._observe_phase(phase, min(sequence.pending(), cap))
                sequence.checkpoint()
        phase_epsilons = self._allocate(epsilon)
        met = True
        for phase, (sequence, share) in enumerate(
            zip(self.sequences, phase_epsilons)
        ):
            interval = sequence.last_interval
            while not (interval is not None and interval.meets_ratio(share)):
                # Stop only at schedule positions (see AdaptiveMonteCarlo.run):
                # a cap between checkpoints ends the phase at the last
                # completed one, keeping warm and cold phase walks aligned.
                target = sequence.next_checkpoint
                if target > cap:
                    met = False
                    break
                self._observe_phase(phase, target - sequence.count)
                interval = sequence.checkpoint()
        self.exhausted = not met
        return self._estimate(epsilon, phase_epsilons, met, self.samples_used - drawn_before)

    def _estimate(
        self, epsilon: float, phase_epsilons: list[float], met: bool, new_samples: int
    ) -> VolumeEstimate:
        assert (
            self.sequences is not None
            and self.radii is not None
            and self.rounded is not None
        )
        dimension = self.rounded.polytope.dimension
        log_volume = dimension * math.log(2.0 * self.radii[0])
        achieved_log = 0.0
        ratios = []
        for sequence in self.sequences:
            interval = sequence.last_interval
            assert interval is not None
            # Guard an (astronomically unlikely, δ-covered) zero lower bound
            # exactly like the fixed estimator guards a zero count.
            ratio = max(interval.ratio_point, 1.0 / (2.0 * max(interval.count, 1)))
            ratios.append(ratio)
            log_volume -= math.log(ratio)
            achieved = interval.achieved_ratio_epsilon
            achieved_log += math.log1p(min(achieved, 1e6))
        value = self.rounded.pull_back_volume(math.exp(log_volume))
        achieved_epsilon = epsilon if met else math.expm1(achieved_log)
        return VolumeEstimate(
            value=value,
            epsilon=achieved_epsilon,
            delta=self.delta,
            method=f"adaptive-telescoping[{self.config.sampler}]",
            samples_used=self.samples_used,
            details={
                "met": met,
                "phases": len(self.sequences),
                "ratios": ratios,
                "phase_epsilons": phase_epsilons,
                "phase_counts": [sequence.count for sequence in self.sequences],
                "sandwich_ratio": self.rounded.sandwich_ratio,
                "new_samples": new_samples,
                "sequence": self.config.sequence,
                "phase_trajectories": [
                    sequence.trajectory() for sequence in self.sequences
                ],
            },
        )
