"""repro.inference — adaptive confidence-sequence estimation.

The layer between the fixed-budget estimators of :mod:`repro.volume` and the
serving stack of :mod:`repro.service`:

* :mod:`repro.inference.sequences` — anytime-valid Hoeffding and
  empirical-Bernstein confidence sequences over streaming Bernoulli/bounded
  batches, with the union-bound δ splitters;
* :mod:`repro.inference.adaptive`  — :class:`AdaptiveMonteCarlo` and
  :class:`AdaptiveTelescoping`, estimators that stop each Bernoulli stream
  exactly when the requested ``(ε, δ)`` contract is certified and reallocate
  accuracy budget to high-variance phases;
* :mod:`repro.inference.refine`    — :class:`RefinableEstimate`, the
  resumable sufficient statistics that let a cached coarse answer be
  *continued* to a tighter ε instead of recomputed (the service cache's
  counterpart to ε-dominance).
"""

from repro.inference.adaptive import (
    AdaptiveConfig,
    AdaptiveMonteCarlo,
    AdaptiveTelescoping,
    AdaptiveTelescopingConfig,
)
from repro.inference.refine import RefinableEstimate
from repro.inference.sequences import (
    CheckpointSchedule,
    ConfidenceInterval,
    ConfidenceSequence,
    EmpiricalBernsteinSequence,
    HoeffdingSequence,
    checkpoint_delta,
    make_sequence,
    split_delta,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveMonteCarlo",
    "AdaptiveTelescoping",
    "AdaptiveTelescopingConfig",
    "RefinableEstimate",
    "CheckpointSchedule",
    "ConfidenceInterval",
    "ConfidenceSequence",
    "EmpiricalBernsteinSequence",
    "HoeffdingSequence",
    "checkpoint_delta",
    "make_sequence",
    "split_delta",
]
