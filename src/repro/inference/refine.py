"""Refinable estimates: cached answers that can be *continued*, not recomputed.

The service cache's ε-dominance rule reuses a tight answer for loose
requests; :class:`RefinableEstimate` covers the opposite direction.  A
cached answer produced by an adaptive estimator carries the estimator itself
— its confidence-sequence statistics and its random generator are the
*sufficient statistics* of the computation — so a later request at a tighter
ε resumes the very same sample stream from where it stopped.  The δ
accounting makes this free: the confidence sequence is valid at every
checkpoint simultaneously, so stopping at ε = 0.2 and later continuing to
ε = 0.05 spends exactly the failure budget a cold ε = 0.05 run would have
spent, and (for the Monte-Carlo estimator) lands on the bit-identical value
while drawing only the difference in samples.

Tightening **δ** is different: a sequence built for δ cannot retroactively
promise a smaller failure probability.  :meth:`RefinableEstimate.refine`
therefore refuses requests below the stored δ — the session falls back to a
fresh computation for those.
"""

from __future__ import annotations

import logging
import threading

from repro.volume.base import VolumeEstimate

__all__ = ["RefinableEstimate"]

logger = logging.getLogger(__name__)


class RefinableEstimate:
    """A resumable adaptive computation and the accuracy it has certified.

    Parameters
    ----------
    estimator:
        A resumable adaptive estimator (anything with ``run(epsilon)``,
        ``delta``, ``samples_used`` and ``exhausted`` — in practice
        :class:`~repro.inference.adaptive.AdaptiveMonteCarlo` or
        :class:`~repro.inference.adaptive.AdaptiveTelescoping`).
    epsilon:
        The tightest ε certified so far.
    delta:
        The estimator's failure budget (refinement floor).

    Instances travel inside cached :class:`~repro.queries.aggregates.AggregateResult`
    values and across process boundaries (the executor's work units pickle
    them to workers and back), so everything they hold must pickle; the
    internal lock is dropped and re-created around pickling.
    """

    def __init__(self, estimator, epsilon: float, delta: float) -> None:
        self.estimator = estimator
        self.epsilon = float(epsilon)
        self.delta = float(delta)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def draws(self) -> int:
        """Total samples the underlying estimator has consumed."""
        return int(self.estimator.samples_used)

    @property
    def exhausted(self) -> bool:
        """Has the estimator hit its sample cap without certifying a target?"""
        return bool(getattr(self.estimator, "exhausted", False))

    def can_refine_to(self, epsilon: float, delta: float) -> bool:
        """Can a continuation serve a request at ``(epsilon, delta)``?

        Requires ``delta`` at or above the stored budget (δ cannot be
        tightened in place) and, when the estimator has exhausted its cap,
        an ε no tighter than what is already certified.
        """
        if not 0 < epsilon < 1:
            return False
        if delta < self.delta:
            return False
        if self.exhausted and epsilon < self.epsilon:
            return False
        return True

    def refine(self, epsilon: float, delta: float | None = None) -> VolumeEstimate:
        """Continue the computation until ``epsilon`` is certified.

        Returns the refreshed estimate; its ``details["met"]`` records
        whether the target was certified (``False`` when the sample cap cut
        the continuation short — callers should fall back to a fresh
        computation then).  Raises :class:`ValueError` for a δ below the
        stored budget.
        """
        if delta is not None and delta < self.delta:
            raise ValueError(
                f"cannot tighten delta in place (stored {self.delta:g}, "
                f"requested {delta:g}); recompute instead"
            )
        with self._lock:
            before = self.draws
            estimate = self.estimator.run(epsilon)
            met = estimate.details.get("met", False)
            logger.debug(
                "refine: eps %g -> %g, +%d sample(s), %s",
                self.epsilon,
                epsilon,
                self.draws - before,
                "certified" if met else "cap exhausted (caller recomputes)",
            )
            if met:
                self.epsilon = min(self.epsilon, epsilon)
            return estimate

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        # Snapshot under the lock: pickling a live estimate (the persistent
        # store writes entries through while refinements may be running on
        # other threads) must not capture a torn mid-refinement state.
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:
        return (
            f"RefinableEstimate(epsilon={self.epsilon:g}, delta={self.delta:g}, "
            f"draws={self.draws}, exhausted={self.exhausted})"
        )
