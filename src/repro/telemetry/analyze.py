"""EXPLAIN ANALYZE: fold observed runtime statistics back into plan output.

``explain_plan`` (and ``QueryEngine.explain``) describe what the planner
*intends*: routes, dimensions, disjunct estimates, shared digests.  This
module supplies the other half — what actually happened when the plan ran:

* per-subplan-digest runtime stats (samples drawn, wall time, whether the
  member volume was served primed/from the subplan cache or computed fresh,
  the accuracy it was computed at) harvested from ``union-member`` spans;
* the union acceptance pass (trials, accepted, acceptance rate) from the
  ``union-acceptance`` span;
* the adaptive estimator's per-checkpoint ``(n, estimate, eps)`` trajectory,
  taken from the result's details (or the ``adaptive-run`` span);
* aggregate kernel counters (proposals, hits, chain steps, ...).

:func:`analyze_trace` distils a tracer's recorded spans (plus, optionally,
the result object the traced run produced) into a :class:`TraceAnalysis`;
``PlanExplanation.render`` appends its observations to the plan listing when
one is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.telemetry.tracer import Span, Tracer

__all__ = ["SubplanStats", "TraceAnalysis", "analyze_trace", "base_digest"]


def base_digest(digest: str) -> str:
    """Strip the ``@order`` / ``#index`` decorations union lowering appends."""
    return digest.split("@", 1)[0].split("#", 1)[0]


@dataclass
class SubplanStats:
    """Observed runtime behaviour of one subplan digest."""

    digest: str
    samples: int = 0
    wall: float = 0.0
    spans: int = 0
    primed: int = 0
    computed: int = 0
    epsilon: float | None = None
    value: float | None = None

    @property
    def provenance(self) -> str:
        """``primed`` (cache/broker), ``computed`` (fresh), or ``mixed``."""
        if self.primed and self.computed:
            return "mixed"
        if self.primed:
            return "primed"
        return "computed"

    def merge(self, other: "SubplanStats") -> None:
        self.samples += other.samples
        self.wall += other.wall
        self.spans += other.spans
        self.primed += other.primed
        self.computed += other.computed
        if other.epsilon is not None:
            self.epsilon = (
                other.epsilon if self.epsilon is None else min(self.epsilon, other.epsilon)
            )
        if other.value is not None:
            self.value = other.value

    def describe(self) -> str:
        parts = [f"samples={self.samples}", f"source={self.provenance}"]
        if self.epsilon is not None:
            parts.append(f"eps={self.epsilon:g}")
        if self.wall:
            parts.append(f"wall={self.wall * 1e3:.1f}ms")
        return " ".join(parts)


@dataclass
class TraceAnalysis:
    """Everything EXPLAIN ANALYZE learned from one traced run."""

    route: str | None = None
    value: float | None = None
    wall: float = 0.0
    samples: int = 0
    acceptance: float | None = None
    acceptance_trials: int = 0
    trajectory: list = field(default_factory=list)
    phase_trajectories: list = field(default_factory=list)
    subplans: dict[str, SubplanStats] = field(default_factory=dict)
    counters: dict[str, float] = field(default_factory=dict)
    span_count: int = 0

    def for_node(self, digest: str | None) -> SubplanStats | None:
        """Aggregate observed stats for a plan node's digest.

        Union lowering tags members with the node digest plus ordering or
        positional decorations; matching happens on the undecorated digest.
        """
        if not digest:
            return None
        wanted = base_digest(digest)
        merged: SubplanStats | None = None
        for key, stats in self.subplans.items():
            if base_digest(key) != wanted:
                continue
            if merged is None:
                merged = SubplanStats(digest=wanted)
            merged.merge(stats)
        return merged

    def render(self) -> str:
        """Human-readable summary, the EXPLAIN ANALYZE footer."""
        head = ["observed:"]
        if self.route:
            head.append(f"route={self.route}")
        if self.value is not None:
            head.append(f"value={self.value:.6g}")
        head.append(f"wall={self.wall * 1e3:.1f}ms")
        if self.samples:
            head.append(f"samples={self.samples}")
        if self.acceptance is not None:
            head.append(f"acceptance={self.acceptance:.3f} ({self.acceptance_trials} trials)")
        lines = [" ".join(head)]
        if self.trajectory:
            rendered = " -> ".join(
                f"(n={int(n)}, est={est:.4g}, eps={eps:.3g})"
                for n, est, eps in self.trajectory[:8]
            )
            if len(self.trajectory) > 8:
                rendered += f" -> ... [{len(self.trajectory)} checkpoints]"
            lines.append(f"  trajectory: {rendered}")
        for index, phase in enumerate(self.phase_trajectories):
            if not phase:
                continue
            last = phase[-1]
            lines.append(
                f"  phase[{index}]: {len(phase)} checkpoints, "
                f"final (n={int(last[0])}, est={last[1]:.4g}, eps={last[2]:.3g})"
            )
        for key in sorted(self.subplans):
            stats = self.subplans[key]
            lines.append(f"  subplan {base_digest(key)[:12]}: {stats.describe()}")
        if self.counters:
            rendered = ", ".join(
                f"{name}={int(value) if float(value).is_integer() else value:g}"
                if isinstance(value, (int, float))
                else f"{name}={value}"
                for name, value in sorted(self.counters.items())
            )
            lines.append(f"  counters: {rendered}")
        return "\n".join(lines)


def _harvest_member(analysis: TraceAnalysis, span: Span) -> None:
    digest = span.attrs.get("digest") or f"member[{span.attrs.get('index', '?')}]"
    stats = analysis.subplans.get(digest)
    if stats is None:
        stats = analysis.subplans[digest] = SubplanStats(digest=digest)
    addition = SubplanStats(
        digest=digest,
        samples=int(span.attrs.get("samples", 0) or 0),
        wall=span.wall,
        spans=1,
        primed=1 if span.attrs.get("source") == "primed" else 0,
        computed=1 if span.attrs.get("source") == "computed" else 0,
        epsilon=span.attrs.get("epsilon"),
        value=span.attrs.get("value"),
    )
    stats.merge(addition)


def analyze_trace(tracer: Tracer, result: object | None = None) -> TraceAnalysis:
    """Distil a tracer's spans (and optionally the produced result) for EXPLAIN.

    ``result`` may be a :class:`~repro.volume.base.VolumeEstimate` or any
    object carrying one as ``.estimate`` (service results); when given, its
    value/accuracy/details take precedence over what the spans recorded —
    the spans then mostly contribute wall times, provenance and counters.
    """
    analysis = TraceAnalysis()
    spans = tracer.finished()
    analysis.span_count = len(spans)

    ids = {span.span_id for span in spans}
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            analysis.wall = max(analysis.wall, span.wall)
        if span.name == "union-member":
            _harvest_member(analysis, span)
        elif span.name == "union-acceptance":
            analysis.acceptance = span.attrs.get("acceptance", analysis.acceptance)
            analysis.acceptance_trials += int(span.attrs.get("trials", 0) or 0)
        elif span.name == "adaptive-run":
            trajectory = span.attrs.get("trajectory")
            if trajectory and not analysis.trajectory:
                analysis.trajectory = list(trajectory)
        if analysis.route is None:
            route = span.attrs.get("route") or span.attrs.get("method")
            if route is not None:
                analysis.route = str(route)

    totals = getattr(tracer, "aggregate_counters", None)
    if callable(totals):
        analysis.counters = totals()

    estimate = getattr(result, "estimate", result)
    if estimate is not None:
        value = getattr(estimate, "value", None)
        if isinstance(value, (int, float)):
            analysis.value = float(value)
        samples = getattr(estimate, "samples_used", 0)
        if samples:
            analysis.samples = int(samples)
        method = getattr(estimate, "method", None)
        if method:
            analysis.route = str(method)
        details = getattr(estimate, "details", None) or {}
        if details.get("trajectory"):
            analysis.trajectory = list(details["trajectory"])
        if details.get("phase_trajectories"):
            analysis.phase_trajectories = [list(phase) for phase in details["phase_trajectories"]]
        if analysis.acceptance is None and "acceptance" in details:
            acceptance = details["acceptance"]
            if isinstance(acceptance, (int, float)):
                analysis.acceptance = float(acceptance)
    if not analysis.samples:
        analysis.samples = int(
            sum(stats.samples for stats in analysis.subplans.values())
        )
    return analysis
