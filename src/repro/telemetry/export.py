"""Exporters: Chrome-trace JSON dumps and Prometheus-style text exposition.

Two complementary views of the same telemetry:

* :func:`chrome_trace` / :func:`dump_chrome_trace` turn a tracer's recorded
  spans into the Chrome trace-event format (the ``chrome://tracing`` /
  Perfetto JSON schema: complete ``"X"`` events with microsecond ``ts`` and
  ``dur``), so a batch's span tree can be inspected on a real timeline.
* :func:`prometheus_text` renders a metrics registry — the counters of a
  :class:`~repro.service.metrics.ServiceMetrics` plus the aggregated span
  counters of a tracer — in the Prometheus text exposition format, one
  ``repro_*`` family per counter with labels for the per-route/per-backend
  breakdowns.

Both are dependency-free (``json`` and string formatting only) and read-only:
exporting never mutates the tracer or the metrics.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Protocol

from repro.telemetry.tracer import Span, Tracer

__all__ = ["chrome_trace", "dump_chrome_trace", "escape_label_value", "prometheus_text"]


class _MetricsLike(Protocol):
    def snapshot(self) -> dict: ...


_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")

# Label name for the dict-valued counters of ``ServiceMetrics.snapshot()``.
_DICT_LABELS = {
    "plan_choices": "estimator",
    "backend_choices": "backend",
    "backend_units": "backend",
    "mean_latency": "route",
    "requests": "route",
}

# One HELP line per service-metrics family; anything not listed gets a
# generated fallback so every exposed series carries metadata (the
# scripts/check_prom_exposition.py lint enforces this).
_METRIC_HELP = {
    "cache_hits": "Requests served from the result cache.",
    "cache_dominance_hits": "Cache hits served by an epsilon-dominating entry.",
    "cache_misses": "Requests that missed the result cache.",
    "cache_evictions": "Entries evicted from the in-memory result cache.",
    "cache_expirations": "Entries dropped from the cache by TTL expiry.",
    "cache_refinements": "Cached adaptive answers refined in place to a tighter epsilon.",
    "store_hits": "Requests served from the persistent result store.",
    "store_writes": "Results written through to the persistent store.",
    "store_invalidations": "Store entries dropped by plan-aware invalidation.",
    "subplan_hits": "Union members served from the shared subplan cache.",
    "subplan_misses": "Union members estimated because no shared entry existed.",
    "plan_choices": "Plans chosen, by executed estimator route.",
    "backend_choices": "Batches executed, by execution backend.",
    "backend_units": "Work units executed, by execution backend.",
    "requests": "Executed requests, by estimator route.",
    "mean_latency": "Mean execution latency per estimator route.",
    "hit_rate": "Cache hits over total lookups.",
    "over_budget": "Executions exceeding their planned time budget.",
    "batch_requests": "Requests received through the batch executor.",
    "batch_deduplicated": "Batch requests coalesced onto an identical in-batch twin.",
}


def _sanitize(name: str) -> str:
    return _NAME_SANITIZER.sub("_", name)


def escape_label_value(value: str) -> str:
    """Escape a Prometheus label value (backslash, double quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _span_args(span: Span) -> dict:
    args = {key: _jsonable(value) for key, value in span.attrs.items()}
    for name, value in span.counters.items():
        args[f"counter.{name}"] = value
    args["cpu_ms"] = round(span.cpu * 1e3, 3)
    return args


def _jsonable(value: object) -> object:
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def chrome_trace(tracer: Tracer, process_id: int = 1) -> dict:
    """Render the tracer's spans as a Chrome trace-event document.

    Each finished span becomes one complete (``"ph": "X"``) event whose
    ``ts``/``dur`` are microseconds on the tracer's ``perf_counter`` clock,
    rebased so the earliest span starts at 0.  Attributes and counters ride
    along in ``args``; span/parent ids are included so the tree structure
    survives the flat event list.
    """
    spans = tracer.finished()
    base = min((span.start for span in spans), default=0.0)
    events = []
    for span in spans:
        events.append(
            {
                "name": span.name,
                "ph": "X",
                "ts": round((span.start - base) * 1e6, 3),
                "dur": round(span.wall * 1e6, 3),
                "pid": process_id,
                "tid": span.thread_id % 2**31,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    **_span_args(span),
                },
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def dump_chrome_trace(tracer: Tracer, path: str | Path, process_id: int = 1) -> Path:
    """Write :func:`chrome_trace` output to ``path`` and return the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, process_id), indent=2))
    return path


def _metadata(lines: list[str], family: str, kind: str, help_text: str) -> None:
    """Append the ``# HELP`` / ``# TYPE`` pair introducing one family."""
    lines.append(f"# HELP {family} {help_text}")
    lines.append(f"# TYPE {family} {kind}")


def prometheus_text(
    metrics: _MetricsLike | None = None,
    tracer: Tracer | None = None,
    prefix: str = "repro",
    observatory: object | None = None,
) -> str:
    """Render service counters and trace counters as Prometheus text exposition.

    Scalar counters of the metrics snapshot become ``<prefix>_<name>_total``
    counter families; dict-valued entries (per-route, per-backend, per-plan
    breakdowns) become labeled samples; ``hit_rate`` and ``mean_latency`` are
    exposed as gauges.  A tracer's aggregated span counters are appended as
    ``<prefix>_trace_<name>_total``, and an
    :class:`~repro.telemetry.observatory.Observatory` contributes its
    histogram / counter / SLO families.  Every family carries ``# HELP`` and
    ``# TYPE`` metadata and label values are escaped, as the
    ``scripts/check_prom_exposition.py`` lint enforces.  Every argument may
    be omitted.
    """
    lines: list[str] = []
    if metrics is not None:
        snapshot = metrics.snapshot()
        for key in sorted(snapshot):
            value = snapshot[key]
            name = _sanitize(key)
            help_text = _METRIC_HELP.get(key, f"Service metric {key}.")
            if isinstance(value, dict):
                label = _DICT_LABELS.get(key, "key")
                kind, suffix = ("gauge", "") if key == "mean_latency" else ("counter", "_total")
                _metadata(lines, f"{prefix}_{name}{suffix}", kind, help_text)
                for label_value in sorted(value):
                    rendered = escape_label_value(str(label_value))
                    lines.append(
                        f'{prefix}_{name}{suffix}{{{label}="{rendered}"}} '
                        f"{_format_value(value[label_value])}"
                    )
            elif key == "hit_rate":
                _metadata(lines, f"{prefix}_{name}", "gauge", help_text)
                lines.append(f"{prefix}_{name} {_format_value(value)}")
            else:
                _metadata(lines, f"{prefix}_{name}_total", "counter", help_text)
                lines.append(f"{prefix}_{name}_total {_format_value(value)}")
    if tracer is not None:
        totals = getattr(tracer, "aggregate_counters", lambda: {})()
        for key in sorted(totals):
            name = _sanitize(key)
            _metadata(
                lines,
                f"{prefix}_trace_{name}_total",
                "counter",
                f"Aggregated span counter {key}.",
            )
            lines.append(f"{prefix}_trace_{name}_total {_format_value(totals[key])}")
    if observatory is not None:
        renderer = getattr(observatory, "prometheus_lines", None)
        if renderer is not None:
            lines.extend(renderer(prefix))
    return "\n".join(lines) + ("\n" if lines else "")


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    return str(value)
