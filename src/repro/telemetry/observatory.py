"""The continuous observatory: histograms, per-plan profiles, calibration audit.

Four cooperating pieces turn the repo's statistical and latency contracts into
continuously monitored runtime invariants:

* :class:`LogHistogram` / :class:`RollupRing` — a lock-cheap log-bucketed
  histogram with ring-buffered 1s/1m rollups, rendered in proper Prometheus
  histogram exposition (cumulative ``le`` buckets, ``_sum``, ``_count``).
* :class:`Observatory` — the per-session registry of histograms, counters and
  profiles every serving layer (session, backends, serving admission) reports
  into.  A disabled observatory is a handful of attribute reads per request.
* :class:`PlanProfile` / :class:`ProfileRegistry` — per-plan-digest query
  profiles (calls, wall quantiles, samples drawn, hit ratios, chosen routes,
  per-route throughput) accumulated online, persisted through the
  :class:`~repro.store.ResultStore`, and primed back into
  :meth:`~repro.service.planner.Planner.observe_throughput` on restart.
* :class:`CalibrationAuditor` — replays analytically-known-volume canaries
  (box / simplex / L1-ball workloads) through a live session on an idle-time
  budget and keeps anytime coverage statistics per (route, ε, δ) cell,
  alarming when empirical coverage drops below ``1 - δ`` at three sigma.
* :class:`SLOMonitor` — error-budget burn rates over the rollup rings of a
  latency histogram, for alerting on fast (1m) and slow (1h) windows.

Example::

    session = ServiceSession(database)           # observatory on by default
    session.volume(query, epsilon=0.1, delta=0.05)
    session.observatory.histogram("request_seconds").quantile(0.5)
    session.observatory.profiles.top(5)
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.service.planner import Planner
    from repro.service.session import ServiceSession
    from repro.store import ResultStore

__all__ = [
    "CalibrationAuditor",
    "Canary",
    "CoverageCell",
    "LogHistogram",
    "Observatory",
    "PlanProfile",
    "ProfileRegistry",
    "RollupRing",
    "SLOMonitor",
    "default_canaries",
]

PROFILE_KIND = "profile"
_PROFILE_KEY_PREFIX = "profile:"
_STATE_VERSION = 1


class RollupRing:
    """A fixed-width ring of time slots aggregating (count, sum, bad) per slot.

    Slot ``int(now // width) % slots`` owns the observation; a slot whose
    recorded epoch differs from the current one is stale and is reset before
    use, so the ring never reports data older than ``width * slots`` seconds.
    Callers hold the owning histogram's lock, so the ring itself is lock-free.
    """

    __slots__ = ("width", "slots", "_epochs", "_counts", "_sums", "_bad")

    def __init__(self, width_seconds: float, slots: int) -> None:
        self.width = float(width_seconds)
        self.slots = int(slots)
        self._epochs = [-1] * self.slots
        self._counts = [0] * self.slots
        self._sums = [0.0] * self.slots
        self._bad = [0] * self.slots

    def observe(self, value: float, now: float, bad: bool) -> None:
        """Fold one observation into the slot owning ``now``."""
        epoch = int(now // self.width)
        index = epoch % self.slots
        if self._epochs[index] != epoch:
            self._epochs[index] = epoch
            self._counts[index] = 0
            self._sums[index] = 0.0
            self._bad[index] = 0
        self._counts[index] += 1
        self._sums[index] += value
        if bad:
            self._bad[index] += 1

    def totals(self, now: float, window_seconds: float) -> tuple[int, float, int]:
        """``(count, sum, bad)`` over the trailing ``window_seconds``."""
        epoch = int(now // self.width)
        span = min(self.slots, max(1, int(math.ceil(window_seconds / self.width))))
        count, total, bad = 0, 0.0, 0
        for back in range(span):
            index = (epoch - back) % self.slots
            if self._epochs[index] == epoch - back:
                count += self._counts[index]
                total += self._sums[index]
                bad += self._bad[index]
        return count, total, bad


class LogHistogram:
    """A log-bucketed histogram with an embedded pair of rollup rings.

    Buckets are geometric (``start * factor**i`` upper bounds plus a ``+Inf``
    overflow), which keeps relative quantile error bounded by ``factor`` over
    many decades of latency at a fixed, small memory cost.  ``observe`` takes
    one lock, one bisect and a few adds — cheap enough for per-request use.
    When ``slo_threshold`` is set, observations above it count as "bad" in
    the rings, which is what :class:`SLOMonitor` burns error budget against.
    """

    def __init__(
        self,
        name: str,
        start: float = 1e-4,
        factor: float = 2.0,
        buckets: int = 22,
        unit: str = "seconds",
        slo_threshold: float | None = None,
    ) -> None:
        if start <= 0 or factor <= 1 or buckets < 1:
            raise ValueError("start must be > 0, factor > 1, buckets >= 1")
        self.name = name
        self.unit = unit
        self.slo_threshold = slo_threshold
        self.bounds: tuple[float, ...] = tuple(
            start * factor**index for index in range(buckets)
        )
        self._counts = [0] * (buckets + 1)  # terminal slot is the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = Lock()
        self.ring_fast = RollupRing(1.0, 120)  # 1s slots, 2 minutes of history
        self.ring_slow = RollupRing(60.0, 60)  # 1m slots, 1 hour of history

    def observe(self, value: float, now: float | None = None) -> None:
        """Record one observation (``now`` defaults to ``time.monotonic()``)."""
        if now is None:
            now = time.monotonic()
        value = float(value)
        bad = self.slo_threshold is not None and value > self.slo_threshold
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            self.ring_fast.observe(value, now, bad)
            self.ring_slow.observe(value, now, bad)

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def quantile(self, q: float) -> float:
        """The upper bound of the bucket holding quantile ``q`` (0 if empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must lie in [0, 1], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            rank = q * total
            running = 0
            for index, bucket_count in enumerate(self._counts):
                running += bucket_count
                if running >= rank and bucket_count:
                    if index < len(self.bounds):
                        return self.bounds[index]
                    return self.bounds[-1] * 2.0  # overflow bucket
        return self.bounds[-1] * 2.0

    def snapshot(self) -> dict[str, Any]:
        """A consistent point-in-time view (cumulative buckets, sum, count)."""
        with self._lock:
            cumulative = 0
            buckets: list[tuple[float, int]] = []
            for index, bucket_count in enumerate(self._counts[:-1]):
                cumulative += bucket_count
                buckets.append((self.bounds[index], cumulative))
            return {
                "name": self.name,
                "unit": self.unit,
                "count": self._count,
                "sum": self._sum,
                "buckets": buckets,
            }

    def window_totals(
        self, window_seconds: float, now: float | None = None
    ) -> tuple[int, float, int]:
        """``(count, sum, bad)`` over the trailing window, from the rings."""
        if now is None:
            now = time.monotonic()
        with self._lock:
            ring = self.ring_fast if window_seconds <= 120.0 else self.ring_slow
            return ring.totals(now, window_seconds)


@dataclass
class SLOMonitor:
    """Error-budget burn rates for one latency histogram.

    The objective is "a fraction ``objective`` of requests complete within
    the histogram's ``slo_threshold``"; the burn rate over a window is the
    observed bad fraction divided by the budget ``1 - objective`` (1.0 means
    the budget is being consumed exactly as provisioned; multi-window
    alerting pages when both the fast and the slow window burn hot).
    """

    histogram: LogHistogram
    objective: float = 0.999

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(f"objective must lie in (0, 1), got {self.objective}")

    def burn_rate(self, window_seconds: float, now: float | None = None) -> float:
        """Budget burn over the trailing window (0.0 when no traffic)."""
        count, _, bad = self.histogram.window_totals(window_seconds, now=now)
        if count == 0:
            return 0.0
        return (bad / count) / (1.0 - self.objective)

    def status(self, now: float | None = None) -> dict[str, Any]:
        """Objective, threshold and the fast/slow window burn rates."""
        fast = self.burn_rate(60.0, now=now)
        slow = self.burn_rate(3600.0, now=now)
        return {
            "histogram": self.histogram.name,
            "objective": self.objective,
            "threshold": self.histogram.slo_threshold,
            "burn_1m": fast,
            "burn_1h": slow,
            "healthy": fast <= 1.0,
        }


class PlanProfile:
    """The accumulated runtime profile of one plan digest.

    Tracks executions (count, wall/CPU totals, a wall-latency log histogram
    for quantiles, samples drawn, routes chosen) and cache traffic (memory /
    dominance / store / refined hits).  Mutation happens under the owning
    :class:`ProfileRegistry`'s lock; the profile itself carries no lock so
    its state round-trips through plain dicts (and hence the result store).
    """

    __slots__ = (
        "digest",
        "calls",
        "hits",
        "wall_total",
        "cpu_total",
        "samples_total",
        "routes",
        "route_rates",
        "_wall_counts",
        "_wall_bounds",
    )

    _EWMA = 0.3  # matches Planner's global throughput smoothing

    def __init__(self, digest: str) -> None:
        self.digest = digest
        self.calls = 0
        self.hits: dict[str, int] = {}
        self.wall_total = 0.0
        self.cpu_total = 0.0
        self.samples_total = 0
        self.routes: dict[str, int] = {}
        self.route_rates: dict[str, float] = {}
        self._wall_bounds: tuple[float, ...] = tuple(
            1e-4 * 2.0**index for index in range(22)
        )
        self._wall_counts = [0] * (len(self._wall_bounds) + 1)

    def record_execution(
        self, route: str, wall: float, samples: int, cpu: float = 0.0
    ) -> None:
        """Fold one executed request into the profile."""
        self.calls += 1
        self.wall_total += wall
        self.cpu_total += cpu
        self.samples_total += int(samples)
        self.routes[route] = self.routes.get(route, 0) + 1
        self._wall_counts[bisect_left(self._wall_bounds, wall)] += 1
        if samples and wall > 0.0:
            rate = samples / wall
            previous = self.route_rates.get(route)
            if previous is None:
                self.route_rates[route] = rate
            else:
                self.route_rates[route] = (
                    1.0 - self._EWMA
                ) * previous + self._EWMA * rate

    def record_hit(self, source: str) -> None:
        """Count one cache hit (``memory``/``dominance``/``store``/``refined``)."""
        self.hits[source] = self.hits.get(source, 0) + 1

    def wall_quantile(self, q: float) -> float:
        """Bucket upper bound holding wall-clock quantile ``q`` (0 if empty)."""
        total = sum(self._wall_counts)
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for index, count in enumerate(self._wall_counts):
            running += count
            if running >= rank and count:
                if index < len(self._wall_bounds):
                    return self._wall_bounds[index]
                return self._wall_bounds[-1] * 2.0
        return self._wall_bounds[-1] * 2.0

    @property
    def hit_count(self) -> int:
        """Total cache hits across all sources."""
        return sum(self.hits.values())

    @property
    def hit_ratio(self) -> float:
        """Hits over total traffic (hits + executions)."""
        traffic = self.hit_count + self.calls
        return self.hit_count / traffic if traffic else 0.0

    @property
    def dominant_route(self) -> str:
        """The most frequently executed route (empty when never executed)."""
        if not self.routes:
            return ""
        return max(sorted(self.routes), key=lambda route: self.routes[route])

    def as_dict(self) -> dict[str, Any]:
        """The row rendered by ``/v1/profile`` and ``repro top``."""
        return {
            "digest": self.digest,
            "calls": self.calls,
            "hits": self.hit_count,
            "hit_ratio": round(self.hit_ratio, 4),
            "hit_sources": dict(self.hits),
            "route": self.dominant_route,
            "routes": dict(self.routes),
            "wall_total": self.wall_total,
            "cpu_total": self.cpu_total,
            "wall_p50": self.wall_quantile(0.5),
            "wall_p95": self.wall_quantile(0.95),
            "samples_total": self.samples_total,
            "route_rates": {
                route: round(rate, 3) for route, rate in self.route_rates.items()
            },
        }

    def to_state(self) -> dict[str, Any]:
        """A plain-dict persistence payload (survives class evolution)."""
        return {
            "version": _STATE_VERSION,
            "digest": self.digest,
            "calls": self.calls,
            "hits": dict(self.hits),
            "wall_total": self.wall_total,
            "cpu_total": self.cpu_total,
            "samples_total": self.samples_total,
            "routes": dict(self.routes),
            "route_rates": dict(self.route_rates),
            "wall_counts": list(self._wall_counts),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "PlanProfile":
        """Rebuild a profile from :meth:`to_state` output."""
        profile = cls(str(state["digest"]))
        profile.calls = int(state.get("calls", 0))
        profile.hits = dict(state.get("hits", {}))
        profile.wall_total = float(state.get("wall_total", 0.0))
        profile.cpu_total = float(state.get("cpu_total", 0.0))
        profile.samples_total = int(state.get("samples_total", 0))
        profile.routes = dict(state.get("routes", {}))
        profile.route_rates = dict(state.get("route_rates", {}))
        counts = list(state.get("wall_counts", []))
        if len(counts) == len(profile._wall_counts):
            profile._wall_counts = [int(value) for value in counts]
        return profile


class ProfileRegistry:
    """A bounded LRU of :class:`PlanProfile`, persisted through the store.

    Profiles are keyed by plan digest, mutated under one registry lock, and
    written through to the result store under ``profile:<digest>`` keys with
    ``kind="profile"`` and an empty relation footprint, so they survive both
    restarts *and* relation invalidations (a profile describes the plan's
    runtime behaviour, not the served value — a mutated relation does not
    make the latency history wrong).
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._lock = Lock()
        self._profiles: "OrderedDict[str, PlanProfile]" = OrderedDict()
        self._dirty: set[str] = set()
        self._last_persist = 0.0
        self.persist_interval = 1.0

    def _get(self, digest: str) -> PlanProfile:
        profile = self._profiles.get(digest)
        if profile is None:
            if len(self._profiles) >= self.capacity:
                self._profiles.popitem(last=False)
            profile = PlanProfile(digest)
            self._profiles[digest] = profile
        else:
            self._profiles.move_to_end(digest)
        return profile

    def record_execution(
        self,
        digest: str | None,
        route: str,
        wall: float,
        samples: int,
        cpu: float = 0.0,
    ) -> None:
        """Fold one execution into the digest's profile (no-op for ``None``)."""
        if not digest:
            return
        with self._lock:
            self._get(digest).record_execution(route, wall, samples, cpu=cpu)
            self._dirty.add(digest)

    def record_hit(self, digest: str | None, source: str) -> None:
        """Count one cache hit against the digest's profile."""
        if not digest:
            return
        with self._lock:
            self._get(digest).record_hit(source)
            self._dirty.add(digest)

    def get(self, digest: str) -> PlanProfile | None:
        """The profile for ``digest``, or ``None`` if never seen."""
        with self._lock:
            return self._profiles.get(digest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def top(self, limit: int = 20) -> list[dict[str, Any]]:
        """The busiest profiles (by total wall clock), rendered as rows."""
        with self._lock:
            profiles = list(self._profiles.values())
        profiles.sort(key=lambda p: (p.wall_total, p.calls, p.digest), reverse=True)
        return [profile.as_dict() for profile in profiles[:limit]]

    def maybe_persist(self, store: "ResultStore", now: float | None = None) -> int:
        """Flush dirty profiles if the persistence interval elapsed.

        Time-throttled so the serving path never pays a store write per
        request; crash-loss is bounded by ``persist_interval`` seconds of
        profile deltas (the served values themselves are never at risk).
        """
        if now is None:
            now = time.monotonic()
        with self._lock:
            if not self._dirty or now - self._last_persist < self.persist_interval:
                return 0
            self._last_persist = now
        return self.flush(store)

    def flush(self, store: "ResultStore") -> int:
        """Write every dirty profile through to the store; returns the count."""
        with self._lock:
            dirty = list(self._dirty)
            states = [
                self._profiles[digest].to_state()
                for digest in dirty
                if digest in self._profiles
            ]
            self._dirty.clear()
        from repro.store import EntryMeta

        written = 0
        for state in states:
            digest = state["digest"]
            meta = EntryMeta(
                kind=PROFILE_KIND,
                digest=digest,
                relations=(),
                fingerprint="",
            )
            store.put(
                f"{_PROFILE_KEY_PREFIX}{digest}",
                state,
                epsilon=0.0,
                delta=0.0,
                meta=meta,
                replace=True,
            )
            written += 1
        return written

    def load(self, store: "ResultStore") -> int:
        """Restore persisted profiles from the store; returns the count."""
        loaded = 0
        for key, kind, _relations in store.entries():
            if kind != PROFILE_KIND or not key.startswith(_PROFILE_KEY_PREFIX):
                continue
            stored = store.get(key)
            if stored is None or not isinstance(stored.result, Mapping):
                continue
            profile = PlanProfile.from_state(stored.result)
            with self._lock:
                if len(self._profiles) >= self.capacity:
                    self._profiles.popitem(last=False)
                self._profiles[profile.digest] = profile
            loaded += 1
        return loaded

    def prime_planner(self, planner: "Planner") -> int:
        """Seed the planner's per-digest throughput priors from the profiles."""
        with self._lock:
            rates = [
                (digest, route, rate)
                for digest, profile in self._profiles.items()
                for route, rate in profile.route_rates.items()
                if rate > 0.0
            ]
        for digest, route, rate in rates:
            planner.prime_throughput(digest, route, rate)
        return len(rates)


_HISTOGRAM_SPECS: dict[str, dict[str, Any]] = {
    "request_seconds": {"start": 1e-4, "factor": 2.0, "buckets": 22},
    "execute_seconds": {"start": 1e-4, "factor": 2.0, "buckets": 22},
    "queue_wait_seconds": {"start": 1e-5, "factor": 2.0, "buckets": 24},
    "admission_wait_seconds": {"start": 1e-5, "factor": 2.0, "buckets": 24},
    "samples_drawn": {"start": 16.0, "factor": 4.0, "buckets": 12, "unit": "samples"},
}


class Observatory:
    """The per-session registry every serving layer reports observations into.

    Holds named :class:`LogHistogram` series (created on demand, with tuned
    bucket layouts for the well-known names above), monotone counters, the
    :class:`ProfileRegistry` and any registered :class:`SLOMonitor`.  A
    disabled observatory (``enabled=False``) turns every record call into an
    attribute check — that is the PR 6 telemetry-only baseline the <5%
    overhead gate compares against.
    """

    def __init__(
        self,
        enabled: bool = True,
        profile_capacity: int = 512,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self._lock = Lock()
        self._histograms: dict[str, LogHistogram] = {}
        self._counters: dict[str, float] = {}
        self._slos: dict[str, SLOMonitor] = {}
        self.profiles = ProfileRegistry(capacity=profile_capacity)

    def histogram(self, name: str, **spec: Any) -> LogHistogram:
        """Get or create the named histogram (known names get tuned buckets)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                options = dict(_HISTOGRAM_SPECS.get(name, {}))
                options.update(spec)
                histogram = LogHistogram(name, **options)
                self._histograms[name] = histogram
            return histogram

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram (no-op if disabled)."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self.histogram(name)
        histogram.observe(value, self.clock())

    def count(self, name: str, value: float = 1.0) -> None:
        """Bump a monotone counter (no-op if disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        """The current value of a counter (0 when never bumped)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def record_hit(self, digest: str | None, source: str) -> None:
        """Count a cache hit against both the counters and the profile."""
        if not self.enabled:
            return
        self.count(f"hits_{source}")
        self.profiles.record_hit(digest, source)

    def record_execution(
        self,
        digest: str | None,
        route: str,
        wall: float,
        samples: int,
        cpu: float = 0.0,
    ) -> None:
        """Record one executed request: histograms plus the digest's profile."""
        if not self.enabled:
            return
        self.observe("execute_seconds", wall)
        if samples:
            self.observe("samples_drawn", float(samples))
        self.profiles.record_execution(digest, route, wall, samples, cpu=cpu)

    def slo(
        self, histogram_name: str, objective: float = 0.999, threshold: float = 0.5
    ) -> SLOMonitor:
        """Register (or update) an SLO monitor over the named histogram."""
        histogram = self.histogram(histogram_name)
        histogram.slo_threshold = threshold
        monitor = SLOMonitor(histogram, objective=objective)
        with self._lock:
            self._slos[histogram_name] = monitor
        return monitor

    def slo_status(self) -> list[dict[str, Any]]:
        """The status rows of every registered SLO monitor."""
        with self._lock:
            monitors = list(self._slos.values())
        return [monitor.status() for monitor in monitors]

    def snapshot(self) -> dict[str, Any]:
        """A point-in-time JSON-ready view of histograms, counters and SLOs."""
        with self._lock:
            histograms = list(self._histograms.values())
            counters = dict(self._counters)
        return {
            "enabled": self.enabled,
            "histograms": {
                histogram.name: histogram.snapshot() for histogram in histograms
            },
            "counters": counters,
            "slo": self.slo_status(),
            "profiles": len(self.profiles),
        }

    def prometheus_lines(self, prefix: str = "repro") -> list[str]:
        """Proper Prometheus histogram exposition plus counters and SLO gauges."""
        with self._lock:
            histograms = sorted(self._histograms.values(), key=lambda h: h.name)
            counters = dict(self._counters)
        lines: list[str] = []
        for histogram in histograms:
            snap = histogram.snapshot()
            family = f"{prefix}_{histogram.name}"
            lines.append(
                f"# HELP {family} Log-bucketed {histogram.unit} histogram "
                f"({histogram.name})."
            )
            lines.append(f"# TYPE {family} histogram")
            for bound, cumulative in snap["buckets"]:
                lines.append(f'{family}_bucket{{le="{_le(bound)}"}} {cumulative}')
            lines.append(f'{family}_bucket{{le="+Inf"}} {snap["count"]}')
            lines.append(f"{family}_sum {snap['sum']!r}")
            lines.append(f"{family}_count {snap['count']}")
        for name in sorted(counters):
            family = f"{prefix}_observatory_{name}_total"
            lines.append(f"# HELP {family} Observatory counter {name}.")
            lines.append(f"# TYPE {family} counter")
            lines.append(f"{family} {_format_number(counters[name])}")
        for status in self.slo_status():
            family = f"{prefix}_slo_burn_rate"
            if f"# TYPE {family} gauge" not in lines:
                lines.append(
                    f"# HELP {family} Error-budget burn rate per SLO window."
                )
                lines.append(f"# TYPE {family} gauge")
            for window in ("1m", "1h"):
                lines.append(
                    f'{family}{{histogram="{status["histogram"]}",window="{window}"}} '
                    f"{status[f'burn_{window}']!r}"
                )
        return lines


def _le(bound: float) -> str:
    """Render a bucket upper bound the way Prometheus clients expect."""
    text = repr(float(bound))
    return text[:-2] if text.endswith(".0") else text


def _format_number(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else repr(value)


# ----------------------------------------------------------------------
# Calibration audit
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Canary:
    """One analytically-known-volume probe of the calibration auditor."""

    name: str
    relation: Any  # GeneralizedRelation (kept loose to avoid an import cycle)
    variables: tuple[str, ...]
    truth: float


@dataclass
class CoverageCell:
    """Anytime coverage tally for one (route, ε, δ) cell.

    The alarm is the three-sigma lower confidence boundary of a Binomial
    ``(trials, 1 - δ)``: coverage is declared broken when the observed
    success count falls below ``trials (1-δ) - 3 sqrt(trials δ (1-δ))``.
    The boundary holds at every sample size, so the auditor can be read at
    any time without a stopping rule.
    """

    route: str
    epsilon: float
    delta: float
    trials: int = 0
    covered: int = 0
    worst_error: float = 0.0
    alarmed: bool = field(default=False)

    @property
    def coverage(self) -> float:
        """Empirical coverage (1.0 before any trial)."""
        return self.covered / self.trials if self.trials else 1.0

    @property
    def threshold(self) -> float:
        """The three-sigma lower bound on the expected covered count."""
        expected = self.trials * (1.0 - self.delta)
        sigma = math.sqrt(self.trials * self.delta * (1.0 - self.delta))
        return expected - 3.0 * sigma

    @property
    def alarming(self) -> bool:
        """True when the covered count sits below the three-sigma boundary."""
        return self.trials > 0 and self.covered < self.threshold

    def as_dict(self) -> dict[str, Any]:
        return {
            "route": self.route,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "trials": self.trials,
            "covered": self.covered,
            "coverage": round(self.coverage, 4),
            "threshold": self.threshold,
            "worst_error": self.worst_error,
            "alarming": self.alarming,
        }


def _l1_ball_relation(dimension: int, scale: float = 1.0):
    """The cross-polytope ``{sum |x_i| <= scale}`` as a symbolic relation.

    :func:`repro.workloads.shapes.cross_polytope` only carries the numeric
    H-representation; the auditor needs a relation it can install in a live
    database, so the ``2**d`` sign-pattern facets are built directly.
    """
    from repro.constraints.atoms import AtomicConstraint, Relation
    from repro.constraints.relations import GeneralizedRelation
    from repro.constraints.terms import LinearTerm
    from repro.constraints.tuples import GeneralizedTuple
    from repro.workloads.shapes import variable_names

    names = variable_names(dimension)
    constraints = []
    for pattern in range(2**dimension):
        signs = {
            name: (1 if pattern >> index & 1 else -1)
            for index, name in enumerate(names)
        }
        constraints.append(
            AtomicConstraint(LinearTerm(signs, -scale), Relation.LE)
        )
    return GeneralizedRelation.from_tuple(GeneralizedTuple(constraints, names))


def default_canaries() -> list[Canary]:
    """The built-in canary set: box / simplex / L1-ball bodies.

    The 2-d bodies ride the exact route (dimension ≤ 3 with few disjuncts);
    the 4-d cube exercises the sampling routes.  Every volume has a closed
    form, so coverage is checked against ground truth, not a reference run.
    """
    from repro.constraints.relations import GeneralizedRelation
    from repro.workloads.shapes import box, simplex

    box2 = box(2, [2.0, 0.75])
    simplex2 = simplex(2)
    box4 = box(4, [1.0, 1.0, 1.0, 1.0])
    assert box2.tuple_ is not None and simplex2.tuple_ is not None
    assert box4.tuple_ is not None
    return [
        Canary(
            "ObsCanaryBox2",
            GeneralizedRelation.from_tuple(box2.tuple_),
            ("x1", "x2"),
            float(box2.exact_volume or 0.0),
        ),
        Canary(
            "ObsCanarySimplex2",
            GeneralizedRelation.from_tuple(simplex2.tuple_),
            ("x1", "x2"),
            float(simplex2.exact_volume or 0.0),
        ),
        Canary("ObsCanaryBall2", _l1_ball_relation(2), ("x1", "x2"), 2.0),
        Canary(
            "ObsCanaryBox4",
            GeneralizedRelation.from_tuple(box4.tuple_),
            ("x1", "x2", "x3", "x4"),
            float(box4.exact_volume or 0.0),
        ),
    ]


class CalibrationAuditor:
    """Replays known-volume canaries through a live session, auditing coverage.

    Each :meth:`step` serves one (canary, ε) probe through the session's full
    pipeline (cache off, a fresh deterministic stream per probe), checks the
    served value against the closed-form volume at the requested relative
    error, and folds the outcome into the probe's (route, ε, δ)
    :class:`CoverageCell`.  :meth:`run` consumes a wall-clock budget — the
    serving layer calls it only while the admission queue is idle, so audit
    probes never compete with user traffic.  ``distort`` injects a
    miscalibrated estimator for alarm testing (it perturbs the *checked*
    value only; the session itself is untouched).
    """

    def __init__(
        self,
        session: "ServiceSession",
        observatory: Observatory | None = None,
        canaries: Sequence[Canary] | None = None,
        epsilons: Iterable[float] = (0.3,),
        delta: float = 0.1,
        seed: int = 20260808,
        distort: Callable[[float], float] | None = None,
        slack: float = 1e-9,
    ) -> None:
        self.session = session
        self.observatory = observatory
        self.canaries = list(canaries) if canaries is not None else default_canaries()
        if not self.canaries:
            raise ValueError("the auditor needs at least one canary")
        self.epsilons = tuple(epsilons)
        if not self.epsilons:
            raise ValueError("the auditor needs at least one epsilon")
        self.delta = float(delta)
        self.distort = distort
        self.slack = float(slack)
        self.cells: dict[tuple[str, float, float], CoverageCell] = {}
        self._cells_lock = Lock()
        self._seed = int(seed)
        self._cursor = 0
        self._installed = False
        self.probes = 0

    def install(self) -> None:
        """Install canary relations into the session's database (idempotent).

        Uses the reserved ``ObsCanary*`` namespace; invalidation is
        plan-aware, so installing them never drops entries of plans that do
        not scan a canary relation.
        """
        if self._installed:
            return
        for canary in self.canaries:
            if canary.name not in self.session.database.names():
                self.session.update_relation(canary.name, canary.relation)
        self._installed = True

    def _next_probe(self) -> tuple[Canary, float]:
        pairs = len(self.canaries) * len(self.epsilons)
        index = self._cursor % pairs
        self._cursor += 1
        return (
            self.canaries[index // len(self.epsilons)],
            self.epsilons[index % len(self.epsilons)],
        )

    def step(self) -> CoverageCell:
        """Serve one canary probe and return its updated coverage cell."""
        import numpy as np

        from repro.queries.ast import QRelation

        self.install()
        canary, epsilon = self._next_probe()
        query = QRelation(canary.name, canary.variables)
        self._seed += 1
        rng = np.random.default_rng(self._seed)
        result = self.session.volume(
            query, epsilon=epsilon, delta=self.delta, rng=rng, use_cache=False
        )
        plan = self.session.explain(query, epsilon=epsilon, delta=self.delta)
        route = _result_route(plan, result)
        value = float(result.value)
        if self.distort is not None:
            value = self.distort(value)
        error = abs(value - canary.truth)
        covered = error <= epsilon * canary.truth + self.slack
        key = (route, epsilon, self.delta)
        with self._cells_lock:
            cell = self.cells.get(key)
            if cell is None:
                cell = CoverageCell(route=route, epsilon=epsilon, delta=self.delta)
                self.cells[key] = cell
            cell.trials += 1
            if covered:
                cell.covered += 1
            relative = error / canary.truth if canary.truth else error
            cell.worst_error = max(cell.worst_error, relative)
            self.probes += 1
        if self.observatory is not None:
            self.observatory.count("auditor_probes")
            if not covered:
                self.observatory.count("auditor_misses")
            if cell.alarming and not cell.alarmed:
                cell.alarmed = True
                self.observatory.count("auditor_alarms")
        elif cell.alarming:
            cell.alarmed = True
        return cell

    def run(self, budget_seconds: float = 0.25) -> int:
        """Probe until the wall-clock budget is spent (at least one probe)."""
        deadline = time.perf_counter() + max(0.0, float(budget_seconds))
        done = 0
        while True:
            self.step()
            done += 1
            if time.perf_counter() >= deadline:
                return done

    def alarming(self) -> bool:
        """True when any cell currently violates its coverage boundary."""
        with self._cells_lock:
            return any(cell.alarming for cell in self.cells.values())

    def report(self) -> dict[str, Any]:
        """Probes, per-cell coverage rows and the currently alarming cells."""
        with self._cells_lock:
            snapshot = sorted(self.cells.items(), key=lambda item: item[0])
            cells = [cell.as_dict() for _, cell in snapshot]
        return {
            "probes": self.probes,
            "delta": self.delta,
            "cells": cells,
            "alarms": [cell for cell in cells if cell["alarming"]],
        }


def _result_route(plan: Any, result: Any) -> str:
    """The route that actually produced ``result`` (mirrors the session)."""
    from repro.service.session import _executed_route

    return _executed_route(plan, result)
