"""Hierarchical spans and counters: the flight recorder of the request path.

The serving stack has five performance-bearing layers (cache, planner, plan
IR + subplan sharing, execution backends, adaptive estimators); this module
gives every request a *trace*: a tree of :class:`Span` values covering
``submit_batch`` → cache/broker lookup → canonicalize/rewrite/lower →
backend dispatch → per-work-unit execution → estimator phases, each span
carrying wall/CPU time, free-form attributes and accumulated counters
(proposals, hits, chain steps, ...).

Design constraints, in order:

* **Near-zero cost when off.**  The default tracer is :data:`NULL_TRACER`,
  whose ``span``/``count`` calls allocate nothing and record nothing; hot
  kernels additionally guard per-block counter updates with
  ``tracer.enabled`` so an untraced run pays one attribute read per block.
* **Never touch the random stream.**  Tracing only *reads* — timings,
  counts, already-drawn sample arrays — so a traced run is bit-identical
  to an untraced one (enforced by benchmark E21 and the telemetry tests).
* **Bounded memory.**  :class:`RecordingTracer` keeps its finished spans in
  a ring buffer (``capacity`` spans, oldest dropped first), the classic
  flight-recorder shape: always on, never unbounded.
* **Complete across processes.**  Workers of the process backend record
  spans into a local tracer and ship them back inside their results; the
  parent re-parents them under the batch's compute span with
  :meth:`RecordingTracer.adopt`, so one trace tree covers the whole batch
  regardless of where its units ran.

Propagation uses :mod:`contextvars`: :func:`activate` installs a tracer for
the current context, :func:`current_tracer` reads it anywhere below, and the
current *span* rides a second context variable so nested ``span()`` calls
parent correctly.  Worker threads do not inherit the submitting context —
the thread backend runs each unit inside a ``copy_context()`` snapshot taken
on the submitting thread.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from collections.abc import Iterable, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "RecordingTracer",
    "Span",
    "Tracer",
    "activate",
    "current_span",
    "current_tracer",
    "validate_span_tree",
]


@dataclass
class Span:
    """One finished (or in-flight) operation of a trace tree.

    Attributes
    ----------
    span_id / parent_id:
        Tracer-local identifiers; ``parent_id`` is ``None`` for roots.
    name:
        Operation name (``"volume"``, ``"work-unit"``, ``"union-member"``...).
    start:
        ``time.perf_counter()`` at entry (tracer-local clock; adopted spans
        are rebased onto the adopting tracer's clock).
    wall / cpu:
        Elapsed wall seconds and thread-CPU seconds, filled at exit.
    thread_id:
        ``threading.get_ident()`` of the recording thread.
    attrs:
        Free-form annotations (route, digest, epsilon, ...).
    counters:
        Accumulated numeric counters (proposals, hits, chain steps, ...).
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    wall: float = 0.0
    cpu: float = 0.0
    thread_id: int = 0
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    cpu_start: float = field(default=0.0, repr=False, compare=False)

    def annotate(self, **attrs: object) -> None:
        """Attach (or overwrite) attributes on this span."""
        self.attrs.update(attrs)

    def count(self, name: str, value: float = 1) -> None:
        """Increment one of this span's counters."""
        self.counters[name] = self.counters.get(name, 0) + value


class _NullSpan:
    """The span handed out by the null tracer: accepts everything, keeps nothing."""

    __slots__ = ()
    attrs: dict = {}
    counters: dict = {}

    def annotate(self, **attrs: object) -> None:
        pass

    def count(self, name: str, value: float = 1) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullContext:
    """A reusable no-op context manager (one shared instance, no allocation)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class Tracer:
    """The tracing interface; the base class is the disabled implementation.

    ``enabled`` gates every hot-path recording decision: kernels read it once
    per block and skip the counter arithmetic entirely when tracing is off.
    ``diagnostics`` additionally opts sampler spans into the uniformity
    summaries of :mod:`repro.sampling.diagnostics` (TV distance, chi-square,
    KS) — strictly more expensive, so it is a separate switch.
    """

    enabled: bool = False
    diagnostics: bool = False

    def span(self, name: str, **attrs: object):
        """Context manager opening a child span of the current span."""
        return _NULL_CONTEXT

    def count(self, name: str, value: float = 1) -> None:
        """Increment a counter on the current span (or the tracer itself)."""

    def merge_counters(self, counters: Mapping[str, float] | None) -> None:
        """Fold externally accumulated counters (e.g. a worker's) into this tracer."""

    def finished(self) -> list[Span]:
        """The recorded spans, oldest first (empty for the null tracer)."""
        return []

    def global_counters(self) -> dict[str, float]:
        """The span-less counts (empty for the null tracer)."""
        return {}

    def adopt(
        self, spans: Iterable[Span], parent: Span | None = None
    ) -> list[Span]:
        """Import spans recorded elsewhere (no-op for the null tracer)."""
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NullTracer(Tracer):
    """The default tracer: everything is a no-op, ``enabled`` is ``False``."""


#: Shared no-op tracer; the default of :func:`current_tracer` and of every
#: session that was not given a tracer.
NULL_TRACER = NullTracer()

_ACTIVE_TRACER: ContextVar[Tracer] = ContextVar("repro_tracer", default=NULL_TRACER)
_CURRENT_SPAN: ContextVar[Span | None] = ContextVar("repro_span", default=None)


def current_tracer() -> Tracer:
    """The tracer active in this context (:data:`NULL_TRACER` by default)."""
    return _ACTIVE_TRACER.get()


def current_span() -> Span | None:
    """The innermost open span of this context, if any."""
    return _CURRENT_SPAN.get()


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the context's tracer for the duration of the block.

    Re-activating the tracer that is already active keeps the current span
    (so nested serving entry points stay inside the enclosing trace);
    switching to a *different* tracer resets it, so spans never parent onto
    a span of a foreign tracer.
    """
    previous = _ACTIVE_TRACER.get()
    token = _ACTIVE_TRACER.set(tracer)
    span_token = None if tracer is previous else _CURRENT_SPAN.set(None)
    try:
        yield tracer
    finally:
        if span_token is not None:
            _CURRENT_SPAN.reset(span_token)
        _ACTIVE_TRACER.reset(token)


class _SpanContext:
    """Context manager that opens, times and records one span."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_token")

    def __init__(self, tracer: "RecordingTracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        parent = _CURRENT_SPAN.get()
        span = Span(
            span_id=self._tracer._allocate_id(),
            parent_id=None if parent is None else parent.span_id,
            name=self._name,
            start=time.perf_counter(),
            thread_id=threading.get_ident(),
            attrs=self._attrs,
        )
        span.cpu_start = time.thread_time()
        self._span = span
        self._token = _CURRENT_SPAN.set(span)
        return span

    def __exit__(self, *exc: object) -> bool:
        span = self._span
        _CURRENT_SPAN.reset(self._token)
        span.wall = time.perf_counter() - span.start
        span.cpu = time.thread_time() - span.cpu_start
        self._tracer._record(span)
        return False


class RecordingTracer(Tracer):
    """A bounded flight recorder for spans and counters.

    Example::

        tracer = RecordingTracer()
        session = ServiceSession(database, tracer=tracer)
        session.volume(query)
        chrome_trace(tracer)  # Perfetto-loadable span tree

    Parameters
    ----------
    capacity:
        Ring-buffer size in spans; when full, the oldest finished span is
        dropped first (children finish before parents, so overflow trims
        leaves of old subtrees before their roots).
    diagnostics:
        Opt sampler spans into the uniformity summaries (TV distance,
        chi-square, KS) of :mod:`repro.sampling.diagnostics`.
    """

    enabled = True

    def __init__(self, capacity: int = 4096, diagnostics: bool = False) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.diagnostics = diagnostics
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._counters: Counter[str] = Counter()
        self._lock = threading.Lock()
        self._last_id = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: object) -> _SpanContext:
        return _SpanContext(self, name, attrs)

    def count(self, name: str, value: float = 1) -> None:
        span = _CURRENT_SPAN.get()
        if span is not None:
            span.count(name, value)
        else:
            with self._lock:
                self._counters[name] += value

    def merge_counters(self, counters: Mapping[str, float] | None) -> None:
        if not counters:
            return
        with self._lock:
            for name, value in counters.items():
                self._counters[name] += value

    def _allocate_id(self) -> int:
        with self._lock:
            self._last_id += 1
            return self._last_id

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) == self.capacity:
                # The ring is about to overwrite its oldest span: surface the
                # loss instead of trimming silently.  The counter is span-less
                # so it ships with global_counters() from worker processes and
                # lands in /metrics as repro_trace_spans_dropped_total.
                self._counters["spans_dropped"] += 1
            self._spans.append(span)

    @property
    def spans_dropped(self) -> int:
        """Finished spans evicted by ring-buffer overflow since creation."""
        with self._lock:
            return int(self._counters.get("spans_dropped", 0))

    # ------------------------------------------------------------------
    # Cross-process adoption
    # ------------------------------------------------------------------
    def adopt(
        self, spans: Iterable[Span], parent: Span | None = None
    ) -> list[Span]:
        """Import spans recorded by another tracer (typically a worker process).

        Every span receives a fresh local id; roots — and spans whose parent
        fell out of the worker's ring buffer — are re-parented under
        ``parent``.  Start times are rebased so the imported subtree begins
        at the parent span's start (worker clocks share no epoch with the
        parent's ``perf_counter``); durations are preserved as measured.
        """
        spans = list(spans)
        if not spans:
            return []
        mapping = {span.span_id: self._allocate_id() for span in spans}
        base = min(span.start for span in spans)
        shift = (parent.start if parent is not None else 0.0) - base
        fallback = None if parent is None else parent.span_id
        adopted = []
        for span in spans:
            copy = Span(
                span_id=mapping[span.span_id],
                parent_id=mapping.get(span.parent_id, fallback),
                name=span.name,
                start=span.start + shift,
                wall=span.wall,
                cpu=span.cpu,
                thread_id=span.thread_id,
                attrs=dict(span.attrs),
                counters=dict(span.counters),
            )
            copy.attrs.setdefault("adopted", True)
            self._record(copy)
            adopted.append(copy)
        return adopted

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def finished(self) -> list[Span]:
        with self._lock:
            return list(self._spans)

    def aggregate_counters(self) -> dict[str, float]:
        """Every counter summed over all recorded spans plus span-less counts."""
        with self._lock:
            totals: Counter[str] = Counter(self._counters)
            for span in self._spans:
                for name, value in span.counters.items():
                    totals[name] += value
        return dict(totals)

    def global_counters(self) -> dict[str, float]:
        """Only the span-less counts (`count` calls outside any span).

        This is what a worker ships alongside its spans: the spans carry
        their own counters through :meth:`adopt`, so shipping
        :meth:`aggregate_counters` too would count them twice.
        """
        with self._lock:
            return dict(self._counters)

    def clear(self) -> None:
        """Drop every recorded span and counter (ids keep increasing)."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"RecordingTracer(spans={len(self._spans)}, "
                f"capacity={self.capacity}, diagnostics={self.diagnostics})"
            )


def validate_span_tree(spans: Iterable[Span]) -> bool:
    """Is every span's parent either ``None`` or among the given spans?

    The well-formedness check the concurrency tests assert: with a
    sufficiently large ring buffer, a trace must form a forest — no span may
    reference a parent that was never recorded (dangling ids would mean a
    race in id allocation or a broken adoption).
    """
    spans = list(spans)
    ids = {span.span_id for span in spans}
    if len(ids) != len(spans):
        return False
    return all(span.parent_id is None or span.parent_id in ids for span in spans)
