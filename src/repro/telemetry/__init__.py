"""Telemetry layer: tracing, EXPLAIN ANALYZE and exporters.

Dependency-free observability for the serving stack.  A
:class:`RecordingTracer` handed to a :class:`~repro.service.session.ServiceSession`
(or activated around any estimator call with :func:`activate`) records a
hierarchical span tree covering ``submit_batch`` → cache/broker lookup →
compilation → backend dispatch → per-work-unit execution → estimator phases,
with kernel counters (proposals, hits, chain steps) and per-checkpoint
confidence-sequence trajectories attached to the enclosing spans.  Tracing
never touches the random stream, so traced runs are bit-identical to
untraced ones (benchmark E21 enforces this together with a <5% overhead
budget).

:func:`analyze_trace` distils a trace into the observed statistics
``QueryEngine.explain(analyze=True)`` folds back into plan output;
:func:`chrome_trace` and :func:`prometheus_text` export traces and counters
to standard tooling.

:mod:`repro.telemetry.observatory` adds the continuous layer on top of the
flight recorder: an :class:`Observatory` of log-bucketed histograms with
1s/1m rollups, per-plan-digest :class:`PlanProfile` records persisted through
the result store, a :class:`CalibrationAuditor` replaying known-volume
canaries against the live session, and :class:`SLOMonitor` burn-rate windows.
"""

from repro.telemetry.analyze import SubplanStats, TraceAnalysis, analyze_trace
from repro.telemetry.export import (
    chrome_trace,
    dump_chrome_trace,
    escape_label_value,
    prometheus_text,
)
from repro.telemetry.observatory import (
    CalibrationAuditor,
    Canary,
    CoverageCell,
    LogHistogram,
    Observatory,
    PlanProfile,
    ProfileRegistry,
    RollupRing,
    SLOMonitor,
    default_canaries,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    RecordingTracer,
    Span,
    Tracer,
    activate,
    current_span,
    current_tracer,
    validate_span_tree,
)

__all__ = [
    "NULL_TRACER",
    "CalibrationAuditor",
    "Canary",
    "CoverageCell",
    "LogHistogram",
    "NullTracer",
    "Observatory",
    "PlanProfile",
    "ProfileRegistry",
    "RecordingTracer",
    "RollupRing",
    "SLOMonitor",
    "Span",
    "SubplanStats",
    "TraceAnalysis",
    "Tracer",
    "activate",
    "analyze_trace",
    "chrome_trace",
    "current_span",
    "current_tracer",
    "default_canaries",
    "dump_chrome_trace",
    "escape_label_value",
    "prometheus_text",
    "validate_span_tree",
]
