"""The Dyer--Frieze--Kannan lattice random walk.

The paper's basic generator for a well-bounded convex body ``K`` works on the
graph induced by a γ-grid on the well-rounded image ``Q(K)``: starting at the
origin vertex, repeatedly pick one of the ``2 d`` axis neighbours at distance
``p`` and move there when the neighbour is still inside the body.  The walk is
*lazy* (it stays put with probability 1/2), which makes the chain aperiodic,
and its stationary distribution is uniform on the grid vertices because the
proposal is symmetric.  After a polynomial number of steps the distribution is
close to uniform (rapid mixing) — the paper quotes ``O((d^19 / εγ) ln(1/δ))``
for the original analysis.

The implementation is faithful to this scheme but exposes the number of steps
as a parameter: the theoretical mixing bound is astronomically conservative,
and the benchmarks calibrate practical step counts against the exact uniform
distribution in low dimension (experiment E2's ablation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import Grid, choose_gamma_grid_step
from repro.sampling.oracles import MembershipOracle
from repro.sampling.rng import ensure_rng


@dataclass
class GridWalkConfig:
    """Tuning parameters of the lattice walk.

    Attributes
    ----------
    gamma:
        Grid coarseness parameter of the γ-grid (controls the step ``p``).
    steps:
        Number of walk steps performed before a point is emitted.  ``None``
        selects a heuristic schedule quadratic in the dimension and in
        ``1 / gamma`` — far below the theoretical ``d^19`` bound but
        sufficient for the bodies used in the experiments (validated in E2).
    laziness:
        Probability of staying put at each step (1/2 in the classical lazy walk).
    """

    gamma: float = 0.2
    steps: int | None = None
    laziness: float = 0.5

    def resolved_steps(self, dimension: int) -> int:
        """The actual number of steps used for a body of the given dimension."""
        if self.steps is not None:
            return self.steps
        return max(200, 40 * dimension * dimension + int(20 / self.gamma))


class GridWalkSampler:
    """Almost uniform sampler on the grid points of a convex body.

    Parameters
    ----------
    oracle:
        Membership oracle of the (well-rounded) body.
    dimension:
        Ambient dimension.
    start:
        A grid point inside the body (the origin for a well-rounded body).
    config:
        Walk parameters; see :class:`GridWalkConfig`.
    scale:
        Radius scale of the body, used to pick the grid step
        ``p = O(gamma * scale / d^{3/2})``.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        dimension: int,
        start: np.ndarray | None = None,
        config: GridWalkConfig | None = None,
        scale: float = 1.0,
    ) -> None:
        self.oracle = oracle
        self.dimension = int(dimension)
        self.config = config if config is not None else GridWalkConfig()
        step = choose_gamma_grid_step(self.config.gamma, self.dimension, scale=scale)
        self.grid = Grid(step, self.dimension)
        if start is None:
            start = np.zeros(self.dimension)
        start = self.grid.snap(np.asarray(start, dtype=float))
        if not self.oracle(start):
            raise ValueError("the starting grid point is not inside the body")
        self._start = start

    @property
    def grid_step(self) -> float:
        """The grid step ``p`` of the underlying γ-grid."""
        return self.grid.step

    # ------------------------------------------------------------------
    def walk(self, rng: np.random.Generator, steps: int | None = None) -> np.ndarray:
        """Run one random walk of ``steps`` steps and return the final grid point."""
        rng = ensure_rng(rng)
        if steps is None:
            steps = self.config.resolved_steps(self.dimension)
        current = self._start.copy()
        lazy = self.config.laziness
        axes = rng.integers(0, self.dimension, size=steps)
        signs = rng.integers(0, 2, size=steps) * 2 - 1
        lazy_draws = rng.random(steps)
        step = self.grid.step
        for index in range(steps):
            if lazy_draws[index] < lazy:
                continue
            proposal = current.copy()
            proposal[axes[index]] += signs[index] * step
            if self.oracle(proposal):
                current = proposal
        return current

    def sample(self, rng: np.random.Generator, count: int = 1, steps: int | None = None) -> np.ndarray:
        """Draw ``count`` (approximately independent) grid points.

        Each sample is produced by a fresh walk from the start vertex, which
        matches the paper's usage (the generator is re-run for every point).
        """
        rng = ensure_rng(rng)
        return np.array([self.walk(rng, steps=steps) for _ in range(count)])

    def sample_continuous(
        self, rng: np.random.Generator, count: int = 1, steps: int | None = None
    ) -> np.ndarray:
        """Grid samples smoothed uniformly inside their grid cell.

        The paper's generator outputs grid vertices; adding a uniform offset
        inside the cell yields points whose distribution approximates the
        uniform distribution on the body itself (up to the γ discretisation),
        which is convenient for volume estimation and reconstruction.
        """
        rng = ensure_rng(rng)
        points = self.sample(rng, count=count, steps=steps)
        jitter = (rng.random(points.shape) - 0.5) * self.grid.step
        return points + jitter
