"""Random number generator plumbing.

Every randomized component in the library takes an explicit
:class:`numpy.random.Generator` so that experiments are reproducible and the
tests can use fixed seeds.  :func:`ensure_rng` is the single place where
"seed or generator or nothing" inputs are normalised.
"""

from __future__ import annotations

from typing import TypeAlias, Union

import numpy as np

#: Anything the library accepts where randomness is needed: an existing
#: generator, an integer seed, or ``None`` for a fresh non-deterministic one.
RandomState: TypeAlias = Union[np.random.Generator, int, None]


def ensure_rng(rng: RandomState = None) -> np.random.Generator:
    """Normalise a seed / generator / ``None`` into a NumPy ``Generator``.

    ``None`` creates a fresh non-deterministic generator; an integer seeds a
    new PCG64 generator; an existing generator is passed through unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot build a random generator from {type(rng).__name__}")


def spawn_seeds(rng: np.random.Generator, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from a parent generator.

    The integer form is the process-boundary representation of a child
    stream: a seed costs a few bytes to pickle (a full ``Generator`` costs
    hundreds) and ``np.random.default_rng(seed)`` reconstructs the exact
    stream on the other side.  :func:`spawn_rngs` builds its generators from
    these same seeds, so shipping a seed to a worker process and spawning a
    generator locally produce bit-identical draws.
    """
    return [int(seed) for seed in rng.integers(0, 2**63 - 1, size=count)]


def spawn_rngs(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators (for parallel experiments)."""
    return [np.random.default_rng(seed) for seed in spawn_seeds(rng, count)]
