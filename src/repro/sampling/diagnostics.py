"""Uniformity diagnostics for samplers.

The definition of a (γ, ε, δ)-generator bounds the ratio between the output
distribution and the uniform distribution on the grid vertices.  The tests and
benchmarks check this empirically with three complementary statistics:

* the total variation distance between the empirical cell histogram and the
  uniform histogram (:func:`total_variation_to_uniform`),
* Pearson's chi-square statistic against the uniform cell distribution
  (:func:`chi_square_uniform`),
* Kolmogorov--Smirnov distances of one-dimensional marginals against their
  exact distribution (:func:`ks_statistic_uniform` for uniform marginals).

They all work on arbitrary sample arrays so the same checks apply to the DFK
grid walk, hit-and-run, the composed generators of :mod:`repro.core` and the
fixed-dimension sampler.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def cell_histogram(
    samples: np.ndarray,
    bounds: list[tuple[float, float]],
    bins_per_axis: int,
) -> np.ndarray:
    """Histogram of samples over a regular grid of cells in the bounding box.

    Returns a flattened array of cell counts of length ``bins_per_axis ** d``.
    Samples outside the box are clipped into the boundary cells.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2:
        raise ValueError("samples must be a 2-D array")
    dimension = samples.shape[1]
    if len(bounds) != dimension:
        raise ValueError("one (lower, upper) pair per dimension is required")
    edges = [np.linspace(lower, upper, bins_per_axis + 1) for lower, upper in bounds]
    histogram, _ = np.histogramdd(samples, bins=edges)
    return histogram.ravel()


def total_variation_to_uniform(counts: np.ndarray, support: np.ndarray | None = None) -> float:
    """Total variation distance between an empirical histogram and the uniform law.

    ``support`` optionally marks which cells belong to the target set (boolean
    array of the same length); cells outside the support are expected to hold
    probability zero.  Without it every cell is part of the support.
    """
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total == 0:
        raise ValueError("histogram is empty")
    empirical = counts / total
    if support is None:
        support = np.ones_like(counts, dtype=bool)
    support = np.asarray(support, dtype=bool)
    support_size = int(support.sum())
    if support_size == 0:
        raise ValueError("support is empty")
    target = np.where(support, 1.0 / support_size, 0.0)
    return 0.5 * float(np.abs(empirical - target).sum())


def chi_square_uniform(counts: np.ndarray, support: np.ndarray | None = None) -> tuple[float, float]:
    """Chi-square statistic and p-value of the histogram against the uniform law."""
    counts = np.asarray(counts, dtype=float)
    if support is not None:
        counts = counts[np.asarray(support, dtype=bool)]
    if counts.size < 2:
        raise ValueError("need at least two support cells for a chi-square test")
    expected = np.full(counts.size, counts.sum() / counts.size)
    statistic, p_value = stats.chisquare(counts, expected)
    return float(statistic), float(p_value)


def ks_statistic_uniform(samples: np.ndarray, lower: float, upper: float) -> float:
    """Kolmogorov--Smirnov distance of a 1-D sample against Uniform[lower, upper]."""
    samples = np.asarray(samples, dtype=float).ravel()
    if upper <= lower:
        raise ValueError("upper must exceed lower")
    statistic, _ = stats.kstest(samples, "uniform", args=(lower, upper - lower))
    return float(statistic)


def max_ratio_to_uniform(counts: np.ndarray, support: np.ndarray | None = None) -> float:
    """The empirical analogue of the (1 + ε) ratio bound of Definition 2.2.

    Returns ``max(p_i / u, u / p_i)`` over support cells with at least one
    observation, where ``p_i`` is the empirical cell probability and ``u`` the
    uniform cell probability.  Cells with zero observations are excluded
    because the ratio is undefined for finite samples; the TV distance covers
    mass that is missing entirely.
    """
    counts = np.asarray(counts, dtype=float)
    if support is not None:
        counts = counts[np.asarray(support, dtype=bool)]
    total = counts.sum()
    if total == 0:
        raise ValueError("histogram is empty")
    uniform = 1.0 / counts.size
    observed = counts[counts > 0] / total
    ratios = np.maximum(observed / uniform, uniform / observed)
    return float(ratios.max())


def uniformity_summary(
    samples: np.ndarray,
    bounds: list[tuple[float, float]],
    support_oracle=None,
    bins_per_axis: int = 5,
    max_cells: int = 4096,
    min_samples: int = 16,
) -> dict[str, float]:
    """A compact uniformity health summary for attaching to a sampler span.

    Bundles the three diagnostics — TV distance to the uniform cell law,
    Pearson chi-square (statistic and p-value) and the KS distance of the
    first marginal — into a flat dict of floats.  ``support_oracle`` (a batch
    membership oracle) optionally restricts the uniform target to the cells
    whose centres lie in the body, which is the right comparison when the
    body only fills part of the box.

    Purely observational: works on already-drawn samples and never touches a
    random generator, so attaching it to a traced run cannot perturb the
    sample stream.  Returns ``{}`` when the sample is too small or the cell
    grid would exceed ``max_cells`` (high dimension), so callers can attach
    the result unconditionally.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[0] < min_samples:
        return {}
    dimension = samples.shape[1]
    if bins_per_axis < 2 or bins_per_axis**dimension > max_cells:
        return {}
    counts = cell_histogram(samples, bounds, bins_per_axis)
    support = None
    if support_oracle is not None:
        axes = [
            np.linspace(lower, upper, bins_per_axis, endpoint=False)
            + (upper - lower) / (2 * bins_per_axis)
            for lower, upper in bounds
        ]
        grids = np.meshgrid(*axes, indexing="ij")
        centers = np.stack([grid.ravel() for grid in grids], axis=1)
        mask = np.asarray(support_oracle(centers), dtype=bool).ravel()
        if mask.any():
            support = mask
    summary = {"tv_to_uniform": total_variation_to_uniform(counts, support)}
    support_cells = int(support.sum()) if support is not None else counts.size
    if support_cells >= 2:
        statistic, p_value = chi_square_uniform(counts, support)
        summary["chi_square"] = statistic
        summary["chi_square_p"] = p_value
    lower, upper = bounds[0]
    summary["ks_marginal"] = ks_statistic_uniform(samples[:, 0], lower, upper)
    return summary


def empirical_moments(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mean vector and covariance matrix of a sample array (rows are points)."""
    samples = np.asarray(samples, dtype=float)
    mean = samples.mean(axis=0)
    centered = samples - mean
    covariance = centered.T @ centered / max(samples.shape[0] - 1, 1)
    return mean, covariance
