"""Exact sampling in fixed dimension (Lemma 3.2).

When the dimension is considered fixed, uniform sampling from *any*
generalized relation is easy: cut the bounding box into cubes of side
``gamma``, enumerate the cubes whose representative point lies in the
relation (``(R / gamma)^d`` membership tests, polynomial for fixed ``d``),
and pick one of those cubes uniformly — optionally jittering inside the cube
to produce a continuous sample.  This is the algorithm of Lemma 3.2 and the
sampling half of Theorem 3.1; experiment E9 demonstrates its exponential
behaviour once the dimension grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constraints.relations import GeneralizedRelation
from repro.geometry.volume import relation_bounding_box
from repro.sampling.rng import ensure_rng


@dataclass
class CellDecomposition:
    """The enumerated cell decomposition of a relation.

    Attributes
    ----------
    cells:
        Centres of the cubes whose centre lies in the relation,
        shape ``(num_cells, d)``.
    cell_size:
        Side length ``gamma`` of the cubes.
    cells_examined:
        Total number of cubes tested (the ``(R / gamma)^d`` cost term).
    """

    cells: np.ndarray
    cell_size: float
    cells_examined: int

    @property
    def num_cells(self) -> int:
        """Number of cubes inside the relation."""
        return int(self.cells.shape[0])

    @property
    def volume_estimate(self) -> float:
        """The cell-counting volume ``num_cells * gamma^d``."""
        if self.cells.size == 0:
            return 0.0
        return self.num_cells * self.cell_size ** self.cells.shape[1]


class FixedDimensionSampler:
    """Uniform sampler for arbitrary generalized relations in fixed dimension.

    Parameters
    ----------
    relation:
        The generalized relation to sample from (must have a finite bounding box).
    cell_size:
        The decomposition granularity ``gamma`` of Lemma 3.2.
    max_cells:
        Guard on the total number of cubes enumerated.
    """

    def __init__(
        self,
        relation: GeneralizedRelation,
        cell_size: float = 0.1,
        max_cells: int = 2_000_000,
    ) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self.relation = relation
        self.cell_size = float(cell_size)
        self.max_cells = int(max_cells)
        self._decomposition: CellDecomposition | None = None

    # ------------------------------------------------------------------
    def decomposition(self) -> CellDecomposition:
        """Enumerate (and cache) the cubes of the decomposition inside the relation."""
        if self._decomposition is not None:
            return self._decomposition
        box = relation_bounding_box(self.relation)
        if box is None:
            raise ValueError("relation has no finite bounding box; cannot decompose")
        dimension = self.relation.dimension
        axes = []
        total = 1
        for lower, upper in box:
            if upper <= lower:
                axes.append(np.array([(lower + upper) / 2.0]))
                continue
            centers = np.arange(lower + self.cell_size / 2.0, upper, self.cell_size)
            if centers.size == 0:
                centers = np.array([(lower + upper) / 2.0])
            axes.append(centers)
            total *= len(centers)
            if total > self.max_cells:
                raise ValueError(
                    f"cell decomposition would examine more than {self.max_cells} cubes; "
                    "this is the exponential cost the fixed-dimension hypothesis hides"
                )
        mesh = np.meshgrid(*axes, indexing="ij")
        points = np.stack([m.ravel() for m in mesh], axis=1)
        inside = np.array(
            [self.relation.contains_point([float(v) for v in point]) for point in points]
        )
        cells = points[inside] if points.size else np.zeros((0, dimension))
        self._decomposition = CellDecomposition(cells, self.cell_size, points.shape[0])
        return self._decomposition

    def sample(self, rng: np.random.Generator, count: int = 1, jitter: bool = True) -> np.ndarray:
        """Draw ``count`` points uniformly from the enumerated cells.

        With ``jitter`` the point is drawn uniformly inside the chosen cube,
        giving a continuous distribution whose total variation distance to the
        uniform distribution on the relation is O(gamma) times the boundary
        measure; without it the cube centre is returned (the discrete
        distribution of Lemma 3.2).
        """
        rng = ensure_rng(rng)
        decomposition = self.decomposition()
        if decomposition.num_cells == 0:
            raise ValueError("relation contains no decomposition cell; it may be empty")
        indices = rng.integers(0, decomposition.num_cells, size=count)
        points = decomposition.cells[indices].astype(float)
        if jitter:
            offsets = (rng.random(points.shape) - 0.5) * self.cell_size
            points = points + offsets
        return points

    def volume(self) -> float:
        """The exact-in-the-limit cell-counting volume of Lemma 3.1."""
        return self.decomposition().volume_estimate
