"""Ball-walk sampling through a membership oracle — single and multi-chain.

The ball walk only needs a membership oracle: from the current point, propose
a uniform point in the ball of radius ``delta`` around it and move there when
the proposal is inside the body (a Metropolis step with the uniform target).
It is the sampler of choice for convex bodies given by *polynomial*
constraints (Section 5 of the paper): the membership oracle is still trivial
to evaluate, but there is no H-representation for the chord computation that
hit-and-run needs.

:meth:`BallWalkSampler.sample_chains` advances ``k`` independent chains in
lockstep and judges all ``k`` proposals of a step with **one** batch oracle
call (:mod:`repro.sampling.oracles`), which is where the vectorization pays:
for linear bodies a step costs one matrix product instead of ``k`` Python
oracle calls.  Each chain draws from its own child generator, so chains are
independent and the run is reproducible; ``chains=1`` delegates to the
scalar :meth:`~BallWalkSampler.sample` path, reproducing the classic stream
bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.ball import Ball
from repro.sampling.chains import run_lockstep_chains
from repro.sampling.oracles import (
    BatchOracle,
    MembershipOracle,
    as_batch_oracle,
)
from repro.sampling.rng import ensure_rng, spawn_rngs
from repro.telemetry.tracer import current_tracer


class BallWalkSampler:
    """Uniform sampler on a convex body given by a membership oracle.

    Parameters
    ----------
    oracle:
        Membership oracle of the body (scalar signature; a
        :class:`~repro.sampling.oracles.BatchOracle` also works since batch
        oracles accept single points).
    dimension:
        Ambient dimension.
    start:
        A point inside the body (e.g. the Chebyshev centre or the origin for a
        well-rounded body).
    delta:
        Radius of the proposal ball.  The classical analysis uses
        ``delta = Θ(1 / sqrt(d))`` for a well-rounded body; that is the default.
    burn_in / thinning:
        Number of discarded initial steps and of steps between samples.
    batch_oracle:
        Optional batch oracle used by :meth:`sample_chains`.  When omitted,
        the scalar ``oracle`` is lifted — correct, but each multi-chain step
        then still pays one Python call per chain, forfeiting the batch
        speedup (see :func:`repro.sampling.oracles.lift_scalar`).
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        dimension: int,
        start: np.ndarray,
        delta: float | None = None,
        burn_in: int | None = None,
        thinning: int | None = None,
        batch_oracle: BatchOracle | None = None,
    ) -> None:
        self.oracle = oracle
        self.dimension = int(dimension)
        start = np.asarray(start, dtype=float)
        if not oracle(start):
            raise ValueError("starting point is not inside the body")
        self._start = start
        self.delta = delta if delta is not None else 1.0 / np.sqrt(dimension)
        self.burn_in = burn_in if burn_in is not None else max(200, 30 * dimension)
        self.thinning = thinning if thinning is not None else max(10, 3 * dimension)
        self._batch_oracle = (
            batch_oracle if batch_oracle is not None else as_batch_oracle(oracle)
        )

    def _step(self, rng: np.random.Generator, current: np.ndarray) -> np.ndarray:
        proposal = Ball(current, self.delta).sample(rng, 1)[0]
        if self.oracle(proposal):
            return proposal
        return current

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` approximately uniform samples (shape ``(count, d)``)."""
        rng = ensure_rng(rng)
        tracer = current_tracer()
        if tracer.enabled:
            # Step count is a pure function of the request (every burn-in and
            # thinning step proposes exactly once), so no loop instrumentation.
            tracer.count("chain_steps", self.burn_in + count * self.thinning)
        current = self._start.copy()
        for _ in range(self.burn_in):
            current = self._step(rng, current)
        samples = np.empty((count, self.dimension))
        for index in range(count):
            for _ in range(self.thinning):
                current = self._step(rng, current)
            samples[index] = current
        return samples

    def sample_chains(
        self, rng: np.random.Generator | int | None, count: int, chains: int
    ) -> np.ndarray:
        """Draw ``count`` samples from each of ``chains`` independent chains.

        Returns ``(chains, count, d)``.  Per step, all chain proposals are
        judged with a single batch oracle call; each chain's randomness comes
        from its own child generator, so the result is deterministic for a
        fixed seed.  ``chains=1`` delegates to the scalar :meth:`sample` path
        with ``rng`` itself, reproducing the single-chain stream exactly.
        """
        if chains < 1:
            raise ValueError("chains must be at least 1")
        if chains == 1:
            return self.sample(ensure_rng(rng), count)[None, ...]
        proposal_ball = Ball(np.zeros(self.dimension), self.delta)

        def draw_chunk(streams, chunk):
            # Proposal offsets are independent of the chain state, so the
            # whole chunk reuses Ball.sample per chain — one construction of
            # uniform-in-ball points for the scalar and multi-chain paths.
            return np.stack(
                [proposal_ball.sample(stream, chunk) for stream in streams]
            )

        def step(current, offsets, offset):
            proposals = current + offsets[:, offset, :]
            inside = np.asarray(self._batch_oracle(proposals), dtype=bool)
            return np.where(inside[:, None], proposals, current)

        return run_lockstep_chains(
            spawn_rngs(ensure_rng(rng), chains),
            self._start,
            count,
            self.burn_in,
            self.thinning,
            draw_chunk,
            step,
        )

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a single approximately uniform sample."""
        return self.sample(rng, count=1)[0]
