"""Ball-walk sampling through a membership oracle.

The ball walk only needs a membership oracle: from the current point, propose
a uniform point in the ball of radius ``delta`` around it and move there when
the proposal is inside the body (a Metropolis step with the uniform target).
It is the sampler of choice for convex bodies given by *polynomial*
constraints (Section 5 of the paper): the membership oracle is still trivial
to evaluate, but there is no H-representation for the chord computation that
hit-and-run needs.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.ball import Ball
from repro.sampling.oracles import MembershipOracle
from repro.sampling.rng import ensure_rng


class BallWalkSampler:
    """Uniform sampler on a convex body given by a membership oracle.

    Parameters
    ----------
    oracle:
        Membership oracle of the body.
    dimension:
        Ambient dimension.
    start:
        A point inside the body (e.g. the Chebyshev centre or the origin for a
        well-rounded body).
    delta:
        Radius of the proposal ball.  The classical analysis uses
        ``delta = Θ(1 / sqrt(d))`` for a well-rounded body; that is the default.
    burn_in / thinning:
        Number of discarded initial steps and of steps between samples.
    """

    def __init__(
        self,
        oracle: MembershipOracle,
        dimension: int,
        start: np.ndarray,
        delta: float | None = None,
        burn_in: int | None = None,
        thinning: int | None = None,
    ) -> None:
        self.oracle = oracle
        self.dimension = int(dimension)
        start = np.asarray(start, dtype=float)
        if not oracle(start):
            raise ValueError("starting point is not inside the body")
        self._start = start
        self.delta = delta if delta is not None else 1.0 / np.sqrt(dimension)
        self.burn_in = burn_in if burn_in is not None else max(200, 30 * dimension)
        self.thinning = thinning if thinning is not None else max(10, 3 * dimension)

    def _step(self, rng: np.random.Generator, current: np.ndarray) -> np.ndarray:
        proposal = Ball(current, self.delta).sample(rng, 1)[0]
        if self.oracle(proposal):
            return proposal
        return current

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` approximately uniform samples (shape ``(count, d)``)."""
        rng = ensure_rng(rng)
        current = self._start.copy()
        for _ in range(self.burn_in):
            current = self._step(rng, current)
        samples = np.empty((count, self.dimension))
        for index in range(count):
            for _ in range(self.thinning):
                current = self._step(rng, current)
            samples[index] = current
        return samples

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a single approximately uniform sample."""
        return self.sample(rng, count=1)[0]
