"""Samplers: random walks, rejection schemes and diagnostics."""

from repro.sampling.ball_walk import BallWalkSampler
from repro.sampling.diagnostics import (
    cell_histogram,
    chi_square_uniform,
    empirical_moments,
    ks_statistic_uniform,
    max_ratio_to_uniform,
    total_variation_to_uniform,
)
from repro.sampling.fixed_dim import CellDecomposition, FixedDimensionSampler
from repro.sampling.grid_walk import GridWalkConfig, GridWalkSampler
from repro.sampling.hit_and_run import HitAndRunSampler
from repro.sampling.oracles import (
    BatchMembershipOracle,
    BatchOracle,
    CountingBatchOracle,
    CountingOracle,
    MembershipOracle,
    as_batch_oracle,
    batch_oracle_from_polytope,
    batch_oracle_from_predicate,
    batch_oracle_from_relation,
    batch_oracle_from_tuple,
    lift_scalar,
    oracle_from_polytope,
    oracle_from_predicate,
    oracle_from_relation,
    oracle_from_tuple,
)
from repro.sampling.rejection import (
    RejectionResult,
    estimate_acceptance_rate,
    rejection_sample_from_ball,
    rejection_sample_from_box,
    sample_box,
)
from repro.sampling.rng import RandomState, ensure_rng, spawn_rngs, spawn_seeds

__all__ = [
    "BallWalkSampler",
    "cell_histogram",
    "chi_square_uniform",
    "empirical_moments",
    "ks_statistic_uniform",
    "max_ratio_to_uniform",
    "total_variation_to_uniform",
    "CellDecomposition",
    "FixedDimensionSampler",
    "GridWalkConfig",
    "GridWalkSampler",
    "HitAndRunSampler",
    "BatchMembershipOracle",
    "BatchOracle",
    "CountingBatchOracle",
    "CountingOracle",
    "MembershipOracle",
    "as_batch_oracle",
    "batch_oracle_from_polytope",
    "batch_oracle_from_predicate",
    "batch_oracle_from_relation",
    "batch_oracle_from_tuple",
    "lift_scalar",
    "oracle_from_polytope",
    "oracle_from_predicate",
    "oracle_from_relation",
    "oracle_from_tuple",
    "RejectionResult",
    "estimate_acceptance_rate",
    "rejection_sample_from_ball",
    "rejection_sample_from_box",
    "sample_box",
    "RandomState",
    "ensure_rng",
    "spawn_rngs",
    "spawn_seeds",
]
