"""Hit-and-run sampling for convex polytopes — single chain and multi-chain.

Hit-and-run is a rapidly mixing random walk on a convex body: from the current
interior point pick a uniformly random direction, intersect the resulting line
with the body to obtain a chord, and jump to a uniformly random point of the
chord.  Its stationary distribution is uniform on the body and it mixes in
polynomial time from a warm start, so it satisfies the same contract as the
Dyer--Frieze--Kannan lattice walk used in the paper (an almost uniform
generator given through a membership representation).

The library uses hit-and-run as the practical default sampler for linear
bodies because the chord intersection is available in closed form from the
H-representation; the DFK grid walk (:mod:`repro.sampling.grid_walk`) remains
the paper-faithful reference and the oracle-only ball walk
(:mod:`repro.sampling.ball_walk`) covers polynomial constraints.

:meth:`HitAndRunSampler.sample_chains` advances ``k`` independent chains in
lockstep: per step, the chord computations of all chains collapse into one
``(k, d) @ (d, m)`` product against the constraint matrix, while each chain
draws its randomness from its own child generator
(:func:`repro.sampling.rng.spawn_rngs`) so chains stay independent and
individually reproducible.  With ``chains=1`` the call delegates to the
scalar :meth:`~HitAndRunSampler.sample` code path, so a single chain
reproduces the classic sample stream bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro import kernels
from repro.geometry.polytope import HPolytope
from repro.sampling.chains import run_lockstep_chains
from repro.sampling.rng import ensure_rng, spawn_rngs
from repro.telemetry.tracer import current_tracer


class HitAndRunSampler:
    """Uniform sampler on a bounded convex polytope via hit-and-run.

    Parameters
    ----------
    polytope:
        The body to sample from (must be bounded and full-dimensional).
    start:
        Interior starting point; defaults to the Chebyshev centre.
    burn_in:
        Number of steps discarded before the first sample is emitted.
    thinning:
        Number of steps between consecutive emitted samples.
    """

    def __init__(
        self,
        polytope: HPolytope,
        start: np.ndarray | None = None,
        burn_in: int | None = None,
        thinning: int | None = None,
    ) -> None:
        self.polytope = polytope
        dimension = polytope.dimension
        if start is None:
            chebyshev = polytope.chebyshev_ball()
            if chebyshev is None or chebyshev.radius <= 0:
                raise ValueError("polytope is empty or not full-dimensional")
            start = chebyshev.center
        start = np.asarray(start, dtype=float)
        if not polytope.contains(start, tolerance=1e-7):
            raise ValueError("starting point is not inside the polytope")
        self._start = start
        self.burn_in = burn_in if burn_in is not None else max(100, 20 * dimension)
        self.thinning = thinning if thinning is not None else max(5, 2 * dimension)

    # ------------------------------------------------------------------
    def _step(self, rng: np.random.Generator, current: np.ndarray) -> np.ndarray:
        """One hit-and-run step from ``current``."""
        a = self.polytope.a
        b = self.polytope.b
        dimension = current.shape[0]
        direction = rng.normal(size=dimension)
        norm = float(np.linalg.norm(direction))
        if norm == 0.0:
            return current
        direction /= norm
        # Chord: {current + t * direction}; each row a_i . x <= b_i constrains t.
        if a.shape[0] == 0:
            raise ValueError("hit-and-run requires a bounded polytope")
        slopes = a @ direction
        gaps = b - a @ current
        lower = -np.inf
        upper = np.inf
        positive = slopes > kernels.CHORD_SLOPE_EPSILON
        negative = slopes < -kernels.CHORD_SLOPE_EPSILON
        if np.any(positive):
            upper = float(np.min(gaps[positive] / slopes[positive]))
        if np.any(negative):
            lower = float(np.max(gaps[negative] / slopes[negative]))
        if not np.isfinite(lower) or not np.isfinite(upper):
            raise ValueError("polytope is unbounded along a sampled direction")
        if upper < lower:
            # Numerical corner case: stay put.
            return current
        t = rng.uniform(lower, upper)
        return current + t * direction

    def _step_chains(
        self,
        current: np.ndarray,
        directions: np.ndarray,
        uniforms: np.ndarray,
    ) -> np.ndarray:
        """One vectorized step of ``k`` chains from ``current`` (shape ``(k, d)``).

        ``directions`` holds one raw (un-normalised) Gaussian direction per
        chain and ``uniforms`` one ``U(0, 1)`` variate per chain used to place
        the move on the chord.  Chains whose chord is degenerate (zero
        direction or numerically inverted chord) stay put, and an unbounded
        chord raises :class:`ValueError`, exactly like the scalar
        :meth:`_step` corner cases.
        """
        a = self.polytope.a
        b = self.polytope.b
        if a.shape[0] == 0:
            raise ValueError("hit-and-run requires a bounded polytope")
        norms = np.linalg.norm(directions, axis=1)
        safe = norms > 0.0
        unit = np.where(safe[:, None], directions / np.where(safe, norms, 1.0)[:, None], 0.0)
        # The matmuls stay here (shared by every kernel backend); the masked
        # ratio reduction dispatches to the active repro.kernels backend,
        # which is bit-identical to the reference expression by contract.
        slopes = unit @ a.T  # (k, m)
        gaps = b - current @ a.T  # (k, m)
        lower, upper = kernels.chord_bounds(slopes, gaps)
        if np.any(safe & ~(np.isfinite(lower) & np.isfinite(upper))):
            raise ValueError("polytope is unbounded along a sampled direction")
        valid = safe & (upper >= lower)
        t = np.where(valid, lower + (upper - lower) * uniforms, 0.0)
        return current + t[:, None] * unit

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` approximately uniform samples (shape ``(count, d)``)."""
        rng = ensure_rng(rng)
        tracer = current_tracer()
        if tracer.enabled:
            # The step count is a pure function of the request — counted
            # arithmetically so the walk loop itself stays uninstrumented.
            tracer.count("chain_steps", self.burn_in + count * self.thinning)
        current = self._start.copy()
        for _ in range(self.burn_in):
            current = self._step(rng, current)
        samples = np.empty((count, current.shape[0]))
        for index in range(count):
            for _ in range(self.thinning):
                current = self._step(rng, current)
            samples[index] = current
        return samples

    def sample_chains(
        self, rng: np.random.Generator | int | None, count: int, chains: int
    ) -> np.ndarray:
        """Draw ``count`` samples from each of ``chains`` independent chains.

        Returns an array of shape ``(chains, count, d)``.  Each chain owns a
        child generator spawned from ``rng`` and consumes it in fixed-size
        blocks (one Gaussian direction plus one uniform per step), so the
        result is deterministic for a fixed seed and chain ``i`` is unaffected
        by how many other chains run alongside it.  ``chains=1`` delegates to
        the scalar :meth:`sample` path with ``rng`` itself, reproducing the
        classic single-chain stream exactly.
        """
        if chains < 1:
            raise ValueError("chains must be at least 1")
        if chains == 1:
            return self.sample(ensure_rng(rng), count)[None, ...]
        dimension = self._start.shape[0]

        def draw_chunk(streams, chunk):
            directions = np.stack(
                [stream.normal(size=(chunk, dimension)) for stream in streams]
            )
            uniforms = np.stack([stream.random(chunk) for stream in streams])
            return directions, uniforms

        def step(current, draws, offset):
            directions, uniforms = draws
            return self._step_chains(
                current, directions[:, offset, :], uniforms[:, offset]
            )

        return run_lockstep_chains(
            spawn_rngs(ensure_rng(rng), chains),
            self._start,
            count,
            self.burn_in,
            self.thinning,
            draw_chunk,
            step,
        )

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a single approximately uniform sample."""
        return self.sample(rng, count=1)[0]
