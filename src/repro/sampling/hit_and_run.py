"""Hit-and-run sampling for convex polytopes.

Hit-and-run is a rapidly mixing random walk on a convex body: from the current
interior point pick a uniformly random direction, intersect the resulting line
with the body to obtain a chord, and jump to a uniformly random point of the
chord.  Its stationary distribution is uniform on the body and it mixes in
polynomial time from a warm start, so it satisfies the same contract as the
Dyer--Frieze--Kannan lattice walk used in the paper (an almost uniform
generator given through a membership representation).

The library uses hit-and-run as the practical default sampler for linear
bodies because the chord intersection is available in closed form from the
H-representation; the DFK grid walk (:mod:`repro.sampling.grid_walk`) remains
the paper-faithful reference and the oracle-only ball walk
(:mod:`repro.sampling.ball_walk`) covers polynomial constraints.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.polytope import HPolytope
from repro.sampling.rng import ensure_rng


class HitAndRunSampler:
    """Uniform sampler on a bounded convex polytope via hit-and-run.

    Parameters
    ----------
    polytope:
        The body to sample from (must be bounded and full-dimensional).
    start:
        Interior starting point; defaults to the Chebyshev centre.
    burn_in:
        Number of steps discarded before the first sample is emitted.
    thinning:
        Number of steps between consecutive emitted samples.
    """

    def __init__(
        self,
        polytope: HPolytope,
        start: np.ndarray | None = None,
        burn_in: int | None = None,
        thinning: int | None = None,
    ) -> None:
        self.polytope = polytope
        dimension = polytope.dimension
        if start is None:
            chebyshev = polytope.chebyshev_ball()
            if chebyshev is None or chebyshev.radius <= 0:
                raise ValueError("polytope is empty or not full-dimensional")
            start = chebyshev.center
        start = np.asarray(start, dtype=float)
        if not polytope.contains(start, tolerance=1e-7):
            raise ValueError("starting point is not inside the polytope")
        self._start = start
        self.burn_in = burn_in if burn_in is not None else max(100, 20 * dimension)
        self.thinning = thinning if thinning is not None else max(5, 2 * dimension)

    # ------------------------------------------------------------------
    def _step(self, rng: np.random.Generator, current: np.ndarray) -> np.ndarray:
        """One hit-and-run step from ``current``."""
        a = self.polytope.a
        b = self.polytope.b
        dimension = current.shape[0]
        direction = rng.normal(size=dimension)
        norm = float(np.linalg.norm(direction))
        if norm == 0.0:
            return current
        direction /= norm
        # Chord: {current + t * direction}; each row a_i . x <= b_i constrains t.
        if a.shape[0] == 0:
            raise ValueError("hit-and-run requires a bounded polytope")
        slopes = a @ direction
        gaps = b - a @ current
        lower = -np.inf
        upper = np.inf
        positive = slopes > 1e-14
        negative = slopes < -1e-14
        if np.any(positive):
            upper = float(np.min(gaps[positive] / slopes[positive]))
        if np.any(negative):
            lower = float(np.max(gaps[negative] / slopes[negative]))
        if not np.isfinite(lower) or not np.isfinite(upper):
            raise ValueError("polytope is unbounded along a sampled direction")
        if upper < lower:
            # Numerical corner case: stay put.
            return current
        t = rng.uniform(lower, upper)
        return current + t * direction

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` approximately uniform samples (shape ``(count, d)``)."""
        rng = ensure_rng(rng)
        current = self._start.copy()
        for _ in range(self.burn_in):
            current = self._step(rng, current)
        samples = np.empty((count, current.shape[0]))
        for index in range(count):
            for _ in range(self.thinning):
                current = self._step(rng, current)
            samples[index] = current
        return samples

    def sample_one(self, rng: np.random.Generator) -> np.ndarray:
        """Draw a single approximately uniform sample."""
        return self.sample(rng, count=1)[0]
