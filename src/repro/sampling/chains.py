"""Shared driver for lockstep multi-chain random walks.

Both multi-chain samplers (:meth:`HitAndRunSampler.sample_chains` and
:meth:`BallWalkSampler.sample_chains`) follow the same schedule: pre-draw
each chain's randomness for a chunk of steps from its own generator, advance
all chains one vectorized step at a time, and record a row of samples after
the burn-in every ``thinning`` steps — mirroring the scalar walk's
burn-in/thinning schedule exactly.  Only the per-step kernel differs, so it
is injected as a callback and the bookkeeping lives here once.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

#: Steps buffered per chain when pre-drawing multi-chain randomness.
CHAIN_STEP_CHUNK = 512


def run_lockstep_chains(
    streams: Sequence[np.random.Generator],
    start: np.ndarray,
    count: int,
    burn_in: int,
    thinning: int,
    draw_chunk: Callable[[Sequence[np.random.Generator], int], object],
    step: Callable[[np.ndarray, object, int], np.ndarray],
    chunk_size: int = CHAIN_STEP_CHUNK,
) -> np.ndarray:
    """Drive ``len(streams)`` chains in lockstep; returns ``(k, count, d)``.

    ``draw_chunk(streams, chunk)`` pre-draws the randomness for ``chunk``
    steps (one call per chain generator, keeping chains individually
    reproducible); ``step(current, draws, offset)`` advances all chains by
    one step using draw index ``offset`` and returns the new ``(k, d)``
    state.
    """
    if burn_in < 0 or thinning < 0:
        raise ValueError("burn_in and thinning must be non-negative")
    chains = len(streams)
    dimension = start.shape[0]
    current = np.tile(start, (chains, 1))
    samples = np.empty((chains, count, dimension))
    total_steps = burn_in + count * thinning
    completed = 0
    while completed < total_steps:
        chunk = min(chunk_size, total_steps - completed)
        draws = draw_chunk(streams, chunk)
        for offset in range(chunk):
            current = step(current, draws, offset)
            done = completed + offset + 1
            if thinning and done > burn_in and (done - burn_in) % thinning == 0:
                samples[:, (done - burn_in) // thinning - 1, :] = current
        completed += chunk
    if thinning == 0:
        # Scalar semantics: no steps between records — the post-burn-in
        # state repeated ``count`` times.
        samples[:] = current[:, None, :]
    return samples
