"""Rejection sampling from enclosing boxes and balls.

Rejection sampling is both a useful primitive (the paper's union,
intersection and difference generators are rejection schemes layered on top
of the convex generator) and the *negative* baseline of the introduction: the
acceptance probability when sampling a d-dimensional ball from its bounding
cube decays like the volume ratio, i.e. exponentially in ``d``, which is why
naive Monte-Carlo sampling cannot replace the DFK generator (experiment E10).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.ball import Ball
from repro.sampling.oracles import MembershipOracle
from repro.sampling.rng import ensure_rng


@dataclass
class RejectionResult:
    """Outcome of a rejection sampling run.

    Attributes
    ----------
    samples:
        Accepted points, shape ``(num_accepted, d)``.
    proposals:
        Total number of proposals drawn.
    accepted:
        Number of accepted proposals (``len(samples)``).
    """

    samples: np.ndarray
    proposals: int
    accepted: int

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted (0.0 when nothing was proposed)."""
        if self.proposals == 0:
            return 0.0
        return self.accepted / self.proposals


def sample_box(
    rng: np.random.Generator, bounds: list[tuple[float, float]], count: int
) -> np.ndarray:
    """Uniform samples from an axis-aligned box (shape ``(count, d)``)."""
    rng = ensure_rng(rng)
    lower = np.array([interval[0] for interval in bounds])
    upper = np.array([interval[1] for interval in bounds])
    return rng.random((count, len(bounds))) * (upper - lower) + lower


def rejection_sample_from_box(
    oracle: MembershipOracle,
    bounds: list[tuple[float, float]],
    count: int,
    rng: np.random.Generator,
    max_proposals: int | None = None,
    batch_size: int = 256,
) -> RejectionResult:
    """Sample ``count`` points of the body by rejection from its bounding box.

    ``max_proposals`` bounds the total work; when it is exhausted the result
    contains fewer than ``count`` samples (the caller decides whether that is
    a failure — the intersection generator of Proposition 4.1 does exactly
    this to detect a violated poly-relatedness condition).
    """
    rng = ensure_rng(rng)
    accepted: list[np.ndarray] = []
    proposals = 0
    while len(accepted) < count:
        if max_proposals is not None and proposals >= max_proposals:
            break
        batch = batch_size
        if max_proposals is not None:
            batch = min(batch, max_proposals - proposals)
        points = sample_box(rng, bounds, batch)
        for point in points:
            proposals += 1
            if oracle(point):
                accepted.append(point)
                if len(accepted) == count:
                    break
    samples = np.array(accepted) if accepted else np.zeros((0, len(bounds)))
    return RejectionResult(samples, proposals, len(accepted))


def rejection_sample_from_ball(
    oracle: MembershipOracle,
    ball: Ball,
    count: int,
    rng: np.random.Generator,
    max_proposals: int | None = None,
    batch_size: int = 256,
) -> RejectionResult:
    """Sample points of the body by rejection from an enclosing ball."""
    rng = ensure_rng(rng)
    accepted: list[np.ndarray] = []
    proposals = 0
    while len(accepted) < count:
        if max_proposals is not None and proposals >= max_proposals:
            break
        batch = batch_size
        if max_proposals is not None:
            batch = min(batch, max_proposals - proposals)
        points = ball.sample(rng, batch)
        for point in points:
            proposals += 1
            if oracle(point):
                accepted.append(point)
                if len(accepted) == count:
                    break
    samples = np.array(accepted) if accepted else np.zeros((0, ball.dimension))
    return RejectionResult(samples, proposals, len(accepted))


def estimate_acceptance_rate(
    oracle: MembershipOracle,
    bounds: list[tuple[float, float]],
    proposals: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate of the box-rejection acceptance rate.

    Experiment E10 uses this to exhibit the exponential decay of the
    ball-in-cube acceptance probability with the dimension.
    """
    rng = ensure_rng(rng)
    points = sample_box(rng, bounds, proposals)
    hits = sum(1 for point in points if oracle(point))
    return hits / proposals if proposals else 0.0
