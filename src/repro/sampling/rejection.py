"""Rejection sampling from enclosing boxes and balls — vectorized.

Rejection sampling is both a useful primitive (the paper's union,
intersection and difference generators are rejection schemes layered on top
of the convex generator) and the *negative* baseline of the introduction: the
acceptance probability when sampling a d-dimensional ball from its bounding
cube decays like the volume ratio, i.e. exponentially in ``d``, which is why
naive Monte-Carlo sampling cannot replace the DFK generator (experiment E10).

Proposals are drawn and judged in whole blocks: one call to the (batch)
membership oracle per block, mask-accept, repeat.  Scalar oracles are lifted
transparently (:func:`repro.sampling.oracles.as_batch_oracle`), and because
blocks are drawn with the same generator calls as before, a fixed seed
produces bit-identical samples, proposal counts and acceptance decisions
through the scalar and batch paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import kernels
from repro.geometry.ball import Ball
from repro.sampling.oracles import BatchOracle, MembershipOracle, as_batch_oracle
from repro.sampling.rng import ensure_rng
from repro.telemetry.tracer import current_tracer


@dataclass
class RejectionResult:
    """Outcome of a rejection sampling run.

    Attributes
    ----------
    samples:
        Accepted points, shape ``(num_accepted, d)``.
    proposals:
        Total number of proposals drawn.
    accepted:
        Number of accepted proposals (``len(samples)``).
    """

    samples: np.ndarray
    proposals: int
    accepted: int

    @property
    def acceptance_rate(self) -> float:
        """Fraction of proposals accepted (0.0 when nothing was proposed)."""
        if self.proposals == 0:
            return 0.0
        return self.accepted / self.proposals


def sample_box(
    rng: np.random.Generator, bounds: list[tuple[float, float]], count: int
) -> np.ndarray:
    """Uniform samples from an axis-aligned box (shape ``(count, d)``).

    One generator call fills the whole block; drawing ``count`` points in
    consecutive sub-blocks from the same generator yields the identical point
    stream, which is what makes the blocked estimators' results independent
    of their block size.
    """
    rng = ensure_rng(rng)
    lower = np.array([interval[0] for interval in bounds])
    upper = np.array([interval[1] for interval in bounds])
    return rng.random((count, len(bounds))) * (upper - lower) + lower


def count_box_hits(
    oracle: MembershipOracle | BatchOracle,
    bounds: list[tuple[float, float]],
    total: int,
    rng: np.random.Generator,
    block_size: int = 8192,
) -> int:
    """Count oracle hits among ``total`` uniform box proposals, drawn in blocks.

    The shared kernel of :func:`estimate_acceptance_rate` and
    :func:`repro.volume.monte_carlo.monte_carlo_volume`: consecutive blocks
    draw the identical point stream a single large draw would, so the count
    is independent of ``block_size``.
    """
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    batch_oracle = as_batch_oracle(oracle)
    hits = 0
    drawn = 0
    blocks = 0
    while drawn < total:
        block = min(block_size, total - drawn)
        points = sample_box(rng, bounds, block)
        hits += int(np.count_nonzero(batch_oracle(points)))
        drawn += block
        blocks += 1
    # Telemetry only observes the already-computed tallies — it never draws
    # from (or reorders draws of) the generator, so traced and untraced runs
    # consume identical streams.
    tracer = current_tracer()
    if tracer.enabled and drawn:
        tracer.count("proposals", drawn)
        tracer.count("proposal_hits", hits)
        tracer.count("oracle_blocks", blocks)
    return hits


def _accept_block(
    points: np.ndarray,
    mask: np.ndarray,
    needed: int,
) -> tuple[np.ndarray, int, bool]:
    """Accepted rows of a judged block, stopping at the ``needed``-th hit.

    Returns ``(accepted_points, proposals_consumed, filled)`` where
    ``proposals_consumed`` counts every row up to and including the decisive
    acceptance — the same count the historical one-point-at-a-time loop
    produced, so oracle-call accounting is unchanged.  The index selection
    dispatches to the active :mod:`repro.kernels` backend (bit-identical to
    the ``np.flatnonzero`` reference by contract).
    """
    indices, consumed, filled = kernels.accept_indices(mask, needed)
    return points[indices], consumed, filled


def _rejection_sample(
    propose,
    oracle: MembershipOracle | BatchOracle,
    dimension: int,
    count: int,
    max_proposals: int | None,
    batch_size: int,
) -> RejectionResult:
    """Shared block-propose / mask-accept loop of the rejection samplers."""
    batch_oracle = as_batch_oracle(oracle)
    accepted_blocks: list[np.ndarray] = []
    accepted = 0
    proposals = 0
    while accepted < count:
        if max_proposals is not None and proposals >= max_proposals:
            break
        block = batch_size
        if max_proposals is not None:
            block = min(block, max_proposals - proposals)
        points = propose(block)
        mask = np.asarray(batch_oracle(points), dtype=bool)
        taken, consumed, filled = _accept_block(points, mask, count - accepted)
        proposals += consumed
        if taken.shape[0]:
            accepted_blocks.append(taken)
            accepted += taken.shape[0]
        if filled:
            break
    if accepted_blocks:
        samples = np.concatenate(accepted_blocks, axis=0)
    else:
        samples = np.zeros((0, dimension))
    tracer = current_tracer()
    if tracer.enabled and proposals:
        tracer.count("rejection_proposals", proposals)
        tracer.count("rejection_accepts", accepted)
    return RejectionResult(samples, proposals, accepted)


def rejection_sample_from_box(
    oracle: MembershipOracle | BatchOracle,
    bounds: list[tuple[float, float]],
    count: int,
    rng: np.random.Generator,
    max_proposals: int | None = None,
    batch_size: int = 256,
) -> RejectionResult:
    """Sample ``count`` points of the body by rejection from its bounding box.

    ``max_proposals`` bounds the total work; when it is exhausted the result
    contains fewer than ``count`` samples (the caller decides whether that is
    a failure — the intersection generator of Proposition 4.1 does exactly
    this to detect a violated poly-relatedness condition).
    """
    rng = ensure_rng(rng)
    return _rejection_sample(
        lambda block: sample_box(rng, bounds, block),
        oracle,
        len(bounds),
        count,
        max_proposals,
        batch_size,
    )


def rejection_sample_from_ball(
    oracle: MembershipOracle | BatchOracle,
    ball: Ball,
    count: int,
    rng: np.random.Generator,
    max_proposals: int | None = None,
    batch_size: int = 256,
) -> RejectionResult:
    """Sample points of the body by rejection from an enclosing ball."""
    rng = ensure_rng(rng)
    return _rejection_sample(
        lambda block: ball.sample(rng, block),
        oracle,
        ball.dimension,
        count,
        max_proposals,
        batch_size,
    )


def estimate_acceptance_rate(
    oracle: MembershipOracle | BatchOracle,
    bounds: list[tuple[float, float]],
    proposals: int,
    rng: np.random.Generator,
    block_size: int = 8192,
) -> float:
    """Monte-Carlo estimate of the box-rejection acceptance rate.

    Experiment E10 uses this to exhibit the exponential decay of the
    ball-in-cube acceptance probability with the dimension.  Proposals are
    judged in blocks of ``block_size``; the block size does not affect the
    result (the point stream and the hit count are identical for any
    blocking).
    """
    rng = ensure_rng(rng)
    if proposals <= 0:
        return 0.0
    return count_box_hits(oracle, bounds, proposals, rng, block_size) / proposals
