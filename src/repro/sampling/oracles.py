"""Membership oracles.

The Dyer--Frieze--Kannan generator only needs a *membership oracle* for the
convex body: an algorithm that answers "is this point in the set?".  The paper
notes (Section 2) that such an oracle is computable in linear time in the
description size of a finitely representable relation — it suffices to check
every constraint — and (Section 5) that the same holds for polynomial
constraints, which is how the results extend beyond the linear case.

This module provides oracle adapters for symbolic relations, numeric
polytopes, arbitrary Python predicates (used for balls/ellipsoids in the
polynomial-constraint experiments) and a counting wrapper that records how
many membership queries an algorithm performed (the oracle-complexity measure
used in the benchmarks).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.geometry.polytope import HPolytope

MembershipOracle = Callable[[np.ndarray], bool]


def oracle_from_polytope(polytope: HPolytope, tolerance: float = 1e-9) -> MembershipOracle:
    """Membership oracle of an H-polytope."""

    def oracle(point: np.ndarray) -> bool:
        return polytope.contains(point, tolerance=tolerance)

    return oracle


def oracle_from_tuple(tuple_: GeneralizedTuple) -> MembershipOracle:
    """Membership oracle of a generalized tuple (exact constraint checking)."""

    def oracle(point: np.ndarray) -> bool:
        return tuple_.contains_point([float(value) for value in point])

    return oracle


def oracle_from_relation(relation: GeneralizedRelation) -> MembershipOracle:
    """Membership oracle of a DNF generalized relation."""

    def oracle(point: np.ndarray) -> bool:
        return relation.contains_point([float(value) for value in point])

    return oracle


def oracle_from_predicate(predicate: Callable[[np.ndarray], bool]) -> MembershipOracle:
    """Wrap an arbitrary predicate (e.g. a polynomial constraint) as an oracle."""

    def oracle(point: np.ndarray) -> bool:
        return bool(predicate(np.asarray(point, dtype=float)))

    return oracle


class CountingOracle:
    """A membership oracle that counts how many times it was queried.

    The benchmarks report oracle-call counts because they are the
    machine-independent cost measure used by the paper's complexity
    statements (polynomial in the description size, the dimension, ``1/ε``
    and ``ln(1/δ)``).
    """

    __slots__ = ("_oracle", "calls")

    def __init__(self, oracle: MembershipOracle) -> None:
        self._oracle = oracle
        self.calls = 0

    def __call__(self, point: np.ndarray) -> bool:
        self.calls += 1
        return self._oracle(point)

    def reset(self) -> None:
        """Reset the call counter."""
        self.calls = 0
