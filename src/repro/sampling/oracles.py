"""Membership oracles — scalar and batch.

The Dyer--Frieze--Kannan generator only needs a *membership oracle* for the
convex body: an algorithm that answers "is this point in the set?".  The paper
notes (Section 2) that such an oracle is computable in linear time in the
description size of a finitely representable relation — it suffices to check
every constraint — and (Section 5) that the same holds for polynomial
constraints, which is how the results extend beyond the linear case.

Two oracle shapes coexist:

* a **scalar** oracle (:data:`MembershipOracle`) maps one point ``(d,)`` to a
  ``bool`` — the paper's interface, and the one arbitrary Python predicates
  implement naturally;
* a **batch** oracle (:data:`BatchMembershipOracle`) maps a block of points
  ``(n, d)`` to a boolean array ``(n,)`` — the fast path.  For an H-polytope
  a batch query is a single matrix product plus a comparison; for a DNF
  relation it is one matrix product per disjunct over the not-yet-matched
  points.  The samplers and estimators accept either shape and normalise
  through :func:`as_batch_oracle`.

:func:`lift_scalar` adapts any scalar oracle to the batch signature so every
existing oracle keeps working — but a lifted oracle still pays one Python
call *per point*, so it forfeits the batch speedup entirely (it exists for
compatibility and for scalar-vs-batch equivalence testing, not for speed).
Wrap bodies with the native ``batch_oracle_from_*`` constructors whenever the
body has linear structure; reserve ``lift_scalar`` for opaque predicates that
genuinely cannot be vectorized.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.geometry.polytope import HPolytope

MembershipOracle = Callable[[np.ndarray], bool]

#: Batch membership oracle: ``(n, d)`` float array in, ``(n,)`` bool array out.
BatchMembershipOracle = Callable[[np.ndarray], np.ndarray]


def oracle_from_polytope(polytope: HPolytope, tolerance: float = 1e-9) -> MembershipOracle:
    """Membership oracle of an H-polytope."""

    def oracle(point: np.ndarray) -> bool:
        return polytope.contains(point, tolerance=tolerance)

    return oracle


def oracle_from_tuple(tuple_: GeneralizedTuple) -> MembershipOracle:
    """Membership oracle of a generalized tuple (exact constraint checking)."""

    def oracle(point: np.ndarray) -> bool:
        return tuple_.contains_point([float(value) for value in point])

    return oracle


def oracle_from_relation(relation: GeneralizedRelation) -> MembershipOracle:
    """Membership oracle of a DNF generalized relation."""

    def oracle(point: np.ndarray) -> bool:
        return relation.contains_point([float(value) for value in point])

    return oracle


def oracle_from_predicate(predicate: Callable[[np.ndarray], bool]) -> MembershipOracle:
    """Wrap an arbitrary predicate (e.g. a polynomial constraint) as an oracle."""

    def oracle(point: np.ndarray) -> bool:
        return bool(predicate(np.asarray(point, dtype=float)))

    return oracle


# ----------------------------------------------------------------------
# Batch oracles
# ----------------------------------------------------------------------
class BatchOracle:
    """A batch membership oracle: ``(n, d)`` points in, ``(n,)`` booleans out.

    Instances are also usable as *scalar* oracles — a 1-D point is promoted
    to a one-row batch — so a batch oracle can be handed to any consumer of
    the classic :data:`MembershipOracle` signature.  The ``is_batch`` marker
    is what :func:`as_batch_oracle` dispatches on.
    """

    __slots__ = ("_evaluate",)

    is_batch = True

    def __init__(self, evaluate: BatchMembershipOracle) -> None:
        self._evaluate = evaluate

    def __call__(self, points: np.ndarray) -> np.ndarray | bool:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            return bool(self._evaluate(points[None, :])[0])
        return np.asarray(self._evaluate(points), dtype=bool)


def batch_oracle_from_polytope(polytope: HPolytope, tolerance: float = 1e-9) -> BatchOracle:
    """Batch oracle of an H-polytope: one ``(n, d) @ (d, m)`` product per block."""
    return BatchOracle(lambda points: polytope.contains_points(points, tolerance=tolerance))


def batch_oracle_from_tuple(tuple_: GeneralizedTuple) -> BatchOracle:
    """Batch oracle of a generalized tuple via its cached float system.

    All atoms are evaluated with one matrix product
    (:meth:`~repro.constraints.tuples.GeneralizedTuple.float_system`); the
    exact-rational scalar oracle and this float kernel can only disagree on
    points within one ulp of a constraint boundary.
    """
    return BatchOracle(tuple_.contains_points)


def batch_oracle_from_relation(relation: GeneralizedRelation) -> BatchOracle:
    """Batch oracle of a DNF relation: per-disjunct products with short-circuiting."""
    return BatchOracle(relation.contains_points)


def batch_oracle_from_predicate(
    predicate: Callable[[np.ndarray], np.ndarray]
) -> BatchOracle:
    """Wrap an already-vectorized predicate (``(n, d) -> (n,)``) as a batch oracle.

    Use this for bodies with closed-form vectorized membership, e.g.
    ``Ball.contains_points`` for the polynomial-constraint experiments.  For a
    predicate that can only judge one point at a time, use
    :func:`lift_scalar` instead (and accept the per-point Python cost).
    """
    return BatchOracle(predicate)


def lift_scalar(oracle: MembershipOracle) -> BatchOracle:
    """Adapt a scalar oracle to the batch signature (compatibility path).

    The lifted oracle answers a block by calling ``oracle`` once per row, so
    a block of ``n`` points costs ``n`` Python calls: lifting preserves
    correctness, **not** the batch speedup.  Profiling a workload that spends
    its time inside a lifted oracle is the cue to write a native batch oracle
    for the body (or to restate the body in linear/ball form so one of the
    ``batch_oracle_from_*`` constructors applies).
    """

    def evaluate(points: np.ndarray) -> np.ndarray:
        return np.fromiter(
            (bool(oracle(point)) for point in points),
            dtype=bool,
            count=points.shape[0],
        )

    return BatchOracle(evaluate)


def as_batch_oracle(oracle: MembershipOracle | BatchOracle) -> BatchOracle:
    """Normalise a scalar-or-batch oracle to the batch signature.

    Batch-capable oracles (anything with a truthy ``is_batch`` attribute)
    pass through unchanged; scalar oracles are wrapped with
    :func:`lift_scalar`.
    """
    if getattr(oracle, "is_batch", False):
        return oracle  # type: ignore[return-value]
    return lift_scalar(oracle)


class CountingOracle:
    """A membership oracle that counts how many times it was queried.

    The benchmarks report oracle-call counts because they are the
    machine-independent cost measure used by the paper's complexity
    statements (polynomial in the description size, the dimension, ``1/ε``
    and ``ln(1/δ)``).
    """

    __slots__ = ("_oracle", "calls")

    def __init__(self, oracle: MembershipOracle) -> None:
        self._oracle = oracle
        self.calls = 0

    def __call__(self, point: np.ndarray) -> bool:
        self.calls += 1
        return self._oracle(point)

    def reset(self) -> None:
        """Reset the call counter."""
        self.calls = 0


class CountingBatchOracle:
    """A batch oracle that counts *points* evaluated (not blocks).

    One block query of ``n`` points counts as ``n`` membership queries, so
    the oracle-complexity measure stays comparable between the scalar and
    batch paths.  Scalar (1-D) queries count as one point, mirroring
    :class:`BatchOracle`'s scalar promotion.
    """

    __slots__ = ("_oracle", "calls")

    is_batch = True

    def __init__(self, oracle: MembershipOracle | BatchOracle) -> None:
        self._oracle = as_batch_oracle(oracle)
        self.calls = 0

    def __call__(self, points: np.ndarray) -> np.ndarray | bool:
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            self.calls += 1
        else:
            self.calls += points.shape[0]
        return self._oracle(points)

    def reset(self) -> None:
        """Reset the point counter."""
        self.calls = 0
