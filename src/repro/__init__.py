"""repro — Uniform generation in spatial constraint databases.

A reproduction of Gross-Amblard and de Rougemont, "Uniform generation in
spatial constraint databases and applications" (PODS 2000 / JCSS 2006):
almost uniform generators and relative volume estimators for linear
constraint relations, their closure under the logical operators, and
sampling-based reconstruction of query results.

The public API is organised in layers:

* :mod:`repro.constraints` — the linear constraint database model;
* :mod:`repro.geometry`    — polytopes, hulls, grids, exact volumes;
* :mod:`repro.sampling`    — random walks, rejection schemes, diagnostics;
* :mod:`repro.volume`      — volume estimators (DFK telescoping, baselines);
* :mod:`repro.inference`   — anytime-valid confidence sequences and adaptive
  estimators with resumable, refinable results;
* :mod:`repro.core`        — observability and its closure properties
  (the paper's contribution);
* :mod:`repro.plan`        — the logical plan IR: canonicalization, rewrite
  rules, CSE, and cost-driven physical lowering;
* :mod:`repro.queries`     — FO+LIN queries, exact and approximate evaluation;
* :mod:`repro.service`     — the serving layer: canonical cache keys, cost-based
  plan selection, an LRU/TTL result cache and deterministic batch execution;
* :mod:`repro.telemetry`   — tracing, EXPLAIN ANALYZE and metric exporters;
* :mod:`repro.workloads`   — synthetic workloads for the experiments;
* :mod:`repro.harness`     — experiment registry and reporting.
"""

import logging as _logging

from repro.constraints import (
    AtomicConstraint,
    ConstraintDatabase,
    GeneralizedRelation,
    GeneralizedTuple,
    LinearTerm,
    parse_formula,
    parse_relation,
    variables,
)
from repro.core import (
    ConvexObservable,
    DifferenceObservable,
    FixedDimensionObservable,
    GeneratorParams,
    IntersectionObservable,
    ObservableRelation,
    ProjectionObservable,
    UnionObservable,
)
from repro.inference import (
    AdaptiveMonteCarlo,
    AdaptiveTelescoping,
    EmpiricalBernsteinSequence,
    HoeffdingSequence,
    RefinableEstimate,
)
from repro.plan import PlanNode, build_plan, explain_plan, rewrite_plan
from repro.queries import QueryEngine
from repro.service import Planner, ResultCache, ServiceMetrics, ServiceSession
from repro.telemetry import (
    RecordingTracer,
    activate,
    analyze_trace,
    chrome_trace,
    prometheus_text,
)
from repro.volume import VolumeEstimate, estimate_convex_volume

# Library convention: debug logging is available everywhere but silent until
# the application configures handlers (logging.basicConfig or a handler on
# the "repro" logger).
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "AtomicConstraint",
    "ConstraintDatabase",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "LinearTerm",
    "parse_formula",
    "parse_relation",
    "variables",
    "ConvexObservable",
    "DifferenceObservable",
    "FixedDimensionObservable",
    "GeneratorParams",
    "IntersectionObservable",
    "ObservableRelation",
    "ProjectionObservable",
    "UnionObservable",
    "AdaptiveMonteCarlo",
    "AdaptiveTelescoping",
    "EmpiricalBernsteinSequence",
    "HoeffdingSequence",
    "RefinableEstimate",
    "PlanNode",
    "build_plan",
    "explain_plan",
    "rewrite_plan",
    "QueryEngine",
    "Planner",
    "ResultCache",
    "ServiceMetrics",
    "ServiceSession",
    "RecordingTracer",
    "activate",
    "analyze_trace",
    "chrome_trace",
    "prometheus_text",
    "VolumeEstimate",
    "estimate_convex_volume",
    "__version__",
]
