"""Union of observable relations (Theorem 4.1, Theorem 4.2, Corollary 4.2).

Algorithm 1 of the paper samples from ``T = S_1 ∪ ... ∪ S_m`` as follows:

1. estimate the volume ``μ̂_i`` of every member;
2. choose an index ``j`` with probability ``μ̂_j / Σ μ̂_i``;
3. generate a point ``x`` almost uniformly in ``S_j``;
4. output ``x`` only when ``j`` is the *smallest* index of a member containing
   ``x`` (otherwise fail), so overlapping regions are not over-weighted.

One round succeeds with probability at least ``1/m`` (at least ``1/2`` for a
binary union), so ``k = O(m ln(1/δ))`` rounds bring the failure probability
below δ — the ``k = 4 ln(1/δ)`` of the binary case.  This is the geometric
counterpart of the Karp--Luby #DNF estimator, and the same acceptance ratio
immediately yields the union's volume (Theorem 4.2):

    vol(T) = (Σ_i vol(S_i)) · P[accept].
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.core.observable import GenerationFailure, GeneratorParams, ObservableRelation
from repro.sampling.rng import ensure_rng
from repro.telemetry.tracer import current_tracer
from repro.volume.base import VolumeEstimate
from repro.volume.chernoff import chernoff_ratio_sample_size


class UnionObservable(ObservableRelation):
    """Observable union of finitely many observable relations.

    Parameters
    ----------
    members:
        The observable relations whose union is sampled.  They must share the
        ambient dimension.
    params:
        Accuracy parameters (γ, ε, δ) of the composed generator.
    member_seeds:
        Optional per-member seeds.  When given, each member's volume estimate
        is drawn from its *own* ``default_rng(seed)`` stream instead of the
        shared generator passed to :meth:`member_volumes` — making every
        member estimate a pure function of ``(member, accuracy, seed)``,
        independent of sibling order.  The service's plan lowering derives
        these seeds from the member subplans' content digests, which is what
        makes shared-subplan reuse bit-identical to unshared evaluation.
    member_digests:
        Optional per-member subplan content digests (``None`` entries for
        members that are not plan subtrees).  Pure metadata: the service's
        sharing broker uses them to prime cached estimates before execution
        and to harvest freshly computed ones after.
    """

    def __init__(
        self,
        members: Sequence[ObservableRelation],
        params: GeneratorParams | None = None,
        max_volume_trials: int = 20_000,
        member_seeds: Sequence[int] | None = None,
        member_digests: Sequence[str | None] | None = None,
    ) -> None:
        members = list(members)
        if not members:
            raise ValueError("a union needs at least one member")
        dimension = members[0].dimension
        for member in members[1:]:
            if member.dimension != dimension:
                raise ValueError("all union members must share the ambient dimension")
        self.members = members
        self.params = params if params is not None else GeneratorParams()
        self.max_volume_trials = int(max_volume_trials)
        if member_seeds is not None and len(member_seeds) != len(members):
            raise ValueError("member_seeds must match the member count")
        if member_digests is not None and len(member_digests) != len(members):
            raise ValueError("member_digests must match the member count")
        self.member_seeds = None if member_seeds is None else tuple(member_seeds)
        self.member_digests = None if member_digests is None else tuple(member_digests)
        self._member_volumes: list[VolumeEstimate] | None = None
        self._primed: dict[int, VolumeEstimate] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.members[0].dimension

    def contains(self, point: np.ndarray) -> bool:
        return any(member.contains(point) for member in self.members)

    def membership_index(self, point: np.ndarray) -> int | None:
        """Smallest index of a member containing the point (the ``j(x)`` of the proof)."""
        for index, member in enumerate(self.members):
            if member.contains(point):
                return index
        return None

    def description_size(self) -> int:
        return sum(member.description_size() for member in self.members)

    def warm(self) -> "UnionObservable":
        for member in self.members:
            member.warm()
        return self

    # ------------------------------------------------------------------
    # Member volumes (step 1 of Algorithm 1, cached across rounds)
    # ------------------------------------------------------------------
    @staticmethod
    def member_accuracy(
        params: GeneratorParams, member_count: int
    ) -> tuple[float, float]:
        """The (ε, δ) each member volume is estimated at, from the union's params.

        Exposed so the service's sharing broker can compute a member estimate
        *outside* the union — for a shared subplan — at exactly the accuracy
        the union itself would use.
        """
        return (
            params.epsilon / 3.0,
            min(params.delta / max(member_count, 1), 0.125),
        )

    def prime_member_volume(self, index: int, estimate: VolumeEstimate) -> None:
        """Install a precomputed estimate for one member (subplan-cache reuse).

        The primed value must have been computed at exactly this union's
        :meth:`member_accuracy` from the member's own seeded stream — the
        service only primes estimates whose cache entries match the
        requested accuracy, so a primed and a freshly computed union are
        bit-identical when :attr:`member_seeds` is set.
        """
        if not 0 <= index < len(self.members):
            raise IndexError(f"no member at index {index}")
        self._primed[index] = estimate
        self._member_volumes = None

    def member_volume_estimates(self) -> list[VolumeEstimate] | None:
        """The member estimates computed so far (``None`` before any estimate).

        Exposed so the service's sharing broker can *harvest* freshly
        computed member volumes into its subplan cache after an execution,
        without triggering a computation of its own.
        """
        return self._member_volumes

    def member_volumes(
        self, rng: np.random.Generator | int | None = None, refresh: bool = False
    ) -> list[VolumeEstimate]:
        """Volume estimates ``μ̂_i`` of every member (ε/3 accuracy, cached).

        With :attr:`member_seeds` set, each member estimate consumes its own
        seeded stream (and primed entries are served as-is), so the shared
        ``rng`` is left untouched for the acceptance pass; without seeds all
        members draw sequentially from the shared stream (the historical
        behaviour, kept bit-identical for existing callers).
        """
        if self._member_volumes is None or refresh:
            rng = ensure_rng(rng)
            epsilon, delta = self.member_accuracy(self.params, len(self.members))
            tracer = current_tracer()
            estimates: list[VolumeEstimate] = []
            for index, member in enumerate(self.members):
                digest = (
                    self.member_digests[index] if self.member_digests is not None else None
                )
                primed = None if refresh else self._primed.get(index)
                if primed is not None:
                    if tracer.enabled:
                        with tracer.span("union-member", index=index) as span:
                            span.annotate(
                                source="primed",
                                samples=0,
                                value=primed.value,
                                epsilon=primed.epsilon,
                            )
                            if digest is not None:
                                span.annotate(digest=digest)
                    estimates.append(primed)
                    continue
                if self.member_seeds is not None:
                    member_rng: np.random.Generator = np.random.default_rng(
                        self.member_seeds[index]
                    )
                else:
                    member_rng = rng
                with tracer.span(
                    "union-member", index=index, epsilon=epsilon, delta=delta
                ) as span:
                    estimate = member.estimate_volume(epsilon, delta, rng=member_rng)
                    span.annotate(
                        source="computed",
                        samples=estimate.samples_used,
                        value=estimate.value,
                        method=estimate.method,
                    )
                    if digest is not None:
                        span.annotate(digest=digest)
                estimates.append(estimate)
            self._member_volumes = estimates
        return self._member_volumes

    # ------------------------------------------------------------------
    # Generation (Algorithm 1 / Corollary 4.2)
    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        volumes = np.array([estimate.value for estimate in self.member_volumes(rng)])
        total = volumes.sum()
        if total <= 0:
            raise GenerationFailure("all union members have (estimated) volume zero")
        weights = volumes / total
        rounds = max(1, math.ceil(len(self.members) * math.log(1.0 / self.params.delta)))
        for _ in range(rounds):
            index = int(rng.choice(len(self.members), p=weights))
            try:
                point = self.members[index].generate(rng)
            except GenerationFailure:
                continue
            if self.membership_index(point) == index:
                return point
        raise GenerationFailure(
            f"union generator failed {rounds} consecutive rounds (δ = {self.params.delta})"
        )

    def generate_with_statistics(
        self,
        count: int,
        rng: np.random.Generator | int | None = None,
    ) -> tuple[np.ndarray, int, int]:
        """Generate ``count`` points and report ``(points, trials, accepted)``.

        The acceptance ratio is the quantity the union volume estimator needs,
        so it is exposed directly instead of being recomputed.
        """
        rng = ensure_rng(rng)
        volumes = np.array([estimate.value for estimate in self.member_volumes(rng)])
        total = volumes.sum()
        if total <= 0:
            raise GenerationFailure("all union members have (estimated) volume zero")
        weights = volumes / total
        points: list[np.ndarray] = []
        trials = 0
        limit = max(50, 20 * count * len(self.members))
        while len(points) < count and trials < limit:
            trials += 1
            index = int(rng.choice(len(self.members), p=weights))
            try:
                point = self.members[index].generate(rng)
            except GenerationFailure:
                continue
            if self.membership_index(point) == index:
                points.append(point)
        if len(points) < count:
            raise GenerationFailure("union generator exhausted its trial budget")
        return np.array(points), trials, len(points)

    # ------------------------------------------------------------------
    # Volume (Theorem 4.2 / Karp--Luby)
    # ------------------------------------------------------------------
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        rng = ensure_rng(rng)
        member_estimates = self.member_volumes(rng)
        volumes = np.array([estimate.value for estimate in member_estimates])
        total = float(volumes.sum())
        if total <= 0:
            return VolumeEstimate(0.0, epsilon, delta, "union-karp-luby", details={"members": 0})
        weights = volumes / total

        # The acceptance probability is at least 1/m, so the multiplicative
        # Chernoff schedule with p_min = 1/m gives a relative (1 ± ε/2) count.
        member_count = len(self.members)
        trials = chernoff_ratio_sample_size(
            epsilon / 2.0, delta / 2.0, probability_lower_bound=1.0 / member_count
        )
        trials = min(trials, self.max_volume_trials)
        # Trials are stratified per member (multinomial allocation by weight),
        # which is statistically equivalent to drawing the member index trial
        # by trial but lets each member produce its points in one batch.
        allocation = rng.multinomial(trials, weights)
        accepted = 0
        samples_used = 0
        with current_tracer().span(
            "union-acceptance", members=member_count
        ) as span:
            for index, member_trials in enumerate(allocation):
                if member_trials == 0:
                    continue
                points = self.members[index].generate_many(int(member_trials), rng)
                samples_used += points.shape[0]
                for point in points:
                    if self.membership_index(point) == index:
                        accepted += 1
            acceptance = accepted / trials if trials else 0.0
            span.annotate(trials=int(trials), accepted=accepted, acceptance=acceptance)
        value = total * acceptance
        return VolumeEstimate(
            value=value,
            epsilon=epsilon,
            delta=delta,
            method="union-karp-luby",
            samples_used=samples_used,
            details={
                "member_volumes": [estimate.value for estimate in member_estimates],
                "acceptance": acceptance,
                "trials": trials,
            },
        )


def union_observable(
    members: Sequence[ObservableRelation], params: GeneratorParams | None = None
) -> UnionObservable:
    """Corollary 4.2: the union of observable relations is observable."""
    return UnionObservable(members, params=params)
