"""Poly-relatedness of relations (Definition 2.1).

Two sequences of relations are *polynomially related* when the ratio of their
volumes is bounded by ``d^k`` for some constant ``k``.  The paper uses this
notion as the sufficient condition under which intersections and differences
of observable relations stay observable (Propositions 4.1 and 4.2): sampling
in the smaller set by rejection from the bigger one succeeds after polynomially
many trials exactly when the two are poly-related.

Since an implementation works with concrete relations (one dimension at a
time) rather than with asymptotic sequences, the predicate below takes the
claimed exponent ``k`` explicitly and checks ``max(ratio) <= d^k``; the
composition operators expose the same exponent as a *budget* so that a
violated condition surfaces as an explicit failure instead of an endless loop.
"""

from __future__ import annotations

from repro.core.observable import GenerationFailure


class PolyRelatednessError(GenerationFailure):
    """Raised when a rejection-based generator detects a violated poly-relatedness condition.

    It is a :class:`GenerationFailure` (the δ-probability "stop and abandon"
    event of Definition 2.2) carrying the semantic reason: the rejection
    budget implied by the assumed poly-relatedness exponent was exhausted.
    """


def volume_ratio(volume_a: float, volume_b: float) -> float:
    """The symmetric ratio ``max(a/b, b/a)`` of two positive volumes."""
    if volume_a <= 0 or volume_b <= 0:
        return float("inf")
    return max(volume_a / volume_b, volume_b / volume_a)


def poly_related(
    volume_a: float, volume_b: float, dimension: int, exponent: float = 2.0
) -> bool:
    """Is the volume ratio bounded by ``dimension ** exponent``?

    ``exponent`` plays the role of the constant ``k`` of Definition 2.1; the
    default of 2 is the budget used by the composition operators unless the
    caller overrides it.
    """
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    bound = float(max(dimension, 2)) ** exponent
    return volume_ratio(volume_a, volume_b) <= bound


def rejection_budget(dimension: int, exponent: float, delta: float) -> int:
    """Number of rejection trials justified by a poly-relatedness assumption.

    If the target is poly-related to the proposal with exponent ``k``, each
    trial succeeds with probability at least ``d^-k``; ``ceil(d^k ln(1/δ))``
    trials then fail simultaneously with probability at most δ.
    """
    import math

    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    if not 0 < delta < 1:
        raise ValueError("delta must lie strictly between 0 and 1")
    base = float(max(dimension, 2)) ** exponent
    return max(1, math.ceil(base * math.log(1.0 / delta)))
