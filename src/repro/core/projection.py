"""Projection of a convex observable relation (Theorem 4.3, Algorithm 2).

Projecting uniform samples of a convex set ``S ⊆ R^d`` onto a subset of the
coordinates does *not* produce uniform samples of the projection ``T``: a
point of ``T`` with a tall fibre (the "cylinder" ``H_S(y)`` of the paper's
Fig. 1) receives proportionally more mass.  Algorithm 2 corrects this with a
rejection step whose acceptance probability is inversely proportional to the
fibre volume:

1. generate ``x`` almost uniformly in ``S``;
2. let ``y`` be the projection of ``x`` on the kept coordinates;
3. estimate the fibre volume ``ĥ = vol(H_S(y))``;
4. accept ``y`` with probability proportional to ``1 / ĥ``.

The accepted ``y`` is then almost uniform on ``T``, and the acceptance
frequency yields the projection's volume:

    P[accept] = E_{x ~ U(S)}[ c / h(y(x)) ] = c · vol(T) / vol(S),

so ``vol(T) = vol(S) · P[accept] / c`` where ``c`` is the proportionality
constant of step 4.

Normalisation note.  The paper works on a γ-grid, where every non-empty fibre
contains at least one grid point, so ``1/ĥ`` is a genuine probability.  In the
continuous setting fibres near the boundary of ``T`` can be arbitrarily thin;
the implementation therefore calibrates ``c`` on a pilot batch of samples
(``c = min ĥ`` over the pilot) and clips the acceptance probability at 1 for
fibres thinner than ``c``.  The clipped fibres form a boundary strip of ``T``
whose y-measure is the probability that a uniform sample of ``S`` lands in a
fibre thinner than the pilot minimum — a quantity that shrinks with the pilot
size and is folded into the γ discretisation error (documented deviation,
measured in experiment E1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.convex import ConvexObservable
from repro.core.observable import GenerationFailure, GeneratorParams, ObservableRelation
from repro.geometry.polytope import HPolytope
from repro.geometry.volume import polytope_volume
from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate
from repro.volume.chernoff import chernoff_ratio_sample_size
from repro.volume.telescoping import TelescopingConfig, TelescopingVolumeEstimator


class ProjectionObservable(ObservableRelation):
    """Observable projection of a convex observable relation.

    Parameters
    ----------
    source:
        The convex observable relation ``S`` being projected.
    keep:
        Indices (relative to the source's coordinate order) or variable names
        of the coordinates to keep.
    params:
        Accuracy parameters of the composed generator.
    pilot_size:
        Number of source samples used to calibrate the acceptance constant.
    exact_fibre_dimension:
        Fibre volumes are computed exactly (vertex enumeration) when the
        number of eliminated coordinates does not exceed this threshold, and
        estimated with the telescoping estimator otherwise.
    """

    def __init__(
        self,
        source: ConvexObservable,
        keep: Sequence[int] | Sequence[str],
        params: GeneratorParams | None = None,
        pilot_size: int = 200,
        exact_fibre_dimension: int = 4,
        max_volume_trials: int = 20_000,
    ) -> None:
        self.source = source
        self.params = params if params is not None else GeneratorParams()
        self.pilot_size = int(pilot_size)
        self.exact_fibre_dimension = int(exact_fibre_dimension)
        self.max_volume_trials = int(max_volume_trials)
        self.keep_indices = _resolve_indices(source, keep)
        if not self.keep_indices:
            raise ValueError("projection must keep at least one coordinate")
        all_indices = set(range(source.dimension))
        self.eliminated_indices = tuple(sorted(all_indices - set(self.keep_indices)))
        if not self.eliminated_indices:
            raise ValueError("projection must eliminate at least one coordinate")
        self._acceptance_constant: float | None = None
        self._pilot_acceptance: float | None = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return len(self.keep_indices)

    def contains(self, point: np.ndarray) -> bool:
        """Membership in the projection: is the fibre above the point non-empty?

        Decided by an LP feasibility test on the fibre polytope — still
        polynomial in the description size, no quantifier elimination needed.
        """
        fibre = self.fibre_polytope(np.asarray(point, dtype=float))
        return not fibre.is_empty()

    def description_size(self) -> int:
        return self.source.description_size()

    def warm(self) -> "ProjectionObservable":
        self.source.warm()
        return self

    # ------------------------------------------------------------------
    # Fibres (the cylinders H_S(y) of the paper)
    # ------------------------------------------------------------------
    def fibre_polytope(self, y: np.ndarray) -> HPolytope:
        """The fibre ``H_S(y)`` as a polytope in the eliminated coordinates."""
        a = self.source.polytope.a
        b = self.source.polytope.b
        keep = list(self.keep_indices)
        eliminated = list(self.eliminated_indices)
        a_keep = a[:, keep]
        a_elim = a[:, eliminated]
        new_b = b - a_keep @ np.asarray(y, dtype=float)
        return HPolytope(a_elim, new_b)

    def fibre_volume(self, y: np.ndarray, rng: np.random.Generator | int | None = None) -> float:
        """Volume of the fibre above ``y`` (exact in low fibre dimension)."""
        fibre = self.fibre_polytope(y)
        fibre_dimension = len(self.eliminated_indices)
        if fibre_dimension == 1:
            return _interval_length(fibre)
        if fibre_dimension <= self.exact_fibre_dimension:
            return polytope_volume(fibre)
        if fibre.is_empty():
            return 0.0
        estimator = TelescopingVolumeEstimator(
            fibre, config=TelescopingConfig(samples_per_phase=400)
        )
        try:
            return estimator.estimate(self.params.epsilon / 3.0, 0.1, rng=rng).value
        except Exception:
            return 0.0

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _calibrate(self, rng: np.random.Generator) -> tuple[float, float]:
        """Pilot run: acceptance constant ``c`` and expected acceptance probability."""
        if self._acceptance_constant is not None and self._pilot_acceptance is not None:
            return self._acceptance_constant, self._pilot_acceptance
        pilot = self.source.generate_many(self.pilot_size, rng)
        volumes = []
        for x in pilot:
            y = x[list(self.keep_indices)]
            volume = self.fibre_volume(y, rng)
            if volume > 0:
                volumes.append(volume)
        if not volumes:
            raise GenerationFailure("pilot run found no fibre with positive volume")
        constant = float(min(volumes))
        acceptance = float(np.mean([min(1.0, constant / volume) for volume in volumes]))
        self._acceptance_constant = constant
        self._pilot_acceptance = max(acceptance, 1e-6)
        return self._acceptance_constant, self._pilot_acceptance

    # ------------------------------------------------------------------
    # Generation (Algorithm 2)
    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        constant, pilot_acceptance = self._calibrate(rng)
        budget = max(50, int(np.ceil(np.log(1.0 / self.params.delta) / pilot_acceptance)))
        keep = list(self.keep_indices)
        for _ in range(budget):
            try:
                x = self.source.generate(rng)
            except GenerationFailure:
                continue
            y = x[keep]
            volume = self.fibre_volume(y, rng)
            if volume <= 0:
                continue
            if rng.random() <= min(1.0, constant / volume):
                return y
        raise GenerationFailure(
            f"projection generator failed {budget} consecutive trials (δ = {self.params.delta})"
        )

    def acceptance_statistics(
        self, trials: int, rng: np.random.Generator | int | None = None
    ) -> tuple[int, int, float]:
        """Run ``trials`` trials; return ``(accepted, performed, constant)``."""
        rng = ensure_rng(rng)
        constant, _ = self._calibrate(rng)
        keep = list(self.keep_indices)
        samples = self.source.generate_many(trials, rng)
        accepted = 0
        for x in samples:
            y = x[keep]
            volume = self.fibre_volume(y, rng)
            if volume <= 0:
                continue
            if rng.random() <= min(1.0, constant / volume):
                accepted += 1
        return accepted, samples.shape[0], constant

    # ------------------------------------------------------------------
    # Volume (Theorem 4.3)
    # ------------------------------------------------------------------
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        rng = ensure_rng(rng)
        constant, pilot_acceptance = self._calibrate(rng)
        source_volume = self.source.estimate_volume(epsilon / 3.0, delta / 2.0, rng=rng)
        trials = chernoff_ratio_sample_size(
            epsilon / 2.0, delta / 2.0, probability_lower_bound=pilot_acceptance
        )
        trials = min(trials, self.max_volume_trials)
        accepted, performed, constant = self.acceptance_statistics(trials, rng)
        if accepted == 0:
            raise GenerationFailure(
                f"projection volume estimation accepted no point in {performed} trials"
            )
        acceptance = accepted / performed
        value = source_volume.value * acceptance / constant
        return VolumeEstimate(
            value=value,
            epsilon=epsilon,
            delta=delta,
            method="projection-fibre-rejection",
            samples_used=performed,
            details={
                "source_volume": source_volume.value,
                "acceptance": acceptance,
                "acceptance_constant": constant,
                "trials": performed,
            },
        )


def projection_observable(
    source: ConvexObservable,
    keep: Sequence[int] | Sequence[str],
    params: GeneratorParams | None = None,
) -> ProjectionObservable:
    """Theorem 4.3: the projection of a convex observable relation is observable."""
    return ProjectionObservable(source, keep, params=params)


def naive_projection_samples(
    source: ConvexObservable,
    keep: Sequence[int] | Sequence[str],
    count: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """The *incorrect* baseline of Fig. 1: project uniform samples of ``S`` directly.

    Used by experiment E1 to demonstrate the non-uniformity that Algorithm 2's
    fibre rejection removes.
    """
    indices = _resolve_indices(source, keep)
    samples = source.generate_many(count, rng)
    return samples[:, list(indices)]


def _interval_length(fibre: HPolytope) -> float:
    """Length of a one-dimensional fibre, computed directly from its constraints.

    A 1-D fibre is the interval ``{z : a_i z <= b_i}``; the closed form avoids
    one LP feasibility check and one vertex enumeration per fibre, which is
    the hot path of Algorithm 2 when a single coordinate is projected away.
    """
    a = fibre.a[:, 0]
    b = fibre.b
    lower = -np.inf
    upper = np.inf
    positive = a > 1e-14
    negative = a < -1e-14
    zero = ~positive & ~negative
    if np.any(b[zero] < -1e-12):
        return 0.0
    if np.any(positive):
        upper = float(np.min(b[positive] / a[positive]))
    if np.any(negative):
        lower = float(np.max(b[negative] / a[negative]))
    if not np.isfinite(lower) or not np.isfinite(upper):
        raise ValueError("one-dimensional fibre is unbounded")
    return max(0.0, upper - lower)


def _resolve_indices(
    source: ConvexObservable, keep: Sequence[int] | Sequence[str]
) -> tuple[int, ...]:
    """Translate kept coordinates given as names or indices into indices."""
    keep = list(keep)
    if not keep:
        return ()
    if all(isinstance(item, str) for item in keep):
        names = source.polytope.names
        if names is None and source.generalized_tuple is not None:
            names = source.generalized_tuple.variables
        if names is None:
            raise ValueError("source has no variable names; pass indices instead")
        missing = [name for name in keep if name not in names]
        if missing:
            raise ValueError(f"unknown variables {missing}")
        return tuple(names.index(name) for name in keep)
    indices = tuple(int(item) for item in keep)
    for index in indices:
        if not 0 <= index < source.dimension:
            raise ValueError(f"coordinate index {index} out of range")
    if len(set(indices)) != len(indices):
        raise ValueError("duplicate coordinate indices")
    return indices
