"""The paper's contribution: observability and its closure properties.

This package implements the notions and algorithms of Sections 2--5 of the
paper: (γ, ε, δ)-generators and (ε, δ)-volume estimators (observability), the
DFK convex case, the fixed-dimension case, closure under union / intersection
/ difference / projection, convex-hull reconstruction of relations and of
positive existential queries, and the extension to polynomial constraints.
"""

from repro.core.convex import ConvexObservable, convex_observable_from_tuple
from repro.core.difference import DifferenceObservable, difference_observable
from repro.core.fixed_dimension import FixedDimensionObservable
from repro.core.intersection import IntersectionObservable, intersection_observable
from repro.core.observable import (
    GenerationFailure,
    GeneratorParams,
    ObservableRelation,
)
from repro.core.poly_related import (
    PolyRelatednessError,
    poly_related,
    rejection_budget,
    volume_ratio,
)
from repro.core.polynomial import PolynomialBody, ball_body, ellipsoid_body
from repro.core.projection import (
    ProjectionObservable,
    naive_projection_samples,
    projection_observable,
)
from repro.core.query_reconstruction import (
    ConjunctiveComponent,
    PositiveExistentialQuery,
    RelationAtom,
    component_conjunction,
    reconstruct_positive_existential,
)
from repro.core.reconstruction import (
    ConvexHullEstimator,
    RelationEstimate,
    relation_membership,
    sample_count_affentranger_wieacker,
    symmetric_difference_volume,
    tuple_membership,
)
from repro.core.union import UnionObservable, union_observable

__all__ = [
    "ConvexObservable",
    "convex_observable_from_tuple",
    "DifferenceObservable",
    "difference_observable",
    "FixedDimensionObservable",
    "IntersectionObservable",
    "intersection_observable",
    "GenerationFailure",
    "GeneratorParams",
    "ObservableRelation",
    "PolyRelatednessError",
    "poly_related",
    "rejection_budget",
    "volume_ratio",
    "PolynomialBody",
    "ball_body",
    "ellipsoid_body",
    "ProjectionObservable",
    "naive_projection_samples",
    "projection_observable",
    "ConjunctiveComponent",
    "PositiveExistentialQuery",
    "RelationAtom",
    "component_conjunction",
    "reconstruct_positive_existential",
    "ConvexHullEstimator",
    "RelationEstimate",
    "relation_membership",
    "sample_count_affentranger_wieacker",
    "symmetric_difference_volume",
    "tuple_membership",
    "UnionObservable",
    "union_observable",
]
