"""Set reconstruction from samples (Section 4.3.1, Lemma 4.1, Definition 4.1).

Beyond volumes, the paper approximates the *shape* of a definable set: an
(ε, δ)-relation-estimator (Definition 4.1) outputs the description of a
relation ``Ŝ`` whose symmetric difference with ``S`` has volume at most
``ε · vol(S)``, with failure probability at most δ, using only point
membership queries.

For a convex polytope the estimator is the convex hull of ``N`` almost
uniform samples; the Affentranger--Wieacker bound quantifies how fast the
missing volume shrinks with ``N``, and Lemma 4.1 turns it into an explicit
sample count ``N(ε, δ, d, r)``.  The reconstruction of general positive
existential queries (Algorithms 4--5) builds one hull per conjunctive
component and returns their union; it lives in
:mod:`repro.core.query_reconstruction`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.core.observable import ObservableRelation
from repro.geometry.hull import HullResult, convex_hull
from repro.sampling.rejection import sample_box
from repro.sampling.rng import ensure_rng


def sample_count_affentranger_wieacker(
    epsilon: float,
    delta: float,
    dimension: int,
    vertex_count: int,
) -> int:
    """The sample count of Lemma 4.1.

    The lemma takes ``N = 4 r² d² / (d^{2(d-2)} ε²)`` samples per repetition
    (so that the expected missing volume is at most ``ε μ_S / 2``) and
    ``t = (1/ε²) ln(1/δ)`` repetitions, whose union of samples feeds a single
    convex hull.  The function returns the total ``N · t`` so callers can draw
    all samples at once; it is clamped below by a small dimension-dependent
    minimum so degenerate parameter choices still produce a full-dimensional
    hull.
    """
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie strictly between 0 and 1")
    if not 0 < delta < 1:
        raise ValueError("delta must lie strictly between 0 and 1")
    if dimension < 1:
        raise ValueError("dimension must be at least 1")
    if vertex_count < dimension + 1:
        vertex_count = dimension + 1
    per_round = 4.0 * vertex_count**2 * dimension**2
    per_round /= float(max(dimension, 2)) ** (2 * (dimension - 2)) * epsilon**2
    rounds = math.ceil(math.log(1.0 / delta) / epsilon**2)
    total = int(math.ceil(per_round)) * max(rounds, 1)
    return max(total, 10 * dimension)


@dataclass
class RelationEstimate:
    """The output of a relation estimator (Definition 4.1).

    Attributes
    ----------
    relation:
        The reconstructed relation, as a symbolic DNF over the original
        variable names (one disjunct per convex hull).
    hulls:
        The individual hull results (one per conjunctive component).
    samples_used:
        Total number of generated points consumed.
    details:
        Free-form metadata (per-component counts, hull volumes, ...).
    """

    relation: GeneralizedRelation
    hulls: list[HullResult]
    samples_used: int
    details: dict = field(default_factory=dict)

    def contains(self, point: np.ndarray) -> bool:
        """Membership in the reconstructed set."""
        return any(hull.contains(point) for hull in self.hulls if not hull.is_degenerate) or (
            self.relation.contains_point([float(v) for v in point])
            if not self.relation.is_syntactically_empty()
            else False
        )

    @property
    def total_hull_volume(self) -> float:
        """Sum of the component hull volumes (an upper bound proxy, ignores overlaps)."""
        return sum(hull.volume for hull in self.hulls)


class ConvexHullEstimator:
    """(ε, δ)-relation estimator for a convex observable relation (Lemma 4.1).

    Parameters
    ----------
    source:
        The observable relation to reconstruct; it must be convex for the
        Affentranger--Wieacker bound to apply (the estimator never checks
        convexity, exactly like the paper).
    variables:
        Variable names of the output relation (defaults to ``x1 .. xd``).
    """

    def __init__(
        self,
        source: ObservableRelation,
        variables: Sequence[str] | None = None,
    ) -> None:
        self.source = source
        if variables is None:
            variables = tuple(f"x{index + 1}" for index in range(source.dimension))
        self.variables = tuple(variables)
        if len(self.variables) != source.dimension:
            raise ValueError("one variable name per coordinate is required")

    def estimate(
        self,
        epsilon: float,
        delta: float,
        rng: np.random.Generator | int | None = None,
        vertex_count: int | None = None,
        sample_count: int | None = None,
        max_samples: int = 20_000,
    ) -> RelationEstimate:
        """Reconstruct the relation from uniform samples.

        ``sample_count`` overrides the Lemma 4.1 schedule (useful for the E8
        convergence sweep); otherwise the schedule is used, capped at
        ``max_samples`` to keep laptop-scale runs bounded.
        """
        rng = ensure_rng(rng)
        dimension = self.source.dimension
        if sample_count is None:
            estimated_vertices = vertex_count if vertex_count is not None else 2 * dimension
            sample_count = sample_count_affentranger_wieacker(
                epsilon, delta, dimension, estimated_vertices
            )
            sample_count = min(sample_count, max_samples)
        points = self.source.generate_many(sample_count, rng)
        hull = convex_hull(points)
        relation = _hull_to_relation(hull, self.variables)
        return RelationEstimate(
            relation=relation,
            hulls=[hull],
            samples_used=sample_count,
            details={
                "hull_volume": hull.volume,
                "hull_vertices": hull.num_vertices,
                "epsilon": epsilon,
                "delta": delta,
            },
        )


def _hull_to_relation(hull: HullResult, variables: Sequence[str]) -> GeneralizedRelation:
    """Convert a hull into a one-disjunct symbolic relation (empty when degenerate)."""
    variables = tuple(variables)
    if hull.polytope is None:
        return GeneralizedRelation.empty(variables)
    tuple_ = hull.polytope.to_generalized_tuple(variables)
    return GeneralizedRelation.from_tuple(tuple_)


def symmetric_difference_volume(
    first: Callable[[np.ndarray], bool],
    second: Callable[[np.ndarray], bool],
    bounds: list[tuple[float, float]],
    samples: int,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte-Carlo estimate of ``vol(A Δ B)`` inside a common bounding box.

    Both sets are given through membership predicates; the estimate is
    ``box_volume × fraction of box samples belonging to exactly one set``.
    This is the measurement tool used by the tests and by experiments E8 and
    E12 to check Definition 4.1's guarantee against a known reference set.
    """
    rng = ensure_rng(rng)
    box_volume = 1.0
    for lower, upper in bounds:
        box_volume *= max(upper - lower, 0.0)
    if box_volume == 0.0 or samples <= 0:
        return 0.0
    points = sample_box(rng, bounds, samples)
    mismatches = 0
    for point in points:
        if bool(first(point)) != bool(second(point)):
            mismatches += 1
    return box_volume * mismatches / samples


def relation_membership(relation: GeneralizedRelation) -> Callable[[np.ndarray], bool]:
    """Adapter: membership predicate of a symbolic relation (for the helper above)."""

    def predicate(point: np.ndarray) -> bool:
        return relation.contains_point([float(v) for v in point])

    return predicate


def tuple_membership(tuple_: GeneralizedTuple) -> Callable[[np.ndarray], bool]:
    """Adapter: membership predicate of a generalized tuple."""

    def predicate(point: np.ndarray) -> bool:
        return tuple_.contains_point([float(v) for v in point])

    return predicate
