"""Reconstruction of positive existential queries (Algorithms 4--5, Theorem 4.4).

A positive existential query is equivalent to a disjunction ``∨_i φ_i`` where
each ``φ_i`` is built from relation atoms by conjunction and existential
quantification.  Algorithm 5 approximates the query result *geometrically*:

1. for every ``φ_i``, obtain an almost uniform generator for the set it
   defines (combining the generators for intersection and projection);
2. generate ``N`` points with it and take their convex hull ``D_i``;
3. return the union of the ``D_i``.

Theorem 4.4 states that when every ``φ_i`` has a uniform generator the union
of hulls is an (ε, δ)-estimator of the query result in the sense of
Definition 4.1.

Implementation note (documented deviation).  Over linear constraints the
conjunction of the relation atoms of a component is itself a generalized
tuple, so its DFK generator is available directly; the implementation uses it
(through :class:`~repro.core.convex.ConvexObservable`) and reserves the
rejection-based :class:`~repro.core.intersection.IntersectionObservable` for
members that are only reachable through membership oracles (polynomial
bodies, projections).  Both routes produce almost uniform points of the same
set, which is all Algorithm 5 requires; the rejection route is exercised
separately in experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.core.convex import ConvexObservable
from repro.core.observable import GenerationFailure, GeneratorParams
from repro.core.projection import ProjectionObservable
from repro.core.reconstruction import RelationEstimate, _hull_to_relation
from repro.geometry.hull import convex_hull
from repro.sampling.rng import ensure_rng


@dataclass(frozen=True)
class RelationAtom:
    """One relation atom ``R(v_1, ..., v_k)`` of a conjunctive component."""

    name: str
    arguments: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.arguments)) != len(self.arguments):
            raise ValueError(
                f"atom {self.name} repeats a variable; introduce an explicit equality instead"
            )


@dataclass(frozen=True)
class ConjunctiveComponent:
    """A conjunction of relation atoms with some variables projected away.

    ``output_variables`` are the free variables of the component (the columns
    of the query answer); every other variable occurring in the atoms is
    existentially quantified.
    """

    atoms: tuple[RelationAtom, ...]
    output_variables: tuple[str, ...]

    def all_variables(self) -> tuple[str, ...]:
        """Output variables first, then the quantified ones in order of appearance."""
        ordered = list(self.output_variables)
        for atom in self.atoms:
            for name in atom.arguments:
                if name not in ordered:
                    ordered.append(name)
        return tuple(ordered)

    def quantified_variables(self) -> tuple[str, ...]:
        """The existentially quantified variables of the component."""
        return tuple(
            name for name in self.all_variables() if name not in set(self.output_variables)
        )


@dataclass
class PositiveExistentialQuery:
    """A query in the normal form of Algorithm 5: a disjunction of components."""

    components: tuple[ConjunctiveComponent, ...]
    output_variables: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.components:
            raise ValueError("a query needs at least one conjunctive component")
        if not self.output_variables:
            self.output_variables = self.components[0].output_variables
        for component in self.components:
            if set(component.output_variables) != set(self.output_variables):
                raise ValueError("all components must share the same output variables")


def component_conjunction(
    database: ConstraintDatabase, component: ConjunctiveComponent
) -> GeneralizedRelation:
    """The symbolic conjunction of a component's atoms over its full variable set."""
    order = component.all_variables()
    result = GeneralizedRelation.universe(order)
    for atom in component.atoms:
        instance = database.relation(atom.name)
        schema_attributes = database.schema[atom.name].attributes
        if len(schema_attributes) != len(atom.arguments):
            raise ValueError(
                f"atom {atom.name}{atom.arguments} has {len(atom.arguments)} arguments, "
                f"schema declares {len(schema_attributes)}"
            )
        renamed = instance.rename(dict(zip(schema_attributes, atom.arguments)))
        result = result.intersection(renamed.with_variables(order)).with_variables(order)
    return result.simplify()


def reconstruct_positive_existential(
    database: ConstraintDatabase,
    query: PositiveExistentialQuery,
    params: GeneratorParams | None = None,
    samples_per_component: int = 400,
    rng: np.random.Generator | int | None = None,
) -> RelationEstimate:
    """Algorithm 5: approximate the query result as a union of convex hulls.

    Parameters
    ----------
    database:
        The constraint database providing the relation instances.
    query:
        The positive existential query in component normal form.
    params:
        Accuracy parameters forwarded to the per-component generators.
    samples_per_component:
        Number of uniform points hulled per component disjunct (the ``N`` of
        Lemma 4.1; the benchmarks sweep it).
    """
    rng = ensure_rng(rng)
    params = params if params is not None else GeneratorParams()
    hulls = []
    disjunct_relations: list[GeneralizedRelation] = []
    samples_used = 0
    component_details = []
    for component in query.components:
        conjunction = component_conjunction(database, component)
        quantified = component.quantified_variables()
        for disjunct in conjunction.disjuncts:
            points, used = _sample_component_disjunct(
                disjunct, component, quantified, params, samples_per_component, rng
            )
            samples_used += used
            if points.shape[0] == 0:
                continue
            hull = convex_hull(points)
            hulls.append(hull)
            disjunct_relations.append(_hull_to_relation(hull, query.output_variables))
            component_details.append(
                {
                    "atoms": [atom.name for atom in component.atoms],
                    "hull_volume": hull.volume,
                    "hull_vertices": hull.num_vertices,
                    "samples": int(points.shape[0]),
                }
            )
    if disjunct_relations:
        relation = disjunct_relations[0]
        for other in disjunct_relations[1:]:
            relation = relation.union(other)
        relation = relation.with_variables(query.output_variables)
    else:
        relation = GeneralizedRelation.empty(query.output_variables)
    return RelationEstimate(
        relation=relation,
        hulls=hulls,
        samples_used=samples_used,
        details={"components": component_details},
    )


def _sample_component_disjunct(
    disjunct: GeneralizedTuple,
    component: ConjunctiveComponent,
    quantified: Sequence[str],
    params: GeneratorParams,
    samples: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, int]:
    """Uniform samples of one convex disjunct, projected onto the output variables."""
    if disjunct.is_syntactically_empty():
        return np.zeros((0, len(component.output_variables))), 0
    source = ConvexObservable(disjunct, params=params, sampler="hit_and_run")
    if source.polytope.is_empty():
        return np.zeros((0, len(component.output_variables))), 0
    if not source.is_well_bounded():
        return np.zeros((0, len(component.output_variables))), 0
    try:
        if quantified:
            projector = ProjectionObservable(
                source, keep=tuple(component.output_variables), params=params
            )
            points = projector.generate_many(samples, rng)
        else:
            points = source.generate_many(samples, rng)
            order = disjunct.variables
            indices = [order.index(name) for name in component.output_variables]
            points = points[:, indices]
    except GenerationFailure:
        return np.zeros((0, len(component.output_variables))), 0
    return points, int(points.shape[0])
