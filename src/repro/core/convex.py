"""Observable convex relations (the Dyer--Frieze--Kannan theorem).

A generalized tuple over linear constraints defines a convex set; when that
set is well-bounded, the DFK result makes it observable: the lattice random
walk on a γ-grid of the well-rounded image is an almost uniform generator, and
the telescoping product of ratios yields an (ε, δ)-volume estimator.

:class:`ConvexObservable` packages that machinery behind the
:class:`~repro.core.observable.ObservableRelation` interface.  Generation
happens in the *rounded* space (where the grid step and walk schedule are
meaningful) and samples are pulled back through the inverse affine map, which
preserves uniformity because affine maps rescale all volumes by the same
determinant.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.constraints.tuples import GeneralizedTuple
from repro.core.observable import GenerationFailure, GeneratorParams, ObservableRelation
from repro.geometry.polytope import HPolytope
from repro.geometry.rounding import RoundedBody, RoundingError, round_by_chebyshev, round_by_covariance
from repro.sampling.grid_walk import GridWalkConfig, GridWalkSampler
from repro.sampling.hit_and_run import HitAndRunSampler
from repro.sampling.oracles import oracle_from_polytope
from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate
from repro.volume.telescoping import TelescopingConfig, TelescopingVolumeEstimator

SamplerName = Literal["hit_and_run", "grid_walk"]


class ConvexObservable(ObservableRelation):
    """An observable well-bounded convex relation.

    Parameters
    ----------
    source:
        A symbolic :class:`GeneralizedTuple` or a numeric :class:`HPolytope`.
    params:
        Accuracy parameters (γ, ε, δ) of the generator.
    sampler:
        ``"grid_walk"`` for the paper-faithful DFK lattice walk (default) or
        ``"hit_and_run"`` for the faster practical sampler.
    telescoping:
        Configuration of the volume estimator (sampler choice, rounding, ...).
    """

    def __init__(
        self,
        source: GeneralizedTuple | HPolytope,
        params: GeneratorParams | None = None,
        sampler: SamplerName = "grid_walk",
        telescoping: TelescopingConfig | None = None,
    ) -> None:
        if isinstance(source, GeneralizedTuple):
            self.generalized_tuple: GeneralizedTuple | None = source
            self.polytope = HPolytope.from_generalized_tuple(source)
        elif isinstance(source, HPolytope):
            self.generalized_tuple = None
            self.polytope = source
        else:
            raise TypeError("source must be a GeneralizedTuple or an HPolytope")
        self.params = params if params is not None else GeneratorParams()
        self.sampler_name = sampler
        self.telescoping_config = (
            telescoping if telescoping is not None else TelescopingConfig()
        )
        self._rounded: RoundedBody | None = None
        self._grid_sampler: GridWalkSampler | None = None
        self._hit_and_run: HitAndRunSampler | None = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.polytope.dimension

    def contains(self, point: np.ndarray) -> bool:
        # Membership is tested on the (closed) numeric polytope with a small
        # tolerance: the closure differs from the symbolic set only on a
        # measure-zero boundary, and the tolerance absorbs the floating point
        # error introduced when grid samples are pulled back through the
        # rounding transform.
        return self.polytope.contains(point, tolerance=1e-7)

    def description_size(self) -> int:
        if self.generalized_tuple is not None:
            return self.generalized_tuple.description_size()
        return max(self.polytope.num_constraints * (self.dimension + 1), 1)

    def is_well_bounded(self) -> bool:
        """Does the relation admit inner and enclosing balls of positive radius?"""
        return self.polytope.well_bounded_radii() is not None

    # ------------------------------------------------------------------
    # Rounding and samplers (lazily constructed and cached)
    # ------------------------------------------------------------------
    def rounded(self) -> RoundedBody:
        """The well-rounded image of the body (cached)."""
        if self._rounded is None:
            if self.telescoping_config.rounding == "covariance":
                self._rounded = round_by_covariance(self.polytope, ensure_rng(0))
            else:
                self._rounded = round_by_chebyshev(self.polytope)
        return self._rounded

    def _ensure_grid_sampler(self) -> GridWalkSampler:
        if self._grid_sampler is None:
            rounded = self.rounded()
            self._grid_sampler = GridWalkSampler(
                oracle_from_polytope(rounded.polytope),
                self.dimension,
                start=np.zeros(self.dimension),
                config=GridWalkConfig(gamma=self.params.gamma),
                scale=1.0,
            )
        return self._grid_sampler

    def _ensure_hit_and_run(self) -> HitAndRunSampler:
        if self._hit_and_run is None:
            self._hit_and_run = HitAndRunSampler(self.polytope)
        return self._hit_and_run

    def warm(self) -> "ConvexObservable":
        """Materialise the heavy deterministic caches before shipping.

        The batch executor's process backend pickles compiled plans into
        worker processes once per batch; warming first means the polytope's
        linear programs (Chebyshev ball, bounding box — the inputs of the
        estimator's rounding step) and the tuple's float constraint system
        are computed once in the parent and ride along in the pickle.
        Everything warmed here is deterministic, so a warmed and a cold copy
        produce bit-identical estimates.  Returns ``self`` for chaining.
        """
        self.polytope.warm()
        if self.generalized_tuple is not None:
            self.generalized_tuple.warm_float_system()
        return self

    def __getstate__(self) -> dict:
        """Pickle state: everything but the grid sampler.

        The lazily built grid-walk sampler closes over a membership oracle
        (a closure, which pickle rejects); it is dropped here and rebuilt
        deterministically from the rounded body on first use, so a pickled
        copy generates the same points as the original.
        """
        state = self.__dict__.copy()
        state["_grid_sampler"] = None
        return state

    @property
    def grid_step(self) -> float | None:
        """Grid step of the γ-grid in the rounded space (grid-walk sampler only)."""
        if self.sampler_name != "grid_walk":
            return None
        return self._ensure_grid_sampler().grid_step

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        try:
            if self.sampler_name == "hit_and_run":
                return self._ensure_hit_and_run().sample_one(rng)
            rounded = self.rounded()
            # The DFK generator outputs vertices of the γ-grid graph; they are
            # mapped back to the original space through the inverse rounding map.
            sample = self._ensure_grid_sampler().sample(rng, 1)[0]
            return rounded.transform.apply_inverse(sample)
        except (RoundingError, ValueError) as error:
            raise GenerationFailure(str(error)) from error

    def generate_many(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        try:
            if self.sampler_name == "hit_and_run":
                return self._ensure_hit_and_run().sample(rng, count)
            rounded = self.rounded()
            samples = self._ensure_grid_sampler().sample(rng, count)
            return rounded.transform.apply_inverse(samples)
        except (RoundingError, ValueError) as error:
            raise GenerationFailure(str(error)) from error

    # ------------------------------------------------------------------
    # Volume
    # ------------------------------------------------------------------
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        estimator = TelescopingVolumeEstimator(self.polytope, config=self.telescoping_config)
        return estimator.estimate(epsilon, delta, rng=rng)

    def __repr__(self) -> str:
        return (
            f"ConvexObservable(dim={self.dimension}, constraints="
            f"{self.polytope.num_constraints}, sampler={self.sampler_name!r})"
        )


def convex_observable_from_tuple(
    tuple_: GeneralizedTuple,
    params: GeneratorParams | None = None,
    sampler: SamplerName = "grid_walk",
) -> ConvexObservable:
    """Convenience constructor used by the query compiler and the workloads."""
    return ConvexObservable(tuple_, params=params, sampler=sampler)
