"""Observability: (γ, ε, δ)-generators and (ε, δ)-volume estimators.

Definition 2.2 of the paper calls a randomized algorithm a
*(γ, ε, δ)-generator* for a relation ``S`` when it

1. outputs points of a γ-grid of ``S`` with a distribution within a
   multiplicative ``(1 + ε)`` of uniform (conditioned on success),
2. fails with probability at most δ, and
3. runs in time polynomial in the description size of ``S``, the dimension,
   ``1/ε``, ``1/γ`` and ``ln(1/δ)``.

A relation with both a generator and an (ε, δ)-volume estimator is called
*observable*.  :class:`ObservableRelation` is the abstract interface every
composable building block of :mod:`repro.core` implements; the composition
operators (union, intersection, difference, projection) consume and produce
values of this type, mirroring the closure statements of Section 4.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate


class GenerationFailure(RuntimeError):
    """Raised when a generator exhausts its failure budget (probability δ event).

    The paper's generators are allowed to "stop and abandon" with probability
    at most δ; in code this materialises as an exception so callers never
    silently receive a non-uniform point.
    """


@dataclass(frozen=True)
class GeneratorParams:
    """The accuracy parameters (γ, ε, δ) of Definition 2.2.

    Attributes
    ----------
    gamma:
        Grid coarseness: ``|V| p^d`` must approximate the volume within
        ``1 + γ``.
    epsilon:
        Distribution quality: output probabilities lie within ``(1 + ε)`` of
        uniform.
    delta:
        Failure probability bound.
    """

    gamma: float = 0.2
    epsilon: float = 0.2
    delta: float = 0.1

    def __post_init__(self) -> None:
        for name in ("gamma", "epsilon", "delta"):
            value = getattr(self, name)
            if not 0 < value < 1:
                raise ValueError(f"{name} must lie strictly between 0 and 1, got {value}")

    def split(self, parts: int) -> "GeneratorParams":
        """Parameters for sub-generators so that ``parts`` compositions still meet ε.

        Follows the paper's Algorithm 1/2 bookkeeping (ε/3 per layer when
        three probabilistic quantities multiply): the ε budget is divided by
        ``parts`` and δ is kept (callers repeat to boost success separately).
        """
        if parts < 1:
            raise ValueError("parts must be at least 1")
        return GeneratorParams(self.gamma, self.epsilon / parts, self.delta)


class ObservableRelation(abc.ABC):
    """A relation equipped with an almost uniform generator and a volume estimator.

    The paper's central abstraction: anything observable supports
    :meth:`generate` (one almost uniform point), :meth:`generate_many` and
    :meth:`estimate_volume` under a ``(γ, ε, δ)`` contract, and the
    combinators (:class:`UnionObservable`, :class:`IntersectionObservable`,
    :class:`DifferenceObservable`, :class:`ProjectionObservable`) close the
    class under the logical operators.  Example::

        union = UnionObservable(members, params=GeneratorParams())
        points = union.generate_many(500, rng=42)
        estimate = union.estimate_volume(rng=42)
    """

    #: Accuracy parameters the relation was constructed with.
    params: GeneratorParams

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Ambient dimension of the relation."""

    @abc.abstractmethod
    def contains(self, point: np.ndarray) -> bool:
        """Membership oracle (linear in the description size)."""

    def description_size(self) -> int:
        """Size of the defining formula; subclasses override when known."""
        return 1

    def warm(self) -> "ObservableRelation":
        """Materialise deterministic caches before pickling/shipping.

        The service's process execution backend calls this once per batch so
        heavy immutable state (float constraint systems, polytope
        H-representation byproducts) is computed in the parent and shipped
        ready to use.  Implementations must only fill caches whose contents
        are deterministic — a warmed and a cold copy must stay bit-identical
        in behaviour.  The default is a no-op returning ``self``.
        """
        return self

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """Produce one almost uniformly distributed point of the relation.

        Raises :class:`GenerationFailure` with probability at most δ.
        """

    def generate_many(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Produce ``count`` points (independent invocations of :meth:`generate`).

        Failed invocations are retried; after ``10 * count`` consecutive
        failures a :class:`GenerationFailure` is raised, which for correctly
        parameterised generators is an astronomically unlikely event.
        """
        rng = ensure_rng(rng)
        points: list[np.ndarray] = []
        failures = 0
        while len(points) < count:
            try:
                points.append(self.generate(rng))
                failures = 0
            except GenerationFailure:
                failures += 1
                if failures > 10 * max(count, 1):
                    raise
        return np.array(points)

    # ------------------------------------------------------------------
    # Volume
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        """(ε, δ)-estimate of the d-dimensional volume of the relation."""

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def volume_value(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> float:
        """Shortcut returning only the estimated volume value."""
        return self.estimate_volume(epsilon, delta, rng=rng).value

    def _resolve_accuracy(
        self, epsilon: float | None, delta: float | None
    ) -> tuple[float, float]:
        """Fill missing accuracy parameters from the relation's own params."""
        return (
            self.params.epsilon if epsilon is None else epsilon,
            self.params.delta if delta is None else delta,
        )
