"""Convex bodies defined by polynomial constraints (Section 5).

The paper's concluding section observes that the Dyer--Frieze--Kannan
machinery only needs a *membership oracle*, which is just as easy to evaluate
for polynomial constraints as for linear ones, so convex bodies defined by
polynomial constraints (balls, ellipsoids, intersections of such) are
observable too; the composition operators then carry over unchanged because
they never inspect the members' syntax.

:class:`PolynomialBody` is the oracle-level counterpart of
:class:`~repro.core.convex.ConvexObservable`: generation uses the ball walk
(which needs nothing beyond the oracle), and the volume estimator telescopes
over cubes exactly as in the linear case, with the oracle standing in for the
H-representation.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.observable import GenerationFailure, GeneratorParams, ObservableRelation
from repro.geometry.ball import Ball
from repro.sampling.ball_walk import BallWalkSampler
from repro.sampling.oracles import CountingOracle, oracle_from_predicate
from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate
from repro.volume.chernoff import chernoff_ratio_sample_size


class PolynomialBody(ObservableRelation):
    """An observable convex body given only through a membership oracle.

    Parameters
    ----------
    predicate:
        Membership oracle, e.g. ``lambda x: x @ Q @ x <= 1`` for an ellipsoid.
        The body must be convex for the guarantees to hold — the class cannot
        check convexity and trusts the caller, as the paper does.
    dimension:
        Ambient dimension.
    inner_point:
        A point well inside the body (used to start the walk).
    inner_radius / outer_radius:
        Radii witnessing well-boundedness around ``inner_point`` (a ball of
        radius ``inner_radius`` centred there is inside the body; the body is
        inside the ball of radius ``outer_radius``).
    params:
        Accuracy parameters of the generator.
    """

    def __init__(
        self,
        predicate: Callable[[np.ndarray], bool],
        dimension: int,
        inner_point: Sequence[float],
        inner_radius: float,
        outer_radius: float,
        params: GeneratorParams | None = None,
        samples_per_phase: int = 2_000,
    ) -> None:
        if inner_radius <= 0 or outer_radius <= 0 or outer_radius < inner_radius:
            raise ValueError("radii must satisfy 0 < inner_radius <= outer_radius")
        self.oracle = CountingOracle(oracle_from_predicate(predicate))
        self._dimension = int(dimension)
        self.inner_point = np.asarray(inner_point, dtype=float)
        if not self.oracle(self.inner_point):
            raise ValueError("inner_point is not inside the body")
        self.inner_radius = float(inner_radius)
        self.outer_radius = float(outer_radius)
        self.params = params if params is not None else GeneratorParams()
        self.samples_per_phase = int(samples_per_phase)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._dimension

    def contains(self, point: np.ndarray) -> bool:
        return self.oracle(np.asarray(point, dtype=float))

    # ------------------------------------------------------------------
    def _walker(self) -> BallWalkSampler:
        return BallWalkSampler(
            self.oracle,
            self._dimension,
            start=self.inner_point,
            delta=self.inner_radius / np.sqrt(self._dimension),
        )

    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        try:
            return self._walker().sample_one(rng)
        except ValueError as error:
            raise GenerationFailure(str(error)) from error

    def generate_many(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        return self._walker().sample(rng, count)

    # ------------------------------------------------------------------
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        """Telescoping estimate over balls centred at ``inner_point``.

        ``K_i = body ∩ B(inner_point, r_i)`` with radii growing by ``2^{1/d}``
        from ``inner_radius`` (where ``K_0`` is the full ball, of known
        volume) to ``outer_radius`` (where ``K_q`` is the body itself).  The
        ratios are estimated with the ball walk on each intermediate body.
        """
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        rng = ensure_rng(rng)
        dimension = self._dimension
        radii = [self.inner_radius]
        growth = 2.0 ** (1.0 / dimension)
        while radii[-1] < self.outer_radius:
            radii.append(radii[-1] * growth)
        phases = len(radii) - 1
        per_phase = chernoff_ratio_sample_size(
            epsilon / max(2 * phases, 1), delta / max(phases, 1), probability_lower_bound=0.5
        )
        per_phase = min(per_phase, self.samples_per_phase)

        log_volume = np.log(Ball(self.inner_point, self.inner_radius).volume)
        ratios = []
        samples_used = 0
        for index in range(phases):
            inner_r = radii[index]
            outer_r = radii[index + 1]

            def outer_oracle(point: np.ndarray, _outer_r: float = outer_r) -> bool:
                inside_ball = float(np.linalg.norm(point - self.inner_point)) <= _outer_r
                return inside_ball and self.oracle(point)

            walker = BallWalkSampler(
                outer_oracle,
                dimension,
                start=self.inner_point,
                delta=self.inner_radius / np.sqrt(dimension),
            )
            samples = walker.sample(rng, per_phase)
            samples_used += samples.shape[0]
            distances = np.linalg.norm(samples - self.inner_point, axis=1)
            inside = int(np.sum(distances <= inner_r + 1e-12))
            fraction = max(inside / samples.shape[0], 1.0 / (2.0 * samples.shape[0]))
            ratios.append(fraction)
            log_volume -= np.log(fraction)

        return VolumeEstimate(
            value=float(np.exp(log_volume)),
            epsilon=epsilon,
            delta=delta,
            method="polynomial-ball-walk-telescoping",
            samples_used=samples_used,
            oracle_calls=self.oracle.calls,
            details={"phases": phases, "ratios": ratios, "samples_per_phase": per_phase},
        )


def ellipsoid_body(
    shape_matrix: np.ndarray,
    center: Sequence[float] | None = None,
    params: GeneratorParams | None = None,
) -> PolynomialBody:
    """The ellipsoid ``{x : (x - c)^T Q (x - c) <= 1}`` as an observable body.

    ``shape_matrix`` must be symmetric positive definite; its eigenvalues give
    the exact inner and outer radii used for well-boundedness.
    """
    shape_matrix = np.asarray(shape_matrix, dtype=float)
    dimension = shape_matrix.shape[0]
    if shape_matrix.shape != (dimension, dimension):
        raise ValueError("shape_matrix must be square")
    if center is None:
        center = np.zeros(dimension)
    center = np.asarray(center, dtype=float)
    eigenvalues = np.linalg.eigvalsh(shape_matrix)
    if np.any(eigenvalues <= 0):
        raise ValueError("shape_matrix must be positive definite")
    outer_radius = 1.0 / np.sqrt(eigenvalues.min() / 1.0) if eigenvalues.min() > 0 else np.inf
    inner_radius = 1.0 / np.sqrt(eigenvalues.max())

    def predicate(point: np.ndarray) -> bool:
        offset = point - center
        return float(offset @ shape_matrix @ offset) <= 1.0 + 1e-12

    return PolynomialBody(
        predicate,
        dimension,
        inner_point=center,
        inner_radius=float(inner_radius),
        outer_radius=float(outer_radius),
        params=params,
    )


def ball_body(
    radius: float, center: Sequence[float], params: GeneratorParams | None = None
) -> PolynomialBody:
    """A Euclidean ball as an observable polynomial-constraint body."""
    center = np.asarray(center, dtype=float)
    dimension = center.shape[0]

    def predicate(point: np.ndarray) -> bool:
        return float(np.linalg.norm(point - center)) <= radius + 1e-12

    return PolynomialBody(
        predicate,
        dimension,
        inner_point=center,
        inner_radius=float(radius),
        outer_radius=float(radius),
        params=params,
    )
