"""Difference of observable relations (Proposition 4.2).

``T = S_1 \\ S_2`` is sampled by generating points of ``S_1`` and keeping
those *not* in ``S_2``.  The accepted points are almost uniform on ``T``
(rejection preserves conditional uniformity), and the acceptance ratio gives
the volume ``vol(T) = vol(S_1) · P[accept]``.  The scheme is efficient exactly
when ``T`` is poly-related to ``S_1`` — when almost everything is removed the
acceptance probability collapses, which the generator reports through
:class:`PolyRelatednessError` instead of spinning (experiment E5).

Note that, unlike the symbolic difference of
:mod:`repro.constraints.algebra`, no DNF blow-up occurs: the generator only
needs membership in ``S_2``, never its complement's description.
"""

from __future__ import annotations

import numpy as np

from repro.core.observable import GenerationFailure, GeneratorParams, ObservableRelation
from repro.core.poly_related import PolyRelatednessError, rejection_budget
from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate
from repro.volume.chernoff import chernoff_ratio_sample_size


class DifferenceObservable(ObservableRelation):
    """Observable difference ``minuend \\ subtrahend`` (under poly-relatedness).

    Parameters
    ----------
    minuend:
        The observable relation points are drawn from (``S_1``).
    subtrahend:
        The observable relation whose points are rejected (``S_2``); only its
        membership oracle is used.
    params:
        Accuracy parameters of the composed generator.
    poly_exponent:
        Exponent ``k`` of the assumed poly-relatedness between the difference
        and the minuend (fixes the rejection budget).
    """

    def __init__(
        self,
        minuend: ObservableRelation,
        subtrahend: ObservableRelation,
        params: GeneratorParams | None = None,
        poly_exponent: float = 2.0,
        max_volume_trials: int = 20_000,
    ) -> None:
        if minuend.dimension != subtrahend.dimension:
            raise ValueError("minuend and subtrahend must share the ambient dimension")
        self.minuend = minuend
        self.subtrahend = subtrahend
        self.params = params if params is not None else GeneratorParams()
        self.poly_exponent = float(poly_exponent)
        self.max_volume_trials = int(max_volume_trials)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.minuend.dimension

    def contains(self, point: np.ndarray) -> bool:
        return self.minuend.contains(point) and not self.subtrahend.contains(point)

    def description_size(self) -> int:
        return self.minuend.description_size() + self.subtrahend.description_size()

    def warm(self) -> "DifferenceObservable":
        self.minuend.warm()
        self.subtrahend.warm()
        return self

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        budget = rejection_budget(self.dimension, self.poly_exponent, self.params.delta)
        for _ in range(budget):
            try:
                point = self.minuend.generate(rng)
            except GenerationFailure:
                continue
            if not self.subtrahend.contains(point):
                return point
        raise PolyRelatednessError(
            f"no difference point found in {budget} trials; the difference is not "
            f"poly-related to the minuend with exponent {self.poly_exponent}"
        )

    def acceptance_statistics(
        self, trials: int, rng: np.random.Generator | int | None = None
    ) -> tuple[int, int]:
        """Run ``trials`` rejection trials and return ``(accepted, performed)``."""
        rng = ensure_rng(rng)
        points = self.minuend.generate_many(trials, rng)
        accepted = sum(1 for point in points if not self.subtrahend.contains(point))
        return accepted, points.shape[0]

    # ------------------------------------------------------------------
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        rng = ensure_rng(rng)
        minuend_estimate = self.minuend.estimate_volume(epsilon / 3.0, delta / 2.0, rng=rng)
        if minuend_estimate.value <= 0:
            return VolumeEstimate(0.0, epsilon, delta, "difference-rejection")
        acceptance_floor = 1.0 / float(max(self.dimension, 2)) ** self.poly_exponent
        trials = chernoff_ratio_sample_size(
            epsilon / 2.0, delta / 2.0, probability_lower_bound=acceptance_floor
        )
        trials = min(trials, self.max_volume_trials)
        accepted, performed = self.acceptance_statistics(trials, rng)
        if accepted == 0:
            raise PolyRelatednessError(
                f"no difference point found in {performed} trials; cannot certify a "
                "relative volume estimate (Proposition 4.2's condition is violated)"
            )
        acceptance = accepted / performed
        return VolumeEstimate(
            value=minuend_estimate.value * acceptance,
            epsilon=epsilon,
            delta=delta,
            method="difference-rejection",
            samples_used=performed,
            details={
                "minuend_volume": minuend_estimate.value,
                "acceptance": acceptance,
                "trials": performed,
            },
        )


def difference_observable(
    minuend: ObservableRelation,
    subtrahend: ObservableRelation,
    params: GeneratorParams | None = None,
    poly_exponent: float = 2.0,
) -> DifferenceObservable:
    """Proposition 4.2: differences are observable when poly-related to the minuend."""
    return DifferenceObservable(minuend, subtrahend, params=params, poly_exponent=poly_exponent)
