"""Observability of arbitrary generalized relations in fixed dimension (Theorem 3.1).

When the dimension is assumed fixed (the classical constraint-database
setting), *every* generalized relation is observable: the exact volume is
computable in polynomial time by a cell-decomposition algorithm (Lemma 3.1)
and uniform sampling reduces to enumerating the decomposition cells and
picking one uniformly (Lemma 3.2).  Both costs hide an ``(R / γ)^d`` factor
that explodes once the dimension grows — experiment E9 measures exactly that,
contrasting it with the dimension-polynomial randomized estimators of
Section 4.
"""

from __future__ import annotations

import numpy as np

from repro.constraints.relations import GeneralizedRelation
from repro.core.observable import GenerationFailure, GeneratorParams, ObservableRelation
from repro.sampling.fixed_dim import FixedDimensionSampler
from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate


class FixedDimensionObservable(ObservableRelation):
    """Observable wrapper for any bounded generalized relation, in fixed dimension.

    Parameters
    ----------
    relation:
        Any bounded generalized relation (arbitrary DNF, convex or not).
    cell_size:
        Side of the decomposition cubes (the γ of Lemma 3.2); the volume
        estimate converges to the exact volume as ``cell_size -> 0``.
    params:
        Accuracy parameters; only γ matters here (ε and δ are zero in spirit —
        the method is exact up to the discretisation).
    max_cells:
        Guard on the exponential cell enumeration.
    """

    def __init__(
        self,
        relation: GeneralizedRelation,
        cell_size: float = 0.05,
        params: GeneratorParams | None = None,
        max_cells: int = 2_000_000,
    ) -> None:
        self.relation = relation
        self.params = params if params is not None else GeneratorParams()
        self._sampler = FixedDimensionSampler(relation, cell_size=cell_size, max_cells=max_cells)

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.relation.dimension

    @property
    def cell_size(self) -> float:
        """Decomposition granularity γ."""
        return self._sampler.cell_size

    def contains(self, point: np.ndarray) -> bool:
        return self.relation.contains_point([float(v) for v in point])

    def description_size(self) -> int:
        return self.relation.description_size()

    def cells_examined(self) -> int:
        """The ``(R / γ)^d`` enumeration cost actually paid (for the benchmarks)."""
        return self._sampler.decomposition().cells_examined

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        try:
            return self._sampler.sample(rng, 1)[0]
        except ValueError as error:
            raise GenerationFailure(str(error)) from error

    def generate_many(
        self, count: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        rng = ensure_rng(rng)
        try:
            return self._sampler.sample(rng, count)
        except ValueError as error:
            raise GenerationFailure(str(error)) from error

    # ------------------------------------------------------------------
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        decomposition = self._sampler.decomposition()
        return VolumeEstimate(
            value=decomposition.volume_estimate,
            epsilon=epsilon,
            delta=delta,
            method="fixed-dimension-cells",
            oracle_calls=decomposition.cells_examined,
            details={
                "cells_inside": decomposition.num_cells,
                "cells_examined": decomposition.cells_examined,
                "cell_size": decomposition.cell_size,
            },
        )
