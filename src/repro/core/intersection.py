"""Intersection of observable relations (Proposition 4.1, Corollary 4.3).

To sample ``T = S_1 ∩ ... ∩ S_m`` the paper generates points in the member of
smallest (estimated) volume and keeps those lying in every other member.  When
``T`` is *poly-related* to ``min(S_1, ..., S_m)`` each trial succeeds with
probability at least ``d^-k``, so polynomially many trials suffice — and the
accepted points are almost uniform in ``T`` because rejection preserves the
conditional distribution.  The same acceptance ratio gives the volume:

    vol(T) = vol(S_min) · P[accept | sample from S_min].

The restriction is necessary in general: Section 4.1.3 encodes SAT as an
intersection of observable relations, so an unconditional (ε, δ)-volume
estimator for intersections would decide SAT in randomized polynomial time.
When the poly-relatedness budget is exhausted the generator raises
:class:`PolyRelatednessError` rather than looping forever, making the failure
mode observable (experiment E4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.observable import GenerationFailure, GeneratorParams, ObservableRelation
from repro.core.poly_related import PolyRelatednessError, rejection_budget
from repro.sampling.rng import ensure_rng
from repro.volume.base import VolumeEstimate
from repro.volume.chernoff import chernoff_ratio_sample_size


class IntersectionObservable(ObservableRelation):
    """Observable intersection of observable relations (under poly-relatedness).

    Parameters
    ----------
    members:
        The observable relations being intersected (same ambient dimension).
    params:
        Accuracy parameters of the composed generator.
    poly_exponent:
        The exponent ``k`` of the assumed poly-relatedness between the
        intersection and the smallest member; it fixes the rejection budget.
    """

    def __init__(
        self,
        members: Sequence[ObservableRelation],
        params: GeneratorParams | None = None,
        poly_exponent: float = 2.0,
        max_volume_trials: int = 20_000,
    ) -> None:
        members = list(members)
        if len(members) < 2:
            raise ValueError("an intersection needs at least two members")
        dimension = members[0].dimension
        for member in members[1:]:
            if member.dimension != dimension:
                raise ValueError("all intersection members must share the ambient dimension")
        self.members = members
        self.params = params if params is not None else GeneratorParams()
        self.poly_exponent = float(poly_exponent)
        self.max_volume_trials = int(max_volume_trials)
        self._member_volumes: list[VolumeEstimate] | None = None
        self._smallest_index: int | None = None

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        return self.members[0].dimension

    def contains(self, point: np.ndarray) -> bool:
        return all(member.contains(point) for member in self.members)

    def description_size(self) -> int:
        return sum(member.description_size() for member in self.members)

    def warm(self) -> "IntersectionObservable":
        for member in self.members:
            member.warm()
        return self

    # ------------------------------------------------------------------
    def smallest_member(self, rng: np.random.Generator | int | None = None) -> int:
        """Index of the member with the smallest estimated volume (the proposal set)."""
        if self._smallest_index is None:
            rng = ensure_rng(rng)
            epsilon = self.params.epsilon / 3.0
            delta = min(self.params.delta / max(len(self.members), 1), 0.125)
            self._member_volumes = [
                member.estimate_volume(epsilon, delta, rng=rng) for member in self.members
            ]
            volumes = [estimate.value for estimate in self._member_volumes]
            self._smallest_index = int(np.argmin(volumes))
        return self._smallest_index

    def member_volumes(self) -> list[VolumeEstimate]:
        """Volume estimates of the members (after :meth:`smallest_member` ran)."""
        if self._member_volumes is None:
            self.smallest_member()
        assert self._member_volumes is not None
        return self._member_volumes

    # ------------------------------------------------------------------
    def generate(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        rng = ensure_rng(rng)
        proposal_index = self.smallest_member(rng)
        proposal = self.members[proposal_index]
        budget = rejection_budget(self.dimension, self.poly_exponent, self.params.delta)
        for _ in range(budget):
            try:
                point = proposal.generate(rng)
            except GenerationFailure:
                continue
            if self.contains(point):
                return point
        raise PolyRelatednessError(
            f"no intersection point found in {budget} trials; the intersection is "
            f"not poly-related to its smallest member with exponent {self.poly_exponent}"
        )

    def acceptance_statistics(
        self, trials: int, rng: np.random.Generator | int | None = None
    ) -> tuple[int, int]:
        """Run ``trials`` rejection trials and return ``(accepted, performed)``."""
        rng = ensure_rng(rng)
        proposal_index = self.smallest_member(rng)
        proposal = self.members[proposal_index]
        points = proposal.generate_many(trials, rng)
        accepted = sum(1 for point in points if self.contains(point))
        return accepted, points.shape[0]

    # ------------------------------------------------------------------
    def estimate_volume(
        self,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        rng = ensure_rng(rng)
        proposal_index = self.smallest_member(rng)
        proposal_volume = self.member_volumes()[proposal_index].value
        if proposal_volume <= 0:
            return VolumeEstimate(0.0, epsilon, delta, "intersection-rejection")
        acceptance_floor = 1.0 / float(max(self.dimension, 2)) ** self.poly_exponent
        trials = chernoff_ratio_sample_size(
            epsilon / 2.0, delta / 2.0, probability_lower_bound=acceptance_floor
        )
        trials = min(trials, self.max_volume_trials)
        accepted, performed = self.acceptance_statistics(trials, rng)
        if accepted == 0:
            raise PolyRelatednessError(
                f"no intersection point found in {performed} trials; cannot certify a "
                "relative volume estimate (Proposition 4.1's condition is violated)"
            )
        acceptance = accepted / performed
        return VolumeEstimate(
            value=proposal_volume * acceptance,
            epsilon=epsilon,
            delta=delta,
            method="intersection-rejection",
            samples_used=performed,
            details={
                "proposal_member": proposal_index,
                "proposal_volume": proposal_volume,
                "acceptance": acceptance,
                "trials": performed,
            },
        )


def intersection_observable(
    members: Sequence[ObservableRelation],
    params: GeneratorParams | None = None,
    poly_exponent: float = 2.0,
) -> IntersectionObservable:
    """Corollary 4.3: intersections are observable when poly-related to the smallest member."""
    return IntersectionObservable(members, params=params, poly_exponent=poly_exponent)
