"""Parameter sweep descriptions shared by the benchmarks.

Each experiment of DESIGN.md sweeps a small set of parameters (dimension,
accuracy, overlap fraction, term count, ...).  Centralising the sweep values
here keeps ``benchmarks/`` and ``EXPERIMENTS.md`` consistent: the benchmark
files import these constants instead of hard-coding their own, and the
experiment report generator iterates over the same values.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Sweep:
    """A named one-dimensional parameter sweep."""

    name: str
    parameter: str
    values: tuple = ()
    notes: str = ""


# Experiment E1 — projection uniformity.
E1_SAMPLE_COUNTS = (500, 2_000)
E1_HISTOGRAM_BINS = 20

# Experiment E2 — convex volume estimation.
E2_DIMENSIONS = (2, 3, 4, 5, 6)
E2_EPSILONS = (0.1, 0.2)

# Experiment E3 — union generator and dumbbell mixing.
E3_DIMENSIONS = (2, 3, 4)
E3_TUBE_WIDTHS = (0.4, 0.2, 0.1, 0.05)

# Experiment E4 — intersection and poly-relatedness.
E4_OVERLAP_EXPONENTS = (1, 2, 3, 4, 5, 6, 8)
E4_DIMENSIONS = (2, 3, 4)

# Experiment E5 — difference.
E5_REMOVED_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 0.9)

# Experiment E6 — DNF unions (geometric #DNF).
E6_TERM_COUNTS = (2, 4, 8, 16, 32)
E6_VARIABLES = 4

# Experiment E7 — projection versus Fourier--Motzkin.
E7_ELIMINATED_COUNTS = (1, 2, 3, 4)
E7_KEPT_DIMENSION = 2

# Experiment E8 — hull reconstruction convergence.
E8_SAMPLE_COUNTS = (50, 100, 250, 500, 1_000, 2_000)
E8_DIMENSIONS = (2, 3)

# Experiment E9 — fixed-dimension cell decomposition cost.
E9_DIMENSIONS = (1, 2, 3, 4, 5)
E9_CELL_SIZE = 0.2

# Experiment E10 — rejection sampling curse of dimensionality.
E10_DIMENSIONS = (2, 4, 6, 8, 10, 12)
E10_PROPOSALS = 20_000

# Experiment E11 — SAT / DNF encoding.
E11_VARIABLE_COUNTS = (4, 6, 8)
E11_TERMS_PER_VARIABLE = 2

# Experiment E12 — query reconstruction.
E12_SAMPLES_PER_COMPONENT = (100, 300, 600)

# Experiment E13 — parameter scaling of the composed generators.
E13_EPSILONS = (0.4, 0.3, 0.2, 0.1)
E13_DELTAS = (0.2, 0.1, 0.05)
E13_DIMENSIONS = (2, 3, 4)

# Experiment E14 — polynomial-constraint bodies.
E14_DIMENSIONS = (2, 3, 4)

# Experiment E15 — GIS aggregates.
E15_MAP_SEEDS = (7, 11)
E15_EPSILON = 0.25


ALL_SWEEPS: dict[str, Sweep] = {
    "E1": Sweep("E1", "samples", E1_SAMPLE_COUNTS, "projection uniformity"),
    "E2": Sweep("E2", "dimension", E2_DIMENSIONS, "convex volume estimation"),
    "E3": Sweep("E3", "tube_width", E3_TUBE_WIDTHS, "union / dumbbell"),
    "E4": Sweep("E4", "overlap_exponent", E4_OVERLAP_EXPONENTS, "intersection"),
    "E5": Sweep("E5", "removed_fraction", E5_REMOVED_FRACTIONS, "difference"),
    "E6": Sweep("E6", "term_count", E6_TERM_COUNTS, "DNF union"),
    "E7": Sweep("E7", "eliminated", E7_ELIMINATED_COUNTS, "projection vs Fourier-Motzkin"),
    "E8": Sweep("E8", "samples", E8_SAMPLE_COUNTS, "hull reconstruction"),
    "E9": Sweep("E9", "dimension", E9_DIMENSIONS, "fixed-dimension cells"),
    "E10": Sweep("E10", "dimension", E10_DIMENSIONS, "rejection curse"),
    "E11": Sweep("E11", "variables", E11_VARIABLE_COUNTS, "SAT encoding"),
    "E12": Sweep("E12", "samples", E12_SAMPLES_PER_COMPONENT, "query reconstruction"),
    "E13": Sweep("E13", "epsilon", E13_EPSILONS, "parameter scaling"),
    "E14": Sweep("E14", "dimension", E14_DIMENSIONS, "polynomial bodies"),
    "E15": Sweep("E15", "seed", E15_MAP_SEEDS, "GIS aggregates"),
}
