"""Parametric convex bodies used as workloads.

These generators produce both the symbolic (:class:`GeneralizedTuple`) and the
numeric (:class:`HPolytope`) representation of standard test bodies —
hypercubes, boxes, simplices, cross-polytopes, randomly rotated boxes and
random polytopes — together with their exact volumes where a closed form
exists.  Every experiment that sweeps the dimension builds its inputs here so
the benchmarks and the tests agree on what was measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.constraints.tuples import GeneralizedTuple
from repro.geometry.polytope import HPolytope
from repro.geometry.simplex import standard_simplex_volume
from repro.sampling.rng import ensure_rng


@dataclass
class Workload:
    """A named test body with symbolic and numeric representations.

    Attributes
    ----------
    name:
        Human-readable identifier used in benchmark tables.
    tuple_:
        Symbolic representation (``None`` for bodies produced numerically,
        e.g. rotated boxes whose coefficients are irrational).
    polytope:
        Numeric H-representation.
    exact_volume:
        Closed-form volume when known, ``None`` otherwise.
    """

    name: str
    tuple_: GeneralizedTuple | None
    polytope: HPolytope
    exact_volume: float | None


def variable_names(dimension: int, prefix: str = "x") -> tuple[str, ...]:
    """The canonical variable names ``x1 .. xd`` used across the workloads."""
    return tuple(f"{prefix}{index + 1}" for index in range(dimension))


def hypercube(dimension: int, side: float = 1.0, origin: float = 0.0) -> Workload:
    """The axis-aligned cube ``[origin, origin + side]^d``."""
    names = variable_names(dimension)
    bounds = {name: (origin, origin + side) for name in names}
    tuple_ = GeneralizedTuple.box(bounds)
    polytope = HPolytope.from_generalized_tuple(tuple_)
    return Workload(f"cube-d{dimension}", tuple_, polytope, side**dimension)


def box(dimension: int, lengths: list[float], origin: float = 0.0) -> Workload:
    """An axis-aligned box with per-axis side lengths."""
    if len(lengths) != dimension:
        raise ValueError("one side length per dimension is required")
    names = variable_names(dimension)
    bounds = {name: (origin, origin + length) for name, length in zip(names, lengths)}
    tuple_ = GeneralizedTuple.box(bounds)
    polytope = HPolytope.from_generalized_tuple(tuple_)
    return Workload(f"box-d{dimension}", tuple_, polytope, float(np.prod(lengths)))


def simplex(dimension: int, scale: float = 1.0) -> Workload:
    """The standard simplex ``{x >= 0, sum x <= scale}``."""
    from repro.constraints.atoms import AtomicConstraint, Relation
    from repro.constraints.terms import LinearTerm

    names = variable_names(dimension)
    constraints = [
        AtomicConstraint(LinearTerm({name: -1}, 0), Relation.LE) for name in names
    ]
    constraints.append(
        AtomicConstraint(LinearTerm({name: 1 for name in names}, -scale), Relation.LE)
    )
    tuple_ = GeneralizedTuple(constraints, names)
    polytope = HPolytope.from_generalized_tuple(tuple_)
    return Workload(
        f"simplex-d{dimension}", tuple_, polytope, standard_simplex_volume(dimension, scale)
    )


def cross_polytope(dimension: int, scale: float = 1.0) -> Workload:
    """The L1 ball ``{sum |x_i| <= scale}`` (volume ``(2 scale)^d / d!``)."""
    polytope = HPolytope.cross_polytope(dimension, scale)
    volume = (2.0 * scale) ** dimension / math.factorial(dimension)
    return Workload(f"cross-d{dimension}", None, polytope, volume)


def rotated_box(
    dimension: int,
    lengths: list[float],
    rng: np.random.Generator | int | None = None,
) -> Workload:
    """An axis-aligned box rotated by a random orthogonal matrix.

    Rotated boxes exercise the rounding step (their bounding boxes are loose)
    while keeping an exact volume (rotations preserve volume).
    """
    rng = ensure_rng(rng)
    if len(lengths) != dimension:
        raise ValueError("one side length per dimension is required")
    base = HPolytope.box([(0.0, float(length)) for length in lengths])
    random_matrix = rng.normal(size=(dimension, dimension))
    orthogonal, _ = np.linalg.qr(random_matrix)
    from repro.geometry.transforms import AffineTransform

    rotation = AffineTransform(orthogonal, np.zeros(dimension))
    rotated = base.transform(rotation)
    return Workload(f"rotated-box-d{dimension}", None, rotated, float(np.prod(lengths)))


def random_polytope(
    dimension: int,
    constraint_count: int,
    rng: np.random.Generator | int | None = None,
    radius: float = 1.0,
) -> Workload:
    """A random polytope: the cube cut by random tangent halfspaces.

    ``constraint_count`` random unit normals cut the cube ``[-radius, radius]^d``
    at distance ``radius / 2`` from the origin; the result is bounded,
    full-dimensional (it contains a small ball around the origin) and has no
    closed-form volume (the exact baseline computes it in low dimension).
    """
    rng = ensure_rng(rng)
    cube = HPolytope.box([(-radius, radius)] * dimension)
    normals = rng.normal(size=(constraint_count, dimension))
    normals /= np.linalg.norm(normals, axis=1, keepdims=True)
    offsets = np.full(constraint_count, radius / 2.0)
    polytope = HPolytope(
        np.vstack([cube.a, normals]), np.concatenate([cube.b, offsets])
    )
    return Workload(f"random-polytope-d{dimension}-m{constraint_count}", None, polytope, None)


def unit_ball_workload(dimension: int, radius: float = 1.0) -> tuple[Workload, float]:
    """The Euclidean ball (as an oracle workload) and its exact volume.

    The ball has no H-representation; the returned :class:`Workload` carries
    its bounding cube as the polytope (for rejection baselines) and the exact
    ball volume separately — experiment E10's acceptance-rate study needs both.
    """
    from repro.geometry.ball import ball_volume

    cube = HPolytope.box([(-radius, radius)] * dimension)
    workload = Workload(f"ball-d{dimension}", None, cube, (2.0 * radius) ** dimension)
    return workload, ball_volume(dimension, radius)


def shifted_cube_pair(
    dimension: int, overlap: float, side: float = 1.0
) -> tuple[Workload, Workload, float]:
    """Two unit cubes overlapping in a slab of width ``overlap`` along the first axis.

    Returns ``(first, second, exact_union_volume)``; the intersection volume is
    ``overlap * side^(d-1)``.  Used by the union and intersection experiments
    (E3, E4) to control the overlap precisely.
    """
    if not 0 <= overlap <= side:
        raise ValueError("overlap must lie between 0 and the side length")
    names = variable_names(dimension)
    first_bounds = {name: (0.0, side) for name in names}
    second_bounds = dict(first_bounds)
    shift = side - overlap
    second_bounds[names[0]] = (shift, shift + side)
    first = GeneralizedTuple.box(first_bounds)
    second = GeneralizedTuple.box(second_bounds)
    union_volume = 2.0 * side**dimension - overlap * side ** (dimension - 1)
    return (
        Workload(f"cubeA-d{dimension}", first, HPolytope.from_generalized_tuple(first), side**dimension),
        Workload(f"cubeB-d{dimension}", second, HPolytope.from_generalized_tuple(second), side**dimension),
        union_volume,
    )


def annulus_box(dimension: int, outer: float = 1.0, inner_fraction: float = 0.5) -> tuple[
    GeneralizedTuple, GeneralizedTuple, float
]:
    """A cube with a centred cube removed: the difference workload of E5.

    Returns ``(outer_tuple, inner_tuple, exact_difference_volume)``.
    """
    if not 0 < inner_fraction < 1:
        raise ValueError("inner_fraction must lie strictly between 0 and 1")
    names = variable_names(dimension)
    outer_tuple = GeneralizedTuple.box({name: (0.0, outer) for name in names})
    margin = outer * (1.0 - inner_fraction) / 2.0
    inner_tuple = GeneralizedTuple.box(
        {name: (margin, outer - margin) for name in names}
    )
    difference_volume = outer**dimension - (outer * inner_fraction) ** dimension
    return outer_tuple, inner_tuple, difference_volume
