"""Workload generators: shapes, dumbbells, SAT/DNF encodings, GIS maps, sweeps."""

from repro.workloads.dumbbell import DumbbellWorkload, dumbbell
from repro.workloads.gis import SyntheticMap, synthetic_map
from repro.workloads.sat import (
    PropositionalFormula,
    clause_to_relation,
    cnf_to_relations,
    dnf_geometric_volume,
    dnf_satisfying_fraction,
    dnf_to_relation,
    literal_tuple,
    random_cnf,
    random_dnf,
    term_tuple,
)
from repro.workloads.shapes import (
    Workload,
    annulus_box,
    box,
    cross_polytope,
    hypercube,
    random_polytope,
    rotated_box,
    shifted_cube_pair,
    simplex,
    unit_ball_workload,
    variable_names,
)

__all__ = [
    "DumbbellWorkload",
    "dumbbell",
    "SyntheticMap",
    "synthetic_map",
    "PropositionalFormula",
    "clause_to_relation",
    "cnf_to_relations",
    "dnf_geometric_volume",
    "dnf_satisfying_fraction",
    "dnf_to_relation",
    "literal_tuple",
    "random_cnf",
    "random_dnf",
    "term_tuple",
    "Workload",
    "annulus_box",
    "box",
    "cross_polytope",
    "hypercube",
    "random_polytope",
    "rotated_box",
    "shifted_cube_pair",
    "simplex",
    "unit_ball_workload",
    "variable_names",
]
