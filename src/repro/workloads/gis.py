"""Synthetic GIS-style constraint databases.

The paper motivates sampling with Geographical Information Systems, "because
many applications are of a statistical nature".  The original work names no
concrete data set, so the experiments use a synthetic map generator: convex
administrative districts (random convex polygons), axis-aligned facility
zones, and road corridors (thin rotated rectangles).  The generator returns a
ready-to-query :class:`ConstraintDatabase`, which experiment E15 and the GIS
example drive with overlap-style aggregate queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constraints.database import ConstraintDatabase, DatabaseSchema
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.geometry.hull import convex_hull
from repro.sampling.rng import ensure_rng


@dataclass
class SyntheticMap:
    """A generated map: districts, zones and corridors over a square extent.

    Attributes
    ----------
    database:
        Constraint database with one relation per feature
        (``district_i``, ``zone_i``, ``corridor_i``), each of arity 2 over
        attributes ``("x", "y")``.
    extent:
        Half-side of the square world ``[-extent, extent]^2``.
    districts / zones / corridors:
        The feature names, grouped by kind, for convenient iteration.
    """

    database: ConstraintDatabase
    extent: float
    districts: list[str] = field(default_factory=list)
    zones: list[str] = field(default_factory=list)
    corridors: list[str] = field(default_factory=list)

    def feature_names(self) -> list[str]:
        """All feature names of the map."""
        return self.districts + self.zones + self.corridors


def random_convex_polygon(
    rng: np.random.Generator,
    center: np.ndarray,
    radius: float,
    vertex_count: int = 7,
) -> GeneralizedTuple:
    """A random convex polygon around ``center`` as a generalized tuple.

    Random points on a disc are hulled and the hull's H-representation is
    converted back to symbolic constraints over ``(x, y)``.
    """
    angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=vertex_count))
    radii = rng.uniform(0.4 * radius, radius, size=vertex_count)
    points = np.stack(
        [center[0] + radii * np.cos(angles), center[1] + radii * np.sin(angles)], axis=1
    )
    hull = convex_hull(points)
    if hull.polytope is None:
        # Degenerate draw (collinear points): fall back to a small box.
        return GeneralizedTuple.box(
            {
                "x": (float(center[0] - radius / 2), float(center[0] + radius / 2)),
                "y": (float(center[1] - radius / 2), float(center[1] + radius / 2)),
            }
        )
    return hull.polytope.to_generalized_tuple(("x", "y"))


def axis_aligned_zone(
    rng: np.random.Generator, extent: float, min_side: float, max_side: float
) -> GeneralizedTuple:
    """A random axis-aligned rectangle inside the map extent."""
    width = rng.uniform(min_side, max_side)
    height = rng.uniform(min_side, max_side)
    x0 = rng.uniform(-extent, extent - width)
    y0 = rng.uniform(-extent, extent - height)
    return GeneralizedTuple.box({"x": (x0, x0 + width), "y": (y0, y0 + height)})


def corridor(
    rng: np.random.Generator, extent: float, width: float
) -> GeneralizedTuple:
    """A thin corridor: a long rectangle with a random orientation.

    Implemented as the set ``{|n·p - c| <= width/2, |t·p - m| <= length/2}``
    with ``n`` a random unit normal and ``t`` the orthogonal direction.
    """
    from fractions import Fraction

    from repro.constraints.atoms import AtomicConstraint, Relation
    from repro.constraints.terms import LinearTerm

    angle = rng.uniform(0.0, np.pi)
    normal = np.array([np.cos(angle), np.sin(angle)])
    tangent = np.array([-normal[1], normal[0]])
    offset = rng.uniform(-extent / 2, extent / 2)
    midpoint = rng.uniform(-extent / 2, extent / 2)
    length = extent * 1.5

    def constraint(direction: np.ndarray, upper: float) -> AtomicConstraint:
        coefficients = {
            "x": Fraction(float(direction[0])).limit_denominator(10**6),
            "y": Fraction(float(direction[1])).limit_denominator(10**6),
        }
        term = LinearTerm(coefficients, -Fraction(float(upper)).limit_denominator(10**6))
        return AtomicConstraint(term, Relation.LE)

    constraints = [
        constraint(normal, offset + width / 2),
        constraint(-normal, -(offset - width / 2)),
        constraint(tangent, midpoint + length / 2),
        constraint(-tangent, -(midpoint - length / 2)),
    ]
    return GeneralizedTuple(constraints, ("x", "y"))


def synthetic_map(
    district_count: int = 4,
    zone_count: int = 3,
    corridor_count: int = 2,
    extent: float = 10.0,
    rng: np.random.Generator | int | None = None,
) -> SyntheticMap:
    """Generate a synthetic map with the requested number of features."""
    rng = ensure_rng(rng)
    database = ConstraintDatabase(DatabaseSchema())
    result = SyntheticMap(database=database, extent=extent)
    for index in range(district_count):
        center = rng.uniform(-extent / 2, extent / 2, size=2)
        radius = rng.uniform(extent / 8, extent / 4)
        polygon = random_convex_polygon(rng, center, radius)
        name = f"district_{index + 1}"
        database.set_relation(name, GeneralizedRelation.from_tuple(polygon))
        result.districts.append(name)
    for index in range(zone_count):
        zone = axis_aligned_zone(rng, extent, extent / 10, extent / 3)
        name = f"zone_{index + 1}"
        database.set_relation(name, GeneralizedRelation.from_tuple(zone))
        result.zones.append(name)
    for index in range(corridor_count):
        strip = corridor(rng, extent, width=extent / 20)
        name = f"corridor_{index + 1}"
        database.set_relation(name, GeneralizedRelation.from_tuple(strip))
        result.corridors.append(name)
    return result
