"""Dumbbell unions: two large bodies linked by a thin tube.

Section 4.1 of the paper motivates the union generator with precisely this
shape: "Consider for example two large convex sets S and S' linked by a thin
convex tube T: starting from S, the probability to walk randomly through the
bridge T and to reach S' is likely to be small."  A single random walk on the
union therefore fails to mix, while Algorithm 1 (sample the components in
proportion to their volumes) is immune to the bottleneck.  Experiment E3 uses
these workloads to demonstrate both behaviours.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.workloads.shapes import variable_names


@dataclass
class DumbbellWorkload:
    """A dumbbell-shaped union and its exact volume decomposition.

    Attributes
    ----------
    left / right:
        The two large cubes.
    tube:
        The thin connecting box.
    relation:
        The union of the three parts, as a DNF relation.
    exact_volume:
        Exact volume of the union (the parts are disjoint by construction
        except for shared faces of measure zero).
    """

    left: GeneralizedTuple
    right: GeneralizedTuple
    tube: GeneralizedTuple
    relation: GeneralizedRelation
    exact_volume: float


def dumbbell(
    dimension: int,
    lobe_side: float = 1.0,
    tube_length: float = 1.0,
    tube_width: float = 0.05,
) -> DumbbellWorkload:
    """Build a dumbbell: two ``lobe_side`` cubes joined by a ``tube_width`` tube.

    The first axis carries the left lobe on ``[0, s]``, the tube on
    ``[s, s + L]`` and the right lobe on ``[s + L, 2 s + L]``; the remaining
    axes are ``[0, s]`` for the lobes and a centred ``[.., ..]`` interval of
    width ``tube_width`` for the tube.
    """
    if dimension < 2:
        raise ValueError("a dumbbell needs at least two dimensions")
    if not 0 < tube_width <= lobe_side:
        raise ValueError("tube_width must lie in (0, lobe_side]")
    names = variable_names(dimension)
    side = float(lobe_side)
    length = float(tube_length)
    width = float(tube_width)

    left = GeneralizedTuple.box({names[0]: (0.0, side), **{n: (0.0, side) for n in names[1:]}})
    right = GeneralizedTuple.box(
        {names[0]: (side + length, 2 * side + length), **{n: (0.0, side) for n in names[1:]}}
    )
    tube_bounds = {names[0]: (side, side + length)}
    margin = (side - width) / 2.0
    for name in names[1:]:
        tube_bounds[name] = (margin, margin + width)
    tube = GeneralizedTuple.box(tube_bounds)

    relation = GeneralizedRelation((left, tube, right), names)
    exact_volume = 2.0 * side**dimension + length * width ** (dimension - 1)
    return DumbbellWorkload(left, right, tube, relation, exact_volume)
