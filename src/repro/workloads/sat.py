"""The geometric encoding of propositional formulas (Section 4.1.3).

The paper encodes a SAT instance geometrically: the literal ``x`` becomes the
constraint ``3/4 < x < 1`` and the literal ``¬x`` becomes ``0 < x < 1/4``; a
clause (disjunction of literals) is a finite union of such slabs (hence an
observable finite union of convex sets) and the whole CNF instance is the
intersection of these observable sets.  The instance is satisfiable iff the
intersection is non-empty — which is why an unconditional volume estimator
for intersections would decide SAT, and why Proposition 4.1 needs its
poly-relatedness hypothesis.

The dual encoding of a *DNF* formula (a union of terms, each term a box) is
the geometric analogue of the Karp--Luby #DNF problem: the fraction of the
unit cube covered by the union equals the fraction of satisfying assignments
of the DNF when each box is a full sub-cube, and remains proportional to it
under this slab encoding.  Experiments E6 and E11 use both encodings.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

from repro.constraints.atoms import interval_constraints
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.sampling.rng import ensure_rng

#: A literal is a pair ``(variable_index, polarity)``; polarity ``True`` means positive.
Literal = tuple[int, bool]
#: A clause (or DNF term) is a sequence of literals.
Clause = tuple[Literal, ...]


@dataclass
class PropositionalFormula:
    """A propositional formula in clause form over ``variable_count`` variables.

    ``clauses`` is interpreted as a CNF when used with :func:`cnf_to_relations`
    and as a DNF (a list of terms) when used with :func:`dnf_to_relation`.
    """

    variable_count: int
    clauses: tuple[Clause, ...]

    def variables(self) -> tuple[str, ...]:
        """The geometric variable names ``b1 .. bn``."""
        return tuple(f"b{index + 1}" for index in range(self.variable_count))


def literal_tuple(variable_count: int, literal: Literal) -> GeneralizedTuple:
    """The slab encoding of one literal inside the unit cube.

    Positive literal: ``3/4 <= b_i <= 1``; negative literal: ``0 <= b_i <= 1/4``;
    every other coordinate ranges over ``[0, 1]``.
    """
    index, polarity = literal
    if not 0 <= index < variable_count:
        raise ValueError(f"literal index {index} out of range")
    names = tuple(f"b{i + 1}" for i in range(variable_count))
    constraints = []
    for i, name in enumerate(names):
        if i == index:
            low, high = (Fraction(3, 4), Fraction(1)) if polarity else (Fraction(0), Fraction(1, 4))
        else:
            low, high = Fraction(0), Fraction(1)
        constraints.extend(interval_constraints(name, low, high))
    return GeneralizedTuple(constraints, names)


def term_tuple(variable_count: int, term: Clause) -> GeneralizedTuple:
    """The box encoding of a DNF term (conjunction of literals)."""
    names = tuple(f"b{i + 1}" for i in range(variable_count))
    assignments: dict[int, bool] = {}
    for index, polarity in term:
        if index in assignments and assignments[index] != polarity:
            # Contradictory term: encode as an empty box.
            return GeneralizedTuple.empty(names)
        assignments[index] = polarity
    constraints = []
    for i, name in enumerate(names):
        if i in assignments:
            low, high = (
                (Fraction(3, 4), Fraction(1)) if assignments[i] else (Fraction(0), Fraction(1, 4))
            )
        else:
            low, high = Fraction(0), Fraction(1)
        constraints.extend(interval_constraints(name, low, high))
    return GeneralizedTuple(constraints, names)


def clause_to_relation(variable_count: int, clause: Clause) -> GeneralizedRelation:
    """A CNF clause as a union of literal slabs (an observable finite union)."""
    names = tuple(f"b{i + 1}" for i in range(variable_count))
    return GeneralizedRelation(
        (literal_tuple(variable_count, literal) for literal in clause), names
    )


def cnf_to_relations(formula: PropositionalFormula) -> list[GeneralizedRelation]:
    """The CNF instance as a list of observable relations to be intersected."""
    return [clause_to_relation(formula.variable_count, clause) for clause in formula.clauses]


def dnf_to_relation(formula: PropositionalFormula) -> GeneralizedRelation:
    """The DNF instance as a single union-of-boxes relation (the #DNF workload)."""
    names = formula.variables()
    return GeneralizedRelation(
        (term_tuple(formula.variable_count, term) for term in formula.clauses), names
    )


def dnf_satisfying_fraction(formula: PropositionalFormula) -> float:
    """Exact fraction of satisfying assignments of a DNF formula (brute force).

    Exponential in the number of variables — usable only for the small
    instances of the benchmarks, where it provides the ground truth for the
    geometric #DNF estimate.
    """
    count = 0
    total = 2**formula.variable_count
    for assignment_bits in range(total):
        assignment = [(assignment_bits >> i) & 1 == 1 for i in range(formula.variable_count)]
        if _dnf_satisfied(formula, assignment):
            count += 1
    return count / total


def _dnf_satisfied(formula: PropositionalFormula, assignment: Sequence[bool]) -> bool:
    for term in formula.clauses:
        if all(assignment[index] == polarity for index, polarity in term):
            return True
    return False


def dnf_geometric_volume(formula: PropositionalFormula) -> float:
    """Exact volume of the DNF slab encoding.

    Each fixed literal contributes a factor 1/4 and each free variable a
    factor 1; inclusion–exclusion over the terms matches the union volume, so
    the closed form below (per-term product with inclusion–exclusion) gives
    the exact value used to validate the sampling estimate in E6/E11.
    """
    from itertools import combinations

    terms = [dict() for _ in formula.clauses]
    for term_index, term in enumerate(formula.clauses):
        consistent = True
        for index, polarity in term:
            if index in terms[term_index] and terms[term_index][index] != polarity:
                consistent = False
                break
            terms[term_index][index] = polarity
        if not consistent:
            terms[term_index] = None  # type: ignore[call-overload]
    valid_terms = [term for term in terms if term is not None]

    def merged_volume(subset: tuple[dict, ...]) -> float:
        merged: dict[int, bool] = {}
        for term in subset:
            for index, polarity in term.items():
                if index in merged and merged[index] != polarity:
                    return 0.0
                merged[index] = polarity
        return 0.25 ** len(merged)

    total = 0.0
    for size in range(1, len(valid_terms) + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in combinations(valid_terms, size):
            total += sign * merged_volume(subset)
    return total


def random_dnf(
    variable_count: int,
    term_count: int,
    literals_per_term: int = 3,
    rng: np.random.Generator | int | None = None,
) -> PropositionalFormula:
    """A random DNF formula (the workload generator of E6/E11)."""
    rng = ensure_rng(rng)
    if literals_per_term > variable_count:
        raise ValueError("terms cannot mention more literals than there are variables")
    clauses = []
    for _ in range(term_count):
        indices = rng.choice(variable_count, size=literals_per_term, replace=False)
        term = tuple((int(index), bool(rng.integers(0, 2))) for index in indices)
        clauses.append(term)
    return PropositionalFormula(variable_count, tuple(clauses))


def random_cnf(
    variable_count: int,
    clause_count: int,
    literals_per_clause: int = 3,
    rng: np.random.Generator | int | None = None,
) -> PropositionalFormula:
    """A random CNF formula (for the SAT-encoding experiment E11)."""
    return random_dnf(variable_count, clause_count, literals_per_clause, rng)
