"""Hot numeric kernels with selectable backends (numpy reference / numba).

The three innermost loops of the sampling stack — batched H-polytope
membership, hit-and-run chord intersection and block-rejection mask-accept —
account for nearly all of the service's CPU time once the executor, cache and
planner layers are out of the way.  This package concentrates them behind a
tiny dispatch layer so they can be compiled without touching their callers:

* :mod:`repro.kernels.reference` — the NumPy implementations, expression for
  expression the code that used to live inline in
  :meth:`repro.geometry.polytope.HPolytope.contains_points`,
  :meth:`repro.sampling.hit_and_run.HitAndRunSampler._step_chains` and
  :func:`repro.sampling.rejection._accept_block`.  This backend is the
  **bit-identity oracle**: whatever backend is active must return exactly
  equal outputs.
* :mod:`repro.kernels.compiled` — optional ``numba`` (``njit``,
  ``cache=True``) kernels.  The matrix products stay in NumPy (both backends
  therefore consume *identical* float inputs from the same BLAS); numba
  compiles the epilogues — comparison/reduction passes that NumPy executes
  as several dispatched array operations with boolean temporaries — into one
  fused loop.  Because the epilogues are elementwise comparisons, divisions
  and exact min/max selections over identical inputs, the compiled results
  are bit-identical to the reference by construction, not approximately.

The backend is selected at import time from ``REPRO_KERNELS``:

* ``auto`` (default) — numba when importable, the NumPy reference otherwise;
* ``numpy`` — force the reference backend;
* ``numba`` — request the compiled backend; when numba is not installed the
  selection *logs a warning and falls back* to the reference backend instead
  of failing (graceful degradation is part of the contract).

Per-kernel invocation counters and the active backend name are exposed via
:func:`kernel_stats` so ``/v1/stats`` and ``repro top`` can confirm which
backend production traffic is actually running on.
"""

from __future__ import annotations

import logging
import os
from threading import Lock
from typing import Any

import numpy as np

from repro.kernels import reference

logger = logging.getLogger(__name__)

#: Slope magnitudes below this are treated as "parallel to the chord" by the
#: chord-intersection kernel — the historical constant of
#: :meth:`repro.sampling.hit_and_run.HitAndRunSampler._step`.
CHORD_SLOPE_EPSILON = reference.CHORD_SLOPE_EPSILON

_VALID_CHOICES = ("auto", "numpy", "numba")

_lock = Lock()
_requested: str = "auto"
_active_name: str = "numpy"
_active_module: Any = reference
_numba_available: bool = False
_counters: dict[str, int] = {}


def _compiled_module():
    """The numba backend module, or ``None`` when numba is unusable."""
    try:
        from repro.kernels import compiled
    except Exception:  # pragma: no cover - import machinery failures
        return None
    return compiled if compiled.AVAILABLE else None


def _activate(choice: str) -> str:
    """(Re)select the kernel backend; returns the active backend name.

    Called once at import with ``REPRO_KERNELS`` and again by tests and
    benchmarks that need to flip backends inside one process.
    """
    global _requested, _active_name, _active_module, _numba_available
    choice = (choice or "auto").strip().lower() or "auto"
    if choice not in _VALID_CHOICES:
        logger.warning(
            "unknown REPRO_KERNELS=%r (choose from %s); using 'auto'",
            choice,
            "/".join(_VALID_CHOICES),
        )
        choice = "auto"
    compiled = _compiled_module()
    with _lock:
        _requested = choice
        _numba_available = compiled is not None
        if choice == "numpy" or compiled is None:
            if choice == "numba" and compiled is None:
                logger.warning(
                    "REPRO_KERNELS=numba requested but numba is not importable; "
                    "falling back to the numpy reference kernels"
                )
            _active_name, _active_module = "numpy", reference
        else:
            _active_name, _active_module = "numba", compiled
    return _active_name


def active_backend() -> str:
    """Name of the backend serving kernel calls (``"numpy"`` or ``"numba"``)."""
    return _active_name


def numba_available() -> bool:
    """Whether the compiled backend could be imported in this process."""
    return _numba_available


def kernel_stats() -> dict[str, Any]:
    """Backend identity plus per-kernel invocation counters (JSON-ready)."""
    with _lock:
        calls = dict(_counters)
    return {
        "backend": _active_name,
        "requested": _requested,
        "numba_available": _numba_available,
        "calls": calls,
    }


def reset_counters() -> None:
    """Zero the invocation counters (benchmarks isolate their measurements)."""
    with _lock:
        _counters.clear()


def _count(name: str) -> None:
    # A plain dict bump per *block* call (not per point); the lock keeps the
    # counters truthful under the thread backend without measurable cost.
    with _lock:
        _counters[name] = _counters.get(name, 0) + 1


def warm_jit() -> str:
    """Compile (or load from the on-disk cache) every active kernel once.

    CI's numba leg runs this as a pre-step so the JIT cost is paid before
    any timed work; a no-op on the reference backend.  Returns the active
    backend name.
    """
    a = np.array([[1.0, 0.0], [0.0, 1.0]])
    b = np.array([1.0, 1.0])
    points = np.array([[0.25, 0.25], [2.0, 0.0]])
    membership_mask(a, b, points, 1e-9)
    rows = a.copy()
    offsets = -b
    codes = np.zeros(2, dtype=np.int8)
    system_membership_mask(rows, offsets, codes, points)
    slopes = np.array([[0.5, -0.5]])
    gaps = np.array([[1.0, 1.0]])
    chord_bounds(slopes, gaps)
    accept_indices(np.array([False, True, True]), 1)
    return _active_name


# ----------------------------------------------------------------------
# Dispatchers — degenerate cases are handled here once so the backends
# only ever see the hot, well-shaped case.
# ----------------------------------------------------------------------
def membership_mask(
    a: np.ndarray, b: np.ndarray, points: np.ndarray, tolerance: float
) -> np.ndarray:
    """Batched H-polytope membership: ``all(A x <= b + tolerance)`` per row.

    ``points`` has shape ``(n, d)``; returns an ``(n,)`` boolean array.  A
    system with no rows contains everything (the empty conjunction), matching
    :meth:`repro.geometry.polytope.HPolytope.contains_points`.
    """
    if a.shape[0] == 0:
        return np.ones(points.shape[0], dtype=bool)
    _count("membership")
    return _active_module.membership_mask(a, b, points, tolerance)


def system_membership_mask(
    rows: np.ndarray, offsets: np.ndarray, codes: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Batched float-system membership for a generalized tuple.

    Row ``i`` of the system encodes ``rows[i] . x + offsets[i] <rel> 0`` with
    ``codes[i]`` one of the relation codes of
    :mod:`repro.constraints.tuples` (``<=``, ``<``, ``==``, ``!=``).
    """
    if rows.shape[0] == 0:
        return np.ones(points.shape[0], dtype=bool)
    _count("system_membership")
    return _active_module.system_membership_mask(rows, offsets, codes, points)


def chord_bounds(
    slopes: np.ndarray, gaps: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-chain hit-and-run chord ``(lower, upper)`` from slopes and gaps.

    ``slopes[c, i]`` is the direction's component along constraint ``i`` for
    chain ``c`` and ``gaps[c, i]`` the constraint's slack at the chain's
    current point; the chord along the direction is
    ``[max ratios over slopes < -eps, min ratios over slopes > eps]`` with
    ``eps`` = :data:`CHORD_SLOPE_EPSILON`.  Chains with no bounding
    constraint on a side get ``-inf`` / ``+inf`` there (the caller decides
    whether that means "unbounded body" or "stay put").
    """
    _count("chord")
    return _active_module.chord_bounds(slopes, gaps)


def accept_indices(mask: np.ndarray, needed: int) -> tuple[np.ndarray, int, bool]:
    """Mask-accept bookkeeping of one judged rejection block.

    Returns ``(hit_indices, proposals_consumed, filled)`` where
    ``hit_indices`` holds the row indices of the accepted proposals (at most
    ``needed`` of them) and ``proposals_consumed`` counts every row up to and
    including the decisive acceptance — the accounting of the historical
    one-point-at-a-time loop.
    """
    if needed <= 0:
        return np.empty(0, dtype=np.int64), 0, True
    _count("accept")
    return _active_module.accept_indices(mask, needed)


_activate(os.environ.get("REPRO_KERNELS", "auto"))

__all__ = [
    "CHORD_SLOPE_EPSILON",
    "accept_indices",
    "active_backend",
    "chord_bounds",
    "kernel_stats",
    "membership_mask",
    "numba_available",
    "reset_counters",
    "system_membership_mask",
    "warm_jit",
]
