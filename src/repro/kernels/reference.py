"""NumPy reference kernels — the bit-identity oracle for every backend.

Each function here is the exact expression that used to live inline at its
call site (see the module docstring of :mod:`repro.kernels`).  Alternative
backends must reproduce these outputs *bit for bit* on finite inputs; the
property suite in ``tests/kernels/`` enforces that, and
``benchmarks/bench_e25_kernels.py`` commits the witness.

Keep these implementations boring: no clever re-associations, no fused
expressions — they define the contract, they don't compete on speed.
"""

from __future__ import annotations

import numpy as np

#: Slope magnitudes at or below this are treated as parallel to the chord
#: direction; the historical constant of the scalar and vectorized
#: hit-and-run steppers.
CHORD_SLOPE_EPSILON = 1e-14

# Relation codes of repro.constraints.tuples (duplicated here rather than
# imported so the kernels package stays dependency-free below numpy).
_REL_LE = 0
_REL_LT = 1
_REL_EQ = 2
_REL_NE = 3


def membership_mask(
    a: np.ndarray, b: np.ndarray, points: np.ndarray, tolerance: float
) -> np.ndarray:
    """``all(A x <= b + tolerance)`` per point, as one boolean per row."""
    return np.all(points @ a.T <= b + tolerance, axis=1)


def system_membership_mask(
    rows: np.ndarray, offsets: np.ndarray, codes: np.ndarray, points: np.ndarray
) -> np.ndarray:
    """Per-point satisfaction of a mixed ``<=``/``<``/``==``/``!=`` system."""
    values = points @ rows.T + offsets
    satisfied = np.empty(values.shape, dtype=bool)
    le = codes == _REL_LE
    lt = codes == _REL_LT
    eq = codes == _REL_EQ
    ne = codes == _REL_NE
    satisfied[:, le] = values[:, le] <= 0.0
    satisfied[:, lt] = values[:, lt] < 0.0
    satisfied[:, eq] = values[:, eq] == 0.0
    satisfied[:, ne] = values[:, ne] != 0.0
    return satisfied.all(axis=1)


def chord_bounds(
    slopes: np.ndarray, gaps: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Chord ``(lower, upper)`` per chain from constraint slopes and slacks."""
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = gaps / slopes
    upper = np.min(np.where(slopes > CHORD_SLOPE_EPSILON, ratios, np.inf), axis=1)
    lower = np.max(np.where(slopes < -CHORD_SLOPE_EPSILON, ratios, -np.inf), axis=1)
    return lower, upper


def accept_indices(mask: np.ndarray, needed: int) -> tuple[np.ndarray, int, bool]:
    """Indices of accepted proposals plus how many proposals were consumed."""
    hits = np.flatnonzero(mask)
    if hits.size >= needed:
        decisive = int(hits[needed - 1])
        return hits[:needed], decisive + 1, True
    return hits, int(mask.shape[0]), False
