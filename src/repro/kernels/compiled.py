"""Optional numba backend: fused, cached-JIT epilogues for the hot kernels.

Importing this module raises ``ImportError`` when numba is not installed;
:mod:`repro.kernels` import-gates it and falls back to the reference backend
with a logged warning, so numba stays a soft dependency.

Bit-identity strategy
---------------------
The matrix products stay in NumPy — both backends therefore consume the
*identical* floats produced by the same BLAS call — and numba compiles only
the epilogues: elementwise comparisons, IEEE divisions and exact min/max
selections.  Those operations have one correct answer per input bit
pattern, so the fused loops below are exactly equal to the reference
expressions on finite inputs, not approximately (``fastmath`` stays off for
precisely this reason).  What the fusion buys is the removal of NumPy's
boolean temporaries and multi-pass reductions, plus early exit per row —
the first violated constraint settles a point's membership without reading
the rest.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401 - import failure is the availability gate

from repro.kernels.reference import CHORD_SLOPE_EPSILON, accept_indices as _reference_accept

AVAILABLE = True


@njit(cache=True)
def _all_le(values, thresholds, out):  # pragma: no cover - compiled
    n, m = values.shape
    for i in range(n):
        ok = True
        for j in range(m):
            if not (values[i, j] <= thresholds[j]):
                ok = False
                break
        out[i] = ok


@njit(cache=True)
def _system_all(values, codes, out):  # pragma: no cover - compiled
    n, m = values.shape
    for i in range(n):
        ok = True
        for j in range(m):
            value = values[i, j]
            code = codes[j]
            if code == 0:
                satisfied = value <= 0.0
            elif code == 1:
                satisfied = value < 0.0
            elif code == 2:
                satisfied = value == 0.0
            else:
                satisfied = value != 0.0
            if not satisfied:
                ok = False
                break
        out[i] = ok


@njit(cache=True)
def _chord(slopes, gaps, lower, upper):  # pragma: no cover - compiled
    k, m = slopes.shape
    for i in range(k):
        lo = -np.inf
        hi = np.inf
        for j in range(m):
            slope = slopes[i, j]
            if slope > CHORD_SLOPE_EPSILON:
                ratio = gaps[i, j] / slope
                if ratio < hi:
                    hi = ratio
            elif slope < -CHORD_SLOPE_EPSILON:
                ratio = gaps[i, j] / slope
                if ratio > lo:
                    lo = ratio
        lower[i] = lo
        upper[i] = hi


@njit(cache=True)
def _accept(mask, needed, out):  # pragma: no cover - compiled
    n = mask.shape[0]
    count = 0
    for i in range(n):
        if mask[i]:
            out[count] = i
            count += 1
            if count == needed:
                return count, i + 1, True
    return count, n, False


def membership_mask(
    a: np.ndarray, b: np.ndarray, points: np.ndarray, tolerance: float
) -> np.ndarray:
    # Shared-BLAS prefix, fused comparison epilogue.
    values = points @ a.T
    thresholds = b + tolerance
    out = np.empty(values.shape[0], dtype=bool)
    _all_le(values, thresholds, out)
    return out


def system_membership_mask(
    rows: np.ndarray, offsets: np.ndarray, codes: np.ndarray, points: np.ndarray
) -> np.ndarray:
    values = points @ rows.T + offsets
    out = np.empty(values.shape[0], dtype=bool)
    _system_all(values, np.ascontiguousarray(codes), out)
    return out


def chord_bounds(
    slopes: np.ndarray, gaps: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    # The per-chain accumulators run in float64; narrower inputs widen
    # exactly and round-trip exactly on store, so the output dtype (and
    # bits) match the reference for float32 as well as float64.
    lower = np.empty(slopes.shape[0], dtype=slopes.dtype)
    upper = np.empty(slopes.shape[0], dtype=slopes.dtype)
    _chord(np.ascontiguousarray(slopes), np.ascontiguousarray(gaps), lower, upper)
    return lower, upper


def accept_indices(mask: np.ndarray, needed: int) -> tuple[np.ndarray, int, bool]:
    if needed <= 0:
        return _reference_accept(mask, needed)
    out = np.empty(min(needed, mask.shape[0]), dtype=np.int64)
    count, consumed, filled = _accept(np.ascontiguousarray(mask), needed, out)
    return out[:count], int(consumed), bool(filled)
