"""Persistent content-addressed result store.

The store is the durable second tier behind the service's in-memory
:class:`~repro.service.cache.ResultCache`: request answers, subplan member
estimates and pickled refinable continuation states written through to disk
survive restarts, and a fresh :class:`~repro.service.session.ServiceSession`
opened on the same path serves repeated queries bit-identically without
recomputation.  Entries carry their plan's relation footprint, so a mutation
of one relation invalidates only the entries whose plans reference it.
"""

from repro.store.result_store import (
    SCHEMA_VERSION,
    EntryMeta,
    ResultStore,
    StoredEntry,
)

__all__ = [
    "SCHEMA_VERSION",
    "EntryMeta",
    "ResultStore",
    "StoredEntry",
]
