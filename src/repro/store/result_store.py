"""SQLite-backed persistent content-addressed result store.

Design notes
------------

*Content addressing.*  Keys are the service's request/subplan cache keys:
SHA-256 over (kind, fingerprint, plan digest, extras), where the fingerprint
component is the *restriction* of the database fingerprint to the relations
the plan scans (:mod:`repro.service.canonical`).  Content addressing does
the heavy lifting for correctness — a key can only ever map to one value, so
serving a stored row is bit-identical to serving the in-memory entry it was
written from, and mutating a relation *moves the keys* of every affected
plan rather than leaving stale rows reachable.  Invalidation is therefore
garbage collection, not a correctness mechanism: :meth:`invalidate_relations`
drops the now-unreachable rows so the file does not grow without bound.

*Persistence format.*  One SQLite file in WAL mode.  SQLite gives us atomic
multi-statement writes, process-safety via file locking, and a queryable
side table ``entry_relations`` mapping each key to the relations its plan
references — exactly what plan-aware invalidation needs (``DELETE ... WHERE
key IN (SELECT key FROM entry_relations WHERE relation IN ...)``).

*Time.*  The in-memory cache measures TTLs on an injectable monotonic
clock, which is meaningless across processes.  Stored rows instead carry a
wall-clock epoch expiry (``expires_at``, seconds since the Unix epoch, or
NULL for no TTL); :meth:`get` re-checks it on every read so a restored
store never resurrects an expired entry.  The wall clock is injectable too
(``clock=time.time``) so tests can drive expiry deterministically.

*Robustness.*  A schema-version row guards the layout: opening a file
written by a different version drops and recreates the schema (the store is
a cache — losing it costs recomputation, not correctness).  A corrupt file
(``sqlite3.DatabaseError`` on open) is moved aside to ``<path>.corrupt`` and
replaced with a fresh store; an unpicklable payload deletes its own row and
counts a corruption instead of propagating.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Optional

SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    k TEXT PRIMARY KEY,
    v TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    digest TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    known_relations INTEGER NOT NULL,
    epsilon REAL NOT NULL,
    delta REAL NOT NULL,
    expires_at REAL,
    refinable INTEGER NOT NULL,
    payload BLOB NOT NULL,
    created_at REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS entry_relations (
    key TEXT NOT NULL,
    relation TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_entry_relations_relation
    ON entry_relations (relation);
CREATE INDEX IF NOT EXISTS idx_entry_relations_key
    ON entry_relations (key);
"""


@dataclass(frozen=True)
class EntryMeta:
    """Provenance a cache entry carries into the store.

    ``relations`` is the plan's relation footprint (sorted names), or
    ``None`` when the footprint is unknown (legacy/planless keys) — unknown
    footprints are conservatively invalidated by *every* relation update.
    ``fingerprint`` is the restricted fingerprint component of the key.
    """

    kind: str
    digest: str
    relations: Optional[tuple[str, ...]]
    fingerprint: str


@dataclass(frozen=True)
class StoredEntry:
    """One row read back from the store.

    Bundles the pickled payload with its :class:`EntryMeta` provenance
    (plan digest, relation footprint, restricted fingerprint, wall-clock
    expiry) — what ``ResultStore.get`` returns and what warm-up iterates
    over; not constructed by callers.
    """

    result: object
    epsilon: float
    delta: float
    expires_at: Optional[float]
    meta: EntryMeta


@dataclass
class StoreStats:
    """Operation counters (per open store handle, not persisted)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    invalidations: int = 0
    expirations: int = 0
    corruptions: int = 0
    extra: dict = field(default_factory=dict)

    def snapshot(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "invalidations": self.invalidations,
            "expirations": self.expirations,
            "corruptions": self.corruptions,
        }


class ResultStore:
    """Process-safe persistent tier for content-addressed results.

    One connection per handle, serialized by a lock; concurrent *processes*
    coordinate through SQLite's file locking (WAL mode, 30 s busy timeout).
    All values are pickled — results, estimates and refinable continuation
    states are plain picklable dataclasses by construction.  Usually
    attached implicitly via ``ServiceSession(database, store="results.db")``;
    standalone use is ``ResultStore("results.db")`` with
    ``put``/``get``/``invalidate_relations``.
    """

    def __init__(
        self,
        path: "str | Path",
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.clock = clock
        self.stats = StoreStats()
        self._lock = threading.Lock()
        self._conn = self._open()

    # -- lifecycle -----------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            # Corrupt or foreign file: move it aside and start fresh.  The
            # store is a cache of recomputable answers, so this trades disk
            # state for availability rather than refusing to start.
            self.stats.corruptions += 1
            quarantine = self.path.with_name(self.path.name + ".corrupt")
            try:
                os.replace(self.path, quarantine)
            except OSError:
                self.path.unlink(missing_ok=True)
            return self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path, timeout=30.0, check_same_thread=False
        )
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            version = conn.execute(
                "SELECT v FROM store_meta WHERE k = 'schema_version'"
            ).fetchone()
        except sqlite3.OperationalError:
            version = None  # fresh file (or pre-schema): create below
        if version is not None and version[0] != str(SCHEMA_VERSION):
            # Different layout: drop everything rather than guess at a
            # migration — stored answers are recomputable.
            conn.executescript(
                "DROP TABLE IF EXISTS entries;"
                "DROP TABLE IF EXISTS entry_relations;"
                "DROP TABLE IF EXISTS store_meta;"
            )
        conn.executescript(_SCHEMA)
        conn.execute(
            "INSERT OR REPLACE INTO store_meta (k, v) VALUES ('schema_version', ?)",
            (str(SCHEMA_VERSION),),
        )
        conn.commit()
        return conn

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writes --------------------------------------------------------

    def put(
        self,
        key: str,
        result: object,
        epsilon: float,
        delta: float,
        meta: EntryMeta,
        expires_at: Optional[float] = None,
        replace: bool = False,
    ) -> bool:
        """Persist one entry; returns whether the row was (re)written.

        Mirrors the in-memory dominance rule loosely: an existing *live* row
        that strictly dominates the candidate (tighter ε and δ) is kept; an
        expired row is always replaced.  ``replace=True`` skips the dominance
        check entirely — the write path for accuracy-less payloads such as
        runtime profiles, whose latest state must always win.
        """
        payload = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
        refinable = 1 if getattr(result, "refinable", None) is not None else 0
        now = self.clock()
        with self._lock:
            row = None
            if not replace:
                row = self._conn.execute(
                    "SELECT epsilon, delta, expires_at FROM entries WHERE key = ?",
                    (key,),
                ).fetchone()
            if row is not None:
                old_eps, old_delta, old_expiry = row
                live = old_expiry is None or old_expiry > now
                if live and old_eps <= epsilon and old_delta <= delta:
                    return False
            self._conn.execute("DELETE FROM entry_relations WHERE key = ?", (key,))
            self._conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(key, kind, digest, fingerprint, known_relations, epsilon, delta,"
                " expires_at, refinable, payload, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    meta.kind,
                    meta.digest,
                    meta.fingerprint,
                    0 if meta.relations is None else 1,
                    epsilon,
                    delta,
                    expires_at,
                    refinable,
                    payload,
                    now,
                ),
            )
            if meta.relations:
                self._conn.executemany(
                    "INSERT INTO entry_relations (key, relation) VALUES (?, ?)",
                    [(key, name) for name in meta.relations],
                )
            self._conn.commit()
            self.stats.writes += 1
        return True

    # -- reads ---------------------------------------------------------

    def get(self, key: str) -> Optional[StoredEntry]:
        """Read one live entry, or ``None`` (expired rows are deleted)."""
        now = self.clock()
        with self._lock:
            row = self._conn.execute(
                "SELECT kind, digest, fingerprint, known_relations, epsilon,"
                " delta, expires_at, payload FROM entries WHERE key = ?",
                (key,),
            ).fetchone()
            if row is None:
                self.stats.misses += 1
                return None
            kind, digest, fingerprint, known, eps, delta, expires_at, payload = row
            if expires_at is not None and expires_at <= now:
                self._delete(key)
                self.stats.expirations += 1
                self.stats.misses += 1
                return None
            relations = self._relations_of(key) if known else None
            try:
                result = pickle.loads(payload)
            except Exception:
                # A torn or version-skewed payload: self-heal by dropping the
                # row — the answer is recomputable.
                self._delete(key)
                self.stats.corruptions += 1
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return StoredEntry(
                result=result,
                epsilon=eps,
                delta=delta,
                expires_at=expires_at,
                meta=EntryMeta(
                    kind=kind,
                    digest=digest,
                    relations=relations,
                    fingerprint=fingerprint,
                ),
            )

    def load_live(self, limit: Optional[int] = None) -> list[tuple[str, StoredEntry]]:
        """Every live entry, most recently written first (for cache warming)."""
        now = self.clock()
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM entries "
                "WHERE expires_at IS NULL OR expires_at > ? "
                "ORDER BY created_at DESC",
                (now,),
            ).fetchall()
        keys = [key for (key,) in rows]
        if limit is not None:
            keys = keys[:limit]
        loaded: list[tuple[str, StoredEntry]] = []
        for key in keys:
            entry = self.get(key)
            if entry is not None:
                loaded.append((key, entry))
        return loaded

    def entries(self) -> list[tuple[str, str, Optional[tuple[str, ...]]]]:
        """(key, kind, relations) of every row — introspection/demo helper."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, kind, known_relations FROM entries"
            ).fetchall()
            return [
                (key, kind, self._relations_of(key) if known else None)
                for key, kind, known in rows
            ]

    def __len__(self) -> int:
        with self._lock:
            (count,) = self._conn.execute("SELECT COUNT(*) FROM entries").fetchone()
            return int(count)

    # -- invalidation --------------------------------------------------

    def invalidate_relations(self, names: Iterable[str]) -> int:
        """Drop every entry whose plan references any of ``names``.

        Entries with an *unknown* footprint (planless keys, which fold the
        full database fingerprint into their key) are dropped too — their
        keys changed, so the rows are unreachable garbage.  Entries whose
        known footprint is disjoint from ``names`` keep their keys and
        survive untouched.
        """
        targets = sorted(set(names))
        if not targets:
            return 0
        marks = ",".join("?" for _ in targets)
        with self._lock:
            doomed = {
                key
                for (key,) in self._conn.execute(
                    f"SELECT DISTINCT key FROM entry_relations WHERE relation IN ({marks})",
                    targets,
                )
            }
            doomed.update(
                key
                for (key,) in self._conn.execute(
                    "SELECT key FROM entries WHERE known_relations = 0"
                )
            )
            for key in doomed:
                self._delete(key)
            self._conn.commit()
            self.stats.invalidations += len(doomed)
            return len(doomed)

    def purge_expired(self) -> int:
        """Drop every expired row; returns how many were removed."""
        now = self.clock()
        with self._lock:
            rows = self._conn.execute(
                "SELECT key FROM entries WHERE expires_at IS NOT NULL AND expires_at <= ?",
                (now,),
            ).fetchall()
            for (key,) in rows:
                self._delete(key)
            self._conn.commit()
            self.stats.expirations += len(rows)
            return len(rows)

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM entries")
            self._conn.execute("DELETE FROM entry_relations")
            self._conn.commit()

    # -- internals -----------------------------------------------------

    def _delete(self, key: str) -> None:
        self._conn.execute("DELETE FROM entries WHERE key = ?", (key,))
        self._conn.execute("DELETE FROM entry_relations WHERE key = ?", (key,))
        self._conn.commit()

    def _relations_of(self, key: str) -> tuple[str, ...]:
        rows = self._conn.execute(
            "SELECT relation FROM entry_relations WHERE key = ? ORDER BY relation",
            (key,),
        ).fetchall()
        return tuple(name for (name,) in rows)
