"""Grids and grid graphs.

The paper discretises a relation ``S`` by a *grid of step p* — the set ``G_p``
of points whose coordinates are multiples of ``p`` — and works with the graph
induced on ``V = G_p ∩ S`` whose edges connect grid points at distance ``p``
(Section 2).  A γ-grid is one fine enough that ``|V| p^d`` approximates the
volume of ``S`` with ratio ``1 + γ``.

:class:`Grid` provides the coordinate arithmetic (snapping, neighbours,
point/index conversions); :func:`choose_gamma_grid_step` implements the grid
step schedule used by the DFK generator (``p = O(γ / d^{3/2})`` for a
well-rounded body); :func:`induced_vertex_count` enumerates ``V`` exactly in
low dimension for the tests that check the γ-grid property.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

import numpy as np


class Grid:
    """The lattice of points whose coordinates are integer multiples of ``step``."""

    __slots__ = ("step", "dimension")

    def __init__(self, step: float, dimension: int) -> None:
        if step <= 0:
            raise ValueError("grid step must be positive")
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        self.step = float(step)
        self.dimension = int(dimension)

    # ------------------------------------------------------------------
    def snap(self, point: np.ndarray) -> np.ndarray:
        """Round a point to the nearest grid point."""
        point = np.asarray(point, dtype=float)
        return np.round(point / self.step) * self.step

    def index_of(self, point: np.ndarray) -> tuple[int, ...]:
        """Integer lattice index of a grid point."""
        point = np.asarray(point, dtype=float)
        return tuple(int(round(coordinate / self.step)) for coordinate in point)

    def point_of(self, index: Sequence[int]) -> np.ndarray:
        """Grid point corresponding to an integer lattice index."""
        return np.asarray(index, dtype=float) * self.step

    def neighbours(self, point: np.ndarray) -> list[np.ndarray]:
        """The ``2 d`` axis neighbours at distance ``step`` (the grid-graph edges)."""
        point = np.asarray(point, dtype=float)
        result = []
        for axis in range(self.dimension):
            offset = np.zeros(self.dimension)
            offset[axis] = self.step
            result.append(point + offset)
            result.append(point - offset)
        return result

    def cell_volume(self) -> float:
        """Volume ``step^d`` of one grid cell."""
        return self.step**self.dimension

    # ------------------------------------------------------------------
    def points_in_box(
        self, bounds: Sequence[tuple[float, float]], max_points: int = 5_000_000
    ) -> Iterator[np.ndarray]:
        """Iterate over the grid points inside an axis-aligned box.

        The number of points is ``prod((upper - lower) / step)``; the
        ``max_points`` guard prevents runaway enumerations (the exponential
        cost that motivates the paper's randomized approach).
        """
        if len(bounds) != self.dimension:
            raise ValueError("bounds must provide one interval per dimension")
        axes = []
        total = 1
        for lower, upper in bounds:
            start = int(np.ceil(lower / self.step - 1e-12))
            stop = int(np.floor(upper / self.step + 1e-12))
            indices = np.arange(start, stop + 1)
            axes.append(indices)
            total *= max(len(indices), 1)
            if total > max_points:
                raise ValueError(
                    f"grid enumeration would visit more than {max_points} points"
                )
        if any(len(axis) == 0 for axis in axes):
            return
        mesh = np.meshgrid(*axes, indexing="ij")
        indices = np.stack([m.ravel() for m in mesh], axis=1)
        for row in indices:
            yield row.astype(float) * self.step

    def count_in_set(
        self,
        bounds: Sequence[tuple[float, float]],
        membership: Callable[[np.ndarray], bool],
        max_points: int = 5_000_000,
    ) -> int:
        """Count grid points inside the box that satisfy the membership oracle."""
        count = 0
        for point in self.points_in_box(bounds, max_points=max_points):
            if membership(point):
                count += 1
        return count


def choose_gamma_grid_step(gamma: float, dimension: int, scale: float = 1.0) -> float:
    """Grid step of a γ-grid for a well-rounded body.

    The DFK analysis uses ``p = O(γ / d^{3/2})`` for a body sandwiched between
    the unit ball and a ball of radius ``O(d^{3/2})``; ``scale`` rescales the
    step for bodies normalised differently.  The step is also clamped so it is
    never larger than the body's inner radius scale.
    """
    if not 0 < gamma < 1:
        raise ValueError("gamma must lie strictly between 0 and 1")
    if dimension <= 0:
        raise ValueError("dimension must be positive")
    step = gamma * scale / float(dimension) ** 1.5
    return min(step, scale / 2.0)


def induced_vertex_count(
    membership: Callable[[np.ndarray], bool],
    bounds: Sequence[tuple[float, float]],
    step: float,
    max_points: int = 5_000_000,
) -> int:
    """Number of vertices of the graph induced by the grid on the set.

    This is ``|V| = |G_p ∩ S|`` restricted to the given bounding box; the
    γ-grid property asserts ``|V| * p^d ≈ vol(S)``.
    """
    grid = Grid(step, len(bounds))
    return grid.count_in_set(bounds, membership, max_points=max_points)
