"""Well-rounding of convex bodies.

The first step of the Dyer--Frieze--Kannan procedure computes a non-singular
affine transformation ``Q`` that makes the convex body *well-rounded*: the
image ``Q(K)`` contains the unit ball and is contained in a ball of radius
polynomial in the dimension (``sqrt(d (d+1))`` in the paper's statement).
This is possible exactly when ``K`` is well-bounded.

Two rounding procedures are provided:

* :func:`round_by_chebyshev` — the cheap sandwiching used as the default:
  translate the Chebyshev centre to the origin and scale isotropically by the
  inverse of the inscribed radius.  The resulting body contains the unit ball;
  the enclosing radius is ``r_sup / r_inf`` which is polynomial in the
  description for the workloads used in the experiments.
* :func:`round_by_covariance` — a practical refinement in the spirit of the
  DFK preprocessing: estimate the covariance of the body from hit-and-run
  samples and whiten it, which fixes elongated bodies whose ``r_sup / r_inf``
  ratio is large.  The ablation of experiment E2 compares the two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.ball import Ball
from repro.geometry.polytope import HPolytope
from repro.geometry.transforms import AffineTransform


class RoundingError(RuntimeError):
    """Raised when a body cannot be rounded (empty, lower-dimensional, unbounded)."""


@dataclass
class RoundedBody:
    """Result of well-rounding a convex body.

    Attributes
    ----------
    polytope:
        The rounded body ``Q(K)`` (contains the unit ball).
    transform:
        The affine map ``Q`` with ``polytope = Q(original)``.
    inner_radius:
        Radius of a ball centred at the origin contained in the rounded body
        (always ``>= 1`` up to numerical tolerance).
    outer_radius:
        Radius of a ball centred at the origin containing the rounded body.
    """

    polytope: HPolytope
    transform: AffineTransform
    inner_radius: float
    outer_radius: float

    @property
    def sandwich_ratio(self) -> float:
        """The ratio ``outer_radius / inner_radius`` (quality of the rounding)."""
        return self.outer_radius / self.inner_radius

    def pull_back_volume(self, rounded_volume: float) -> float:
        """Convert a volume measured in the rounded space back to the original body."""
        return rounded_volume / self.transform.volume_scale()


def round_by_chebyshev(polytope: HPolytope) -> RoundedBody:
    """Round a well-bounded polytope using its Chebyshev ball.

    The Chebyshev centre is translated to the origin and the body is scaled by
    ``1 / r`` where ``r`` is the inscribed radius, so the unit ball fits inside
    the image.
    """
    chebyshev = polytope.chebyshev_ball()
    if chebyshev is None or chebyshev.radius <= 0.0:
        raise RoundingError("polytope is empty or not full-dimensional; cannot round")
    dimension = polytope.dimension
    scale = 1.0 / chebyshev.radius
    transform = AffineTransform(
        np.eye(dimension) * scale, -chebyshev.center * scale
    )
    rounded = polytope.transform(transform)
    outer = rounded.enclosing_ball()
    if outer is None:
        raise RoundingError("polytope is unbounded; cannot round")
    outer_radius = float(np.linalg.norm(outer.center) + outer.radius)
    return RoundedBody(rounded, transform, 1.0, outer_radius)


def round_by_covariance(
    polytope: HPolytope,
    rng: np.random.Generator,
    sample_count: int = 400,
    walk_steps: int = 200,
) -> RoundedBody:
    """Round a polytope by whitening its estimated covariance.

    A batch of hit-and-run samples estimates the mean and covariance of the
    uniform distribution on the body; the affine map that whitens this
    covariance (followed by the Chebyshev rescaling of the whitened body)
    approximately normalises elongated bodies, reducing the sandwich ratio.
    """
    from repro.sampling.hit_and_run import HitAndRunSampler

    chebyshev = polytope.chebyshev_ball()
    if chebyshev is None or chebyshev.radius <= 0.0:
        raise RoundingError("polytope is empty or not full-dimensional; cannot round")
    sampler = HitAndRunSampler(polytope, burn_in=walk_steps, thinning=1)
    samples = sampler.sample(rng, sample_count)
    mean = samples.mean(axis=0)
    centered = samples - mean
    covariance = centered.T @ centered / max(samples.shape[0] - 1, 1)
    # Regularise to keep the map invertible for nearly degenerate sample sets.
    covariance += np.eye(polytope.dimension) * 1e-12
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    eigenvalues = np.clip(eigenvalues, 1e-12, None)
    whitening = eigenvectors @ np.diag(1.0 / np.sqrt(eigenvalues)) @ eigenvectors.T
    first = AffineTransform(whitening, -whitening @ mean)
    whitened = polytope.transform(first)
    refined = round_by_chebyshev(whitened)
    transform = refined.transform.compose(first)
    return RoundedBody(refined.polytope, transform, refined.inner_radius, refined.outer_radius)


def rounded_ball_sequence(rounded: RoundedBody, ratio: float = 2.0) -> list[Ball]:
    """The telescoping sequence of balls used by the DFK volume estimator.

    Returns balls ``B_0 ⊂ B_1 ⊂ ... ⊂ B_q`` centred at the origin with radii
    growing geometrically by ``ratio^(1/d)`` (so consecutive *volumes* differ
    by at most ``ratio``), starting at the unit ball and ending at a ball
    containing the rounded body.
    """
    if ratio <= 1.0:
        raise ValueError("ratio must exceed 1")
    dimension = rounded.polytope.dimension
    radii = [1.0]
    radius_factor = ratio ** (1.0 / dimension)
    while radii[-1] < rounded.outer_radius:
        radii.append(radii[-1] * radius_factor)
    return [Ball(np.zeros(dimension), radius) for radius in radii]
