"""Simplices: exact volumes and direct uniform sampling.

Simplices serve as test fixtures throughout the library: their volume is known
in closed form (``scale^d / d!`` for the standard simplex), uniform samples
can be drawn directly (through sorted uniforms / Dirichlet spacings), and they
exercise the samplers on a body whose corners are "thin" — a harder case than
the hypercube for random-walk mixing.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.polytope import HPolytope


def standard_simplex_volume(dimension: int, scale: float = 1.0) -> float:
    """Volume of ``{x >= 0, sum(x) <= scale}`` in ``R^dimension``."""
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    if dimension == 0:
        return 1.0
    return scale**dimension / math.factorial(dimension)


def simplex_volume(vertices: np.ndarray) -> float:
    """Volume of the simplex spanned by ``d + 1`` vertices in ``R^d``."""
    vertices = np.asarray(vertices, dtype=float)
    count, dimension = vertices.shape
    if count != dimension + 1:
        raise ValueError("a d-simplex requires exactly d + 1 vertices")
    edges = vertices[1:] - vertices[0]
    return abs(float(np.linalg.det(edges))) / math.factorial(dimension)


def sample_standard_simplex(
    rng: np.random.Generator, dimension: int, count: int = 1, scale: float = 1.0
) -> np.ndarray:
    """Uniform samples from ``{x >= 0, sum(x) <= scale}``.

    Uses the spacings of sorted uniforms: if ``u_(1) <= ... <= u_(d)`` are the
    order statistics of ``d`` uniforms on ``[0, 1]``, the consecutive gaps are
    uniformly distributed on the standard simplex (with the last gap dropped).
    """
    uniforms = rng.random((count, dimension + 1))
    uniforms[:, 0] = 0.0
    uniforms = np.sort(uniforms, axis=1)
    gaps = np.diff(uniforms, axis=1)
    return gaps * scale


def sample_simplex(rng: np.random.Generator, vertices: np.ndarray, count: int = 1) -> np.ndarray:
    """Uniform samples from the simplex spanned by arbitrary vertices.

    Barycentric coordinates are drawn uniformly from the standard simplex
    (Dirichlet(1, ..., 1)) and applied to the vertices.
    """
    vertices = np.asarray(vertices, dtype=float)
    dimension = vertices.shape[1]
    if vertices.shape[0] != dimension + 1:
        raise ValueError("a d-simplex requires exactly d + 1 vertices")
    weights = rng.dirichlet(np.ones(dimension + 1), size=count)
    return weights @ vertices


def standard_simplex_polytope(dimension: int, scale: float = 1.0) -> HPolytope:
    """H-representation of the standard simplex (delegates to :class:`HPolytope`)."""
    return HPolytope.simplex(dimension, scale)
