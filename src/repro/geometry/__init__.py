"""Geometric substrate: polytopes, balls, hulls, grids, rounding and exact volumes."""

from repro.geometry.ball import Ball, ball_volume, unit_ball_volume
from repro.geometry.grid import Grid, choose_gamma_grid_step, induced_vertex_count
from repro.geometry.hull import HullResult, convex_hull, hull_polytope, hull_volume
from repro.geometry.linprog import (
    LPError,
    LPResult,
    chebyshev_center,
    coordinate_bounds,
    is_feasible,
    solve_lp,
    support_value,
)
from repro.geometry.polytope import Halfspace, HPolytope
from repro.geometry.rounding import (
    RoundedBody,
    RoundingError,
    round_by_chebyshev,
    round_by_covariance,
    rounded_ball_sequence,
)
from repro.geometry.simplex import (
    sample_simplex,
    sample_standard_simplex,
    simplex_volume,
    standard_simplex_polytope,
    standard_simplex_volume,
)
from repro.geometry.transforms import AffineTransform
from repro.geometry.vertices import VertexEnumerationError, enumerate_vertices
from repro.geometry.volume import (
    grid_cell_volume,
    polytope_volume,
    relation_bounding_box,
    relation_volume_exact,
    tuple_volume,
)

__all__ = [
    "Ball",
    "ball_volume",
    "unit_ball_volume",
    "Grid",
    "choose_gamma_grid_step",
    "induced_vertex_count",
    "HullResult",
    "convex_hull",
    "hull_polytope",
    "hull_volume",
    "LPError",
    "LPResult",
    "chebyshev_center",
    "coordinate_bounds",
    "is_feasible",
    "solve_lp",
    "support_value",
    "Halfspace",
    "HPolytope",
    "RoundedBody",
    "RoundingError",
    "round_by_chebyshev",
    "round_by_covariance",
    "rounded_ball_sequence",
    "sample_simplex",
    "sample_standard_simplex",
    "simplex_volume",
    "standard_simplex_polytope",
    "standard_simplex_volume",
    "AffineTransform",
    "VertexEnumerationError",
    "enumerate_vertices",
    "grid_cell_volume",
    "polytope_volume",
    "relation_bounding_box",
    "relation_volume_exact",
    "tuple_volume",
]
