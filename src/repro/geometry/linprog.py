"""Linear programming helpers built on :func:`scipy.optimize.linprog`.

The geometric layer reduces most of its structural questions to small linear
programs:

* feasibility of ``A x <= b`` (emptiness of an H-polytope);
* the Chebyshev centre (centre and radius of the largest inscribed ball),
  which provides the inner ball ``r_inf`` of a *well-bounded* relation;
* support functions ``max c.x`` subject to ``A x <= b``, used for tight
  bounding boxes and enclosing balls (the ``r_sup`` of well-boundedness).

All helpers return plain floats/NumPy arrays and raise :class:`LPError` when
the solver reports anything other than success or proven infeasibility /
unboundedness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog


class LPError(RuntimeError):
    """Raised when the LP solver fails for a reason other than infeasibility."""


@dataclass(frozen=True)
class LPResult:
    """Outcome of a linear program.

    Attributes
    ----------
    status:
        One of ``"optimal"``, ``"infeasible"``, ``"unbounded"``.
    value:
        Optimal objective value (``None`` unless optimal).
    point:
        Optimal point (``None`` unless optimal).
    """

    status: str
    value: float | None
    point: np.ndarray | None

    @property
    def is_optimal(self) -> bool:
        """True when an optimal solution was found."""
        return self.status == "optimal"


def solve_lp(
    objective: np.ndarray,
    a_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    a_eq: np.ndarray | None = None,
    b_eq: np.ndarray | None = None,
    bounds: list[tuple[float | None, float | None]] | None = None,
) -> LPResult:
    """Minimise ``objective . x`` subject to ``a_ub x <= b_ub`` and ``a_eq x == b_eq``.

    Variables are free by default (``bounds=(None, None)``), unlike SciPy's
    default of non-negative variables.
    """
    objective = np.asarray(objective, dtype=float)
    dimension = objective.shape[0]
    if bounds is None:
        bounds = [(None, None)] * dimension
    result = linprog(
        objective,
        A_ub=a_ub if a_ub is not None and len(a_ub) else None,
        b_ub=b_ub if b_ub is not None and len(b_ub) else None,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if result.status == 0:
        return LPResult("optimal", float(result.fun), np.asarray(result.x, dtype=float))
    if result.status == 2:
        return LPResult("infeasible", None, None)
    if result.status == 3:
        return LPResult("unbounded", None, None)
    raise LPError(f"linear program failed: {result.message}")


def is_feasible(a_ub: np.ndarray, b_ub: np.ndarray) -> bool:
    """Is the system ``a_ub x <= b_ub`` satisfiable (over the closed polytope)?"""
    a_ub = np.asarray(a_ub, dtype=float)
    if a_ub.size == 0:
        return True
    dimension = a_ub.shape[1]
    result = solve_lp(np.zeros(dimension), a_ub, np.asarray(b_ub, dtype=float))
    return result.is_optimal


def chebyshev_center(a_ub: np.ndarray, b_ub: np.ndarray) -> tuple[np.ndarray, float] | None:
    """Centre and radius of the largest ball inscribed in ``{x : a_ub x <= b_ub}``.

    Solves ``max r`` subject to ``a_i . c + r * ||a_i|| <= b_i``.  Returns
    ``None`` when the polytope is empty; the radius may be ``inf``-like large
    only for unbounded polytopes (SciPy then reports unboundedness, which is
    also mapped to ``None`` because such bodies are not *well-bounded*).
    """
    a_ub = np.asarray(a_ub, dtype=float)
    b_ub = np.asarray(b_ub, dtype=float)
    if a_ub.size == 0:
        return None
    rows, dimension = a_ub.shape
    norms = np.linalg.norm(a_ub, axis=1)
    # Variables: (c_1 .. c_d, r); maximise r == minimise -r.
    a_extended = np.hstack([a_ub, norms.reshape(rows, 1)])
    objective = np.zeros(dimension + 1)
    objective[-1] = -1.0
    bounds = [(None, None)] * dimension + [(0.0, None)]
    result = solve_lp(objective, a_extended, b_ub, bounds=bounds)
    if not result.is_optimal:
        return None
    center = result.point[:dimension]
    radius = float(result.point[-1])
    return center, radius


def support_value(a_ub: np.ndarray, b_ub: np.ndarray, direction: np.ndarray) -> float | None:
    """Maximum of ``direction . x`` over ``{x : a_ub x <= b_ub}``.

    Returns ``None`` when the maximum is unbounded and raises
    :class:`LPError` when the polytope is empty (callers are expected to
    check emptiness first).
    """
    direction = np.asarray(direction, dtype=float)
    result = solve_lp(-direction, np.asarray(a_ub, dtype=float), np.asarray(b_ub, dtype=float))
    if result.status == "unbounded":
        return None
    if not result.is_optimal:
        raise LPError("support function query on an empty polytope")
    return -result.value


def coordinate_bounds(a_ub: np.ndarray, b_ub: np.ndarray, dimension: int) -> list[tuple[float, float]] | None:
    """Tight per-coordinate bounds of the polytope, or ``None`` if unbounded/empty."""
    bounds: list[tuple[float, float]] = []
    for axis in range(dimension):
        direction = np.zeros(dimension)
        direction[axis] = 1.0
        try:
            upper = support_value(a_ub, b_ub, direction)
            lower = support_value(a_ub, b_ub, -direction)
        except LPError:
            return None
        if upper is None or lower is None:
            return None
        bounds.append((-lower, upper))
    return bounds
