"""Euclidean balls: exact volumes, membership, uniform sampling.

Balls play three roles in the paper:

* well-boundedness of a relation is expressed by an inner ball of radius
  ``r_inf`` and an enclosing ball of radius ``r_sup``;
* the Dyer--Frieze--Kannan volume estimator telescopes along a sequence of
  scaled copies of the unit ball (``B = K_0 ⊆ K_1 ⊆ ... ⊆ K_q = Q(K)``);
* the introduction's motivating example — the exponentially small ratio
  between the volume of the d-ball and its bounding cube — is experiment E10.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.tolerances import DEFAULT_CONTAINMENT_TOLERANCE


def unit_ball_volume(dimension: int) -> float:
    """Exact volume of the unit ball in ``R^dimension``.

    Uses the closed form ``pi^(d/2) / Gamma(d/2 + 1)``.
    """
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    if dimension == 0:
        return 1.0
    return math.pi ** (dimension / 2.0) / math.gamma(dimension / 2.0 + 1.0)


def ball_volume(dimension: int, radius: float) -> float:
    """Exact volume of a ball of the given radius in ``R^dimension``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    return unit_ball_volume(dimension) * radius**dimension


class Ball:
    """A closed Euclidean ball ``{x : ||x - center|| <= radius}``."""

    __slots__ = ("center", "radius")

    def __init__(self, center: np.ndarray, radius: float) -> None:
        self.center = np.asarray(center, dtype=float)
        if self.center.ndim != 1:
            raise ValueError("center must be a 1-D point")
        if radius < 0:
            raise ValueError("radius must be non-negative")
        self.radius = float(radius)

    # ------------------------------------------------------------------
    @classmethod
    def unit(cls, dimension: int) -> "Ball":
        """The unit ball centred at the origin."""
        return cls(np.zeros(dimension), 1.0)

    @property
    def dimension(self) -> int:
        """Ambient dimension."""
        return self.center.shape[0]

    @property
    def volume(self) -> float:
        """Exact volume of the ball."""
        return ball_volume(self.dimension, self.radius)

    # ------------------------------------------------------------------
    def contains(
        self, point: np.ndarray, tolerance: float = DEFAULT_CONTAINMENT_TOLERANCE
    ) -> bool:
        """Membership test with an additive tolerance on the radius.

        The default matches the polytope predicates (historically balls used
        ``0.0``, which made a point on a shared boundary "inside" the
        polytope description of a body but "outside" its ball description —
        see :mod:`repro.geometry.tolerances` for the contract).
        """
        point = np.asarray(point, dtype=float)
        return float(np.linalg.norm(point - self.center)) <= self.radius + tolerance

    def contains_points(
        self, points: np.ndarray, tolerance: float = DEFAULT_CONTAINMENT_TOLERANCE
    ) -> np.ndarray:
        """Vectorized membership for a ``(n, d)`` array; returns ``(n,)`` booleans.

        Same additive-tolerance contract as :meth:`contains`.
        """
        points = np.asarray(points, dtype=float)
        deltas = points - self.center
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        return distances <= self.radius + tolerance

    def contains_ball(self, other: "Ball") -> bool:
        """Does this ball contain the other ball entirely?"""
        distance = float(np.linalg.norm(other.center - self.center))
        return distance + other.radius <= self.radius + 1e-12

    def scaled(self, factor: float) -> "Ball":
        """Ball with the same centre and radius multiplied by ``factor``."""
        return Ball(self.center, self.radius * factor)

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` points uniformly from the ball.

        Uses the standard construction: a Gaussian direction normalised to the
        sphere, scaled by ``U^(1/d)`` for a uniform radius distribution.
        Returns an array of shape ``(count, d)``.
        """
        dimension = self.dimension
        directions = rng.normal(size=(count, dimension))
        norms = np.linalg.norm(directions, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        directions = directions / norms
        radii = self.radius * rng.random(count) ** (1.0 / dimension)
        return self.center + directions * radii.reshape(count, 1)

    def bounding_box(self) -> list[tuple[float, float]]:
        """Axis-aligned bounding box of the ball."""
        return [
            (float(c - self.radius), float(c + self.radius)) for c in self.center
        ]

    def __repr__(self) -> str:
        return f"Ball(center={self.center.tolist()}, radius={self.radius})"
