"""Convex hulls of finite point sets.

The reconstruction method of Section 4.3 approximates a convex relation by the
convex hull of uniformly generated sample points (Lemma 4.1, based on the
Affentranger--Wieacker bound) and approximates general positive existential
queries by unions of such hulls (Algorithms 4--5).  This module wraps Qhull
(through :mod:`scipy.spatial`) and adds the degenerate cases Qhull rejects:
dimension one, too few points, and point sets that are not full-dimensional.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import ConvexHull as _SciPyConvexHull
from scipy.spatial import QhullError

from repro.geometry.polytope import HPolytope


@dataclass
class HullResult:
    """The convex hull of a finite point set.

    Attributes
    ----------
    vertices:
        The hull vertices, shape ``(num_vertices, d)``.
    volume:
        d-dimensional volume of the hull (0.0 when the hull is degenerate,
        i.e. not full-dimensional).
    polytope:
        H-representation of the hull, or ``None`` when degenerate.
    is_degenerate:
        True when the points do not span the ambient dimension.
    """

    vertices: np.ndarray
    volume: float
    polytope: HPolytope | None
    is_degenerate: bool

    @property
    def num_vertices(self) -> int:
        """Number of extreme points of the hull."""
        return int(self.vertices.shape[0])

    def contains(self, point: np.ndarray, tolerance: float = 1e-9) -> bool:
        """Membership in the hull (degenerate hulls contain only their vertices)."""
        if self.polytope is not None:
            return self.polytope.contains(point, tolerance=tolerance)
        point = np.asarray(point, dtype=float)
        return any(np.linalg.norm(point - vertex) <= tolerance for vertex in self.vertices)


def convex_hull(points: np.ndarray) -> HullResult:
    """Compute the convex hull of ``points`` (shape ``(n, d)``).

    Falls back to exact interval computation in dimension one and reports
    degenerate (lower-dimensional) hulls instead of raising.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError("points must be a 2-D array (one row per point)")
    count, dimension = points.shape
    if count == 0:
        return HullResult(np.zeros((0, dimension)), 0.0, None, True)
    if dimension == 0:
        return HullResult(np.zeros((1, 0)), 1.0, HPolytope(np.zeros((0, 0)), np.zeros(0)), False)
    if dimension == 1:
        lower = float(points.min())
        upper = float(points.max())
        vertices = np.array([[lower], [upper]]) if upper > lower else np.array([[lower]])
        if upper > lower:
            polytope = HPolytope.box([(lower, upper)])
            return HullResult(vertices, upper - lower, polytope, False)
        return HullResult(vertices, 0.0, None, True)
    if count <= dimension:
        return HullResult(np.unique(points, axis=0), 0.0, None, True)
    try:
        hull = _SciPyConvexHull(points)
    except QhullError:
        # The points are affinely dependent (not full-dimensional).
        return HullResult(np.unique(points, axis=0), 0.0, None, True)
    vertices = points[hull.vertices]
    # Qhull's equations are rows (normal, offset) with normal.x + offset <= 0.
    a = hull.equations[:, :-1]
    b = -hull.equations[:, -1]
    polytope = HPolytope(a, b)
    return HullResult(vertices, float(hull.volume), polytope, False)


def hull_volume(points: np.ndarray) -> float:
    """Volume of the convex hull of the points (0.0 when degenerate)."""
    return convex_hull(points).volume


def hull_polytope(points: np.ndarray) -> HPolytope:
    """H-representation of the hull; raises for degenerate point sets."""
    result = convex_hull(points)
    if result.polytope is None:
        raise ValueError("point set is not full-dimensional; the hull has no H-representation")
    return result.polytope
