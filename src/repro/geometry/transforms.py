"""Affine transformations of ``R^d``.

The Dyer--Frieze--Kannan procedure first applies a non-singular affine
transformation that makes the convex body *well-rounded* (contains the unit
ball, contained in a ball of radius polynomial in ``d``).  The
:class:`AffineTransform` class captures such maps, their inverses and their
effect on volumes (the Jacobian determinant), and is shared by the rounding
code, the samplers and the volume estimators.
"""

from __future__ import annotations

import numpy as np


class AffineTransform:
    """The invertible affine map ``x -> matrix @ x + offset``."""

    __slots__ = ("matrix", "offset", "_inverse_matrix")

    def __init__(self, matrix: np.ndarray, offset: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=float)
        offset = np.asarray(offset, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError("matrix must be square")
        if offset.shape != (matrix.shape[0],):
            raise ValueError("offset dimension must match the matrix")
        determinant = np.linalg.det(matrix)
        if abs(determinant) < 1e-300:
            raise ValueError("affine transform must be non-singular")
        self.matrix = matrix
        self.offset = offset
        self._inverse_matrix: np.ndarray | None = None

    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, dimension: int) -> "AffineTransform":
        """The identity map of ``R^dimension``."""
        return cls(np.eye(dimension), np.zeros(dimension))

    @classmethod
    def translation(cls, offset: np.ndarray) -> "AffineTransform":
        """Pure translation by ``offset``."""
        offset = np.asarray(offset, dtype=float)
        return cls(np.eye(offset.shape[0]), offset)

    @classmethod
    def scaling(cls, factors: np.ndarray | float, dimension: int | None = None) -> "AffineTransform":
        """Axis-aligned scaling; ``factors`` may be a scalar or per-axis vector."""
        if np.isscalar(factors):
            if dimension is None:
                raise ValueError("dimension required for scalar scaling")
            factors = np.full(dimension, float(factors))
        factors = np.asarray(factors, dtype=float)
        return cls(np.diag(factors), np.zeros(factors.shape[0]))

    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return self.matrix.shape[0]

    @property
    def determinant(self) -> float:
        """Jacobian determinant (volume scaling factor) of the map."""
        return float(np.linalg.det(self.matrix))

    @property
    def inverse_matrix(self) -> np.ndarray:
        """Cached inverse of the linear part."""
        if self._inverse_matrix is None:
            self._inverse_matrix = np.linalg.inv(self.matrix)
        return self._inverse_matrix

    # ------------------------------------------------------------------
    def apply(self, points: np.ndarray) -> np.ndarray:
        """Apply the map to one point (1-D array) or a batch (2-D, one row per point)."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            return self.matrix @ points + self.offset
        return points @ self.matrix.T + self.offset

    def apply_inverse(self, points: np.ndarray) -> np.ndarray:
        """Apply the inverse map to one point or a batch of points."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            return self.inverse_matrix @ (points - self.offset)
        return (points - self.offset) @ self.inverse_matrix.T

    def compose(self, inner: "AffineTransform") -> "AffineTransform":
        """Return the composition ``self ∘ inner`` (apply ``inner`` first)."""
        return AffineTransform(
            self.matrix @ inner.matrix, self.matrix @ inner.offset + self.offset
        )

    def inverse(self) -> "AffineTransform":
        """The inverse affine map."""
        inverse_matrix = self.inverse_matrix
        return AffineTransform(inverse_matrix, -inverse_matrix @ self.offset)

    def volume_scale(self) -> float:
        """Factor by which the map multiplies d-dimensional volumes."""
        return abs(self.determinant)

    def __repr__(self) -> str:
        return f"AffineTransform(dim={self.dimension}, det={self.determinant:.4g})"
