"""Exact volume computation for polytopes and generalized relations.

These routines are the *exact baselines* of the library:

* :func:`polytope_volume` — exact volume of a convex polytope through vertex
  enumeration and convex-hull triangulation (exponential in the dimension,
  the cost Lemma 3.1 accepts under the fixed-dimension hypothesis);
* :func:`relation_volume_exact` — exact volume of a DNF union of convex
  polytopes by inclusion–exclusion over the disjuncts (exponential in the
  number of disjuncts);
* :func:`grid_cell_volume` — the cell-counting volume of Lemma 3.1/3.2:
  decompose the bounding box into cubes of side ``gamma`` and count the cubes
  whose centre lies in the set (cost ``(R / gamma)^d``).

All of them are used to validate the randomized estimators of
:mod:`repro.volume` in the tests and benchmarks.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.geometry.hull import convex_hull
from repro.geometry.polytope import HPolytope


def polytope_volume(polytope: HPolytope) -> float:
    """Exact volume of a bounded convex polytope.

    The polytope's vertices are enumerated and the volume of their convex hull
    is computed by Qhull's triangulation.  Empty and lower-dimensional
    polytopes have volume ``0.0``.
    """
    if polytope.dimension == 0:
        return 1.0
    if polytope.is_empty():
        return 0.0
    vertices = polytope.vertices()
    if vertices.shape[0] <= polytope.dimension:
        return 0.0
    return convex_hull(vertices).volume


def tuple_volume(tuple_: GeneralizedTuple) -> float:
    """Exact volume of the convex set defined by a generalized tuple."""
    return polytope_volume(HPolytope.from_generalized_tuple(tuple_))


def relation_volume_exact(relation: GeneralizedRelation, max_disjuncts: int = 20) -> float:
    """Exact volume of a DNF generalized relation by inclusion–exclusion.

    ``vol(S_1 ∪ ... ∪ S_m) = Σ_{∅ ≠ J ⊆ [m]} (-1)^{|J|+1} vol(∩_{i∈J} S_i)``.

    The number of terms is ``2^m - 1``; ``max_disjuncts`` bounds ``m`` so that
    callers do not accidentally trigger an astronomically long computation.
    """
    disjuncts = [d for d in relation.disjuncts if not d.is_syntactically_empty()]
    if not disjuncts:
        return 0.0
    if len(disjuncts) > max_disjuncts:
        raise ValueError(
            f"inclusion–exclusion over {len(disjuncts)} disjuncts exceeds the limit "
            f"of {max_disjuncts}"
        )
    polytopes = [HPolytope.from_generalized_tuple(d) for d in disjuncts]
    total = 0.0
    for size in range(1, len(polytopes) + 1):
        sign = 1.0 if size % 2 == 1 else -1.0
        for subset in combinations(range(len(polytopes)), size):
            intersection = polytopes[subset[0]]
            for index in subset[1:]:
                intersection = intersection.intersect(polytopes[index])
            volume = polytope_volume(intersection)
            total += sign * volume
    return max(total, 0.0)


def grid_cell_volume(
    relation: GeneralizedRelation,
    cell_size: float,
    bounding_box: list[tuple[float, float]] | None = None,
) -> tuple[float, int]:
    """Cell-counting volume approximation of Lemma 3.1.

    The bounding box of the relation is decomposed into axis-aligned cubes of
    side ``cell_size``; a cube counts as inside when its centre belongs to the
    relation.  Returns ``(approximate_volume, cells_examined)`` so callers can
    report the exponential cost ``(R / gamma)^d`` explicitly.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")
    box = bounding_box if bounding_box is not None else _relation_bounding_box(relation)
    if box is None:
        raise ValueError("relation has no finite bounding box")
    dimension = relation.dimension
    axes = []
    for lower, upper in box:
        if upper <= lower:
            return 0.0, 0
        centers = np.arange(lower + cell_size / 2.0, upper, cell_size)
        if centers.size == 0:
            centers = np.array([(lower + upper) / 2.0])
        axes.append(centers)
    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.stack([m.ravel() for m in mesh], axis=1)
    cells_examined = points.shape[0]
    inside = 0
    for point in points:
        if relation.contains_point([float(v) for v in point]):
            inside += 1
    return inside * cell_size**dimension, cells_examined


def _relation_bounding_box(relation: GeneralizedRelation) -> list[tuple[float, float]] | None:
    """Bounding box of a relation: union of the LP boxes of its disjuncts."""
    box: list[tuple[float, float]] | None = None
    for disjunct in relation.disjuncts:
        polytope = HPolytope.from_generalized_tuple(disjunct)
        if polytope.is_empty():
            continue
        disjunct_box = polytope.bounding_box()
        if disjunct_box is None:
            return None
        if box is None:
            box = list(disjunct_box)
        else:
            box = [
                (min(current[0], new[0]), max(current[1], new[1]))
                for current, new in zip(box, disjunct_box)
            ]
    return box


def relation_bounding_box(relation: GeneralizedRelation) -> list[tuple[float, float]] | None:
    """Public wrapper around the per-disjunct LP bounding box computation."""
    return _relation_bounding_box(relation)
