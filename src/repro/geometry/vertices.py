"""Vertex enumeration for H-polytopes.

Vertices of ``{x : A x <= b}`` are intersection points of ``d`` linearly
independent active constraints that satisfy all remaining constraints.  The
brute-force enumeration over all ``C(m, d)`` constraint subsets is exponential
in the dimension; that cost is intrinsic (the number of vertices itself can be
exponential) and is exactly the kind of symbolic blow-up the paper's sampling
approach bypasses.  The function below is therefore used only for ground truth
in low dimension (exact volumes, reconstruction error measurement).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.geometry.polytope import HPolytope


class VertexEnumerationError(RuntimeError):
    """Raised when vertex enumeration would be too expensive or is ill-posed."""


def enumerate_vertices(
    polytope: HPolytope,
    tolerance: float = 1e-9,
    max_subsets: int = 2_000_000,
) -> np.ndarray:
    """Enumerate the vertices of a bounded H-polytope.

    Parameters
    ----------
    polytope:
        The polytope whose vertices are required.  It must be bounded;
        unbounded polyhedra raise :class:`VertexEnumerationError`.
    tolerance:
        Numerical tolerance for feasibility checks and vertex deduplication.
    max_subsets:
        Safety bound on the number of constraint subsets examined.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(num_vertices, d)``; empty when the polytope is empty.
    """
    dimension = polytope.dimension
    rows = polytope.num_constraints
    if dimension == 0:
        return np.zeros((1, 0))
    if rows < dimension:
        raise VertexEnumerationError(
            "polytope has fewer constraints than dimensions; it is unbounded"
        )
    subset_count = _binomial(rows, dimension)
    if subset_count > max_subsets:
        raise VertexEnumerationError(
            f"vertex enumeration would examine {subset_count} constraint subsets "
            f"(limit {max_subsets})"
        )

    a = polytope.a
    b = polytope.b
    candidates: list[np.ndarray] = []
    for subset in combinations(range(rows), dimension):
        sub_a = a[list(subset)]
        sub_b = b[list(subset)]
        try:
            point = np.linalg.solve(sub_a, sub_b)
        except np.linalg.LinAlgError:
            continue
        if not np.all(np.isfinite(point)):
            continue
        if np.all(a @ point <= b + tolerance):
            candidates.append(point)
    if not candidates:
        return np.zeros((0, dimension))
    return _deduplicate(np.array(candidates), tolerance=max(tolerance, 1e-9))


def _deduplicate(points: np.ndarray, tolerance: float) -> np.ndarray:
    """Remove near-duplicate rows (within Euclidean distance ``tolerance``)."""
    kept: list[np.ndarray] = []
    for point in points:
        if all(np.linalg.norm(point - other) > tolerance for other in kept):
            kept.append(point)
    return np.array(kept)


def _binomial(n: int, k: int) -> int:
    from math import comb

    return comb(n, k)
