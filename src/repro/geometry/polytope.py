"""H-polytopes: convex sets given by finitely many linear inequalities.

A generalized tuple over ``R_lin`` is a finite conjunction of linear
constraints, i.e. an intersection of halfspaces — a convex polyhedron.  The
:class:`HPolytope` class is the numeric (floating point) counterpart of
:class:`repro.constraints.tuples.GeneralizedTuple`: it stores the system
``A x <= b`` as NumPy arrays and supports the geometric queries that the
samplers and estimators need (membership, emptiness, Chebyshev ball, bounding
box, affine images, vertex enumeration and exact volume).

Strict inequalities and ``!=`` constraints are relaxed when converting from
the symbolic representation: the closure of the set has the same volume and
the samplers only care about full-dimensional mass.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import kernels
from repro.constraints.tuples import GeneralizedTuple
from repro.geometry.ball import Ball
from repro.geometry.linprog import chebyshev_center, coordinate_bounds, is_feasible
from repro.geometry.tolerances import DEFAULT_CONTAINMENT_TOLERANCE
from repro.geometry.transforms import AffineTransform


class Halfspace:
    """A single closed halfspace ``{x : normal . x <= offset}``."""

    __slots__ = ("normal", "offset")

    def __init__(self, normal: np.ndarray, offset: float) -> None:
        self.normal = np.asarray(normal, dtype=float)
        if self.normal.ndim != 1:
            raise ValueError("normal must be a 1-D vector")
        self.offset = float(offset)

    @property
    def dimension(self) -> int:
        """Ambient dimension of the halfspace."""
        return self.normal.shape[0]

    def contains(
        self, point: np.ndarray, tolerance: float = DEFAULT_CONTAINMENT_TOLERANCE
    ) -> bool:
        """Membership with an absolute tolerance (see :mod:`repro.geometry.tolerances`)."""
        return float(self.normal @ np.asarray(point, dtype=float)) <= self.offset + tolerance

    def __repr__(self) -> str:
        return f"Halfspace({self.normal.tolist()} . x <= {self.offset})"


class HPolytope:
    """A convex polyhedron ``{x in R^d : A x <= b}``.

    ``names`` optionally records the variable names corresponding to the
    coordinates, which allows round-tripping back to the symbolic layer.
    """

    __slots__ = ("a", "b", "names", "_chebyshev", "_box")

    def __init__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        names: Sequence[str] | None = None,
    ) -> None:
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float)
        if a.ndim != 2:
            raise ValueError("constraint matrix must be 2-D")
        if b.shape != (a.shape[0],):
            raise ValueError("right-hand side must have one entry per constraint row")
        self.a = a
        self.b = b
        if names is not None:
            names = tuple(names)
            if len(names) != a.shape[1]:
                raise ValueError("one name per coordinate is required")
        self.names = names
        self._chebyshev: tuple[np.ndarray, float] | None | bool = False
        self._box: list[tuple[float, float]] | None | bool = False

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_generalized_tuple(cls, tuple_: GeneralizedTuple) -> "HPolytope":
        """Convert a symbolic conjunction into a (closed) H-polytope."""
        rows, offsets, _strict = tuple_.inequality_matrix()
        dimension = tuple_.dimension
        if rows:
            a = np.array([[float(value) for value in row] for row in rows], dtype=float)
            b = np.array([float(value) for value in offsets], dtype=float)
        else:
            a = np.zeros((0, dimension))
            b = np.zeros(0)
        return cls(a, b, tuple_.variables)

    @classmethod
    def box(cls, bounds: Sequence[tuple[float, float]], names: Sequence[str] | None = None) -> "HPolytope":
        """Axis-aligned box from per-coordinate ``(lower, upper)`` bounds."""
        dimension = len(bounds)
        a = np.zeros((2 * dimension, dimension))
        b = np.zeros(2 * dimension)
        for axis, (lower, upper) in enumerate(bounds):
            if lower > upper:
                raise ValueError(f"empty interval on axis {axis}: [{lower}, {upper}]")
            a[2 * axis, axis] = -1.0
            b[2 * axis] = -float(lower)
            a[2 * axis + 1, axis] = 1.0
            b[2 * axis + 1] = float(upper)
        return cls(a, b, names)

    @classmethod
    def cube(cls, dimension: int, side: float = 1.0, center: np.ndarray | None = None) -> "HPolytope":
        """Axis-aligned cube of the given side length (centred at ``center``)."""
        if center is None:
            center = np.zeros(dimension)
        center = np.asarray(center, dtype=float)
        half = side / 2.0
        bounds = [(float(c - half), float(c + half)) for c in center]
        return cls.box(bounds)

    @classmethod
    def simplex(cls, dimension: int, scale: float = 1.0) -> "HPolytope":
        """The standard simplex ``{x >= 0, sum(x) <= scale}``."""
        a = np.vstack([-np.eye(dimension), np.ones((1, dimension))])
        b = np.concatenate([np.zeros(dimension), [float(scale)]])
        return cls(a, b)

    @classmethod
    def cross_polytope(cls, dimension: int, scale: float = 1.0) -> "HPolytope":
        """The L1 ball (cross-polytope) ``{x : sum |x_i| <= scale}``."""
        signs = np.array(np.meshgrid(*[[-1.0, 1.0]] * dimension)).T.reshape(-1, dimension)
        a = signs
        b = np.full(signs.shape[0], float(scale))
        return cls(a, b)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Ambient dimension d."""
        return self.a.shape[1]

    @property
    def num_constraints(self) -> int:
        """Number of inequality rows."""
        return self.a.shape[0]

    def contains(
        self, point: np.ndarray, tolerance: float = DEFAULT_CONTAINMENT_TOLERANCE
    ) -> bool:
        """Membership test for a single point (additive tolerance; see
        :mod:`repro.geometry.tolerances`)."""
        point = np.asarray(point, dtype=float)
        if self.a.shape[0] == 0:
            return True
        return bool(np.all(self.a @ point <= self.b + tolerance))

    def contains_points(
        self, points: np.ndarray, tolerance: float = DEFAULT_CONTAINMENT_TOLERANCE
    ) -> np.ndarray:
        """Vectorised membership test; returns a boolean array of length ``len(points)``.

        Dispatches to the active :mod:`repro.kernels` backend; every backend
        is bit-identical to the NumPy reference expression
        ``np.all(points @ a.T <= b + tolerance, axis=1)``.
        """
        points = np.asarray(points, dtype=float)
        return kernels.membership_mask(self.a, self.b, points, tolerance)

    def is_empty(self) -> bool:
        """Is the (closed) polytope empty?  Decided by linear programming."""
        return not is_feasible(self.a, self.b)

    def is_bounded(self) -> bool:
        """Is the polytope bounded in every coordinate direction?"""
        return self.bounding_box() is not None

    # ------------------------------------------------------------------
    # Metric structure
    # ------------------------------------------------------------------
    def chebyshev_ball(self) -> Ball | None:
        """Largest inscribed ball (``None`` for empty or unbounded-radius bodies)."""
        if self._chebyshev is False:
            self._chebyshev = chebyshev_center(self.a, self.b)
        if self._chebyshev is None:
            return None
        center, radius = self._chebyshev
        return Ball(center, radius)

    def bounding_box(self) -> list[tuple[float, float]] | None:
        """Tight axis-aligned bounding box via LP (``None`` when unbounded/empty)."""
        if self._box is False:
            if self.a.shape[0] == 0:
                self._box = None
            elif self.is_empty():
                self._box = None
            else:
                self._box = coordinate_bounds(self.a, self.b, self.dimension)
        return self._box

    def warm(self) -> "HPolytope":
        """Materialise the cached Chebyshev ball and bounding box.

        Both caches are linear programs; warming before pickling (the batch
        executor's process backend ships H-representations to worker
        processes once per batch) means each worker receives them solved
        instead of re-solving per request.  The caches are part of the
        default pickle state already — this only fills them eagerly.
        Returns ``self`` for chaining.
        """
        self.chebyshev_ball()
        self.bounding_box()
        return self

    def enclosing_ball(self) -> Ball | None:
        """A ball containing the polytope (circumscribing its bounding box)."""
        box = self.bounding_box()
        if box is None:
            return None
        lower = np.array([interval[0] for interval in box])
        upper = np.array([interval[1] for interval in box])
        center = (lower + upper) / 2.0
        radius = float(np.linalg.norm(upper - center))
        return Ball(center, radius)

    def well_bounded_radii(self) -> tuple[float, float] | None:
        """The pair ``(r_inf, r_sup)`` witnessing well-boundedness, or ``None``.

        ``r_inf`` is the radius of the Chebyshev (inscribed) ball and
        ``r_sup`` the radius of the bounding-box circumscribed ball.  The
        paper's well-boundedness requires both to be positive and finite.
        """
        inner = self.chebyshev_ball()
        outer = self.enclosing_ball()
        if inner is None or outer is None or inner.radius <= 0.0:
            return None
        return inner.radius, outer.radius

    # ------------------------------------------------------------------
    # Constructive operations
    # ------------------------------------------------------------------
    def intersect(self, other: "HPolytope") -> "HPolytope":
        """Intersection of two polytopes in the same ambient space."""
        if other.dimension != self.dimension:
            raise ValueError("polytopes live in different dimensions")
        return HPolytope(
            np.vstack([self.a, other.a]),
            np.concatenate([self.b, other.b]),
            self.names,
        )

    def with_halfspace(self, halfspace: Halfspace) -> "HPolytope":
        """Polytope further cut by one halfspace."""
        if halfspace.dimension != self.dimension:
            raise ValueError("halfspace dimension mismatch")
        return HPolytope(
            np.vstack([self.a, halfspace.normal.reshape(1, -1)]),
            np.concatenate([self.b, [halfspace.offset]]),
            self.names,
        )

    def translate(self, offset: np.ndarray) -> "HPolytope":
        """Polytope translated by ``offset``."""
        offset = np.asarray(offset, dtype=float)
        return HPolytope(self.a, self.b + self.a @ offset, self.names)

    def transform(self, transform: AffineTransform) -> "HPolytope":
        """Image of the polytope under an invertible affine map.

        If ``K = {x : A x <= b}`` and ``T(x) = M x + t`` then
        ``T(K) = {y : A M^{-1} y <= b + A M^{-1} t}``.
        """
        inverse = transform.inverse_matrix
        new_a = self.a @ inverse
        new_b = self.b + new_a @ transform.offset
        return HPolytope(new_a, new_b, self.names)

    def restrict_to_box(self, bounds: Sequence[tuple[float, float]]) -> "HPolytope":
        """Intersection with an axis-aligned box (used to bound unbounded bodies)."""
        return self.intersect(HPolytope.box(bounds))

    # ------------------------------------------------------------------
    # Exact structure (exponential-cost operations, used as ground truth)
    # ------------------------------------------------------------------
    def vertices(self, tolerance: float = 1e-9) -> np.ndarray:
        """Vertex enumeration (exact, exponential in the dimension).

        Implemented in :mod:`repro.geometry.vertices`; provided here as a
        method for convenience.
        """
        from repro.geometry.vertices import enumerate_vertices

        return enumerate_vertices(self, tolerance=tolerance)

    def volume(self) -> float:
        """Exact volume via vertex enumeration and convex-hull triangulation.

        Exponential in the dimension — this is the fixed-dimension exact
        baseline of Lemma 3.1, not the polynomial-time estimator.
        """
        from repro.geometry.volume import polytope_volume

        return polytope_volume(self)

    def to_generalized_tuple(self, names: Sequence[str] | None = None) -> GeneralizedTuple:
        """Convert back to a symbolic conjunction with the given variable names."""
        from fractions import Fraction

        from repro.constraints.atoms import AtomicConstraint, Relation
        from repro.constraints.terms import LinearTerm

        if names is None:
            names = self.names
        if names is None:
            names = tuple(f"x{index + 1}" for index in range(self.dimension))
        names = tuple(names)
        if len(names) != self.dimension:
            raise ValueError("one name per coordinate is required")
        constraints = []
        for row, offset in zip(self.a, self.b):
            coefficients = {
                name: Fraction(float(value)).limit_denominator(10**12)
                for name, value in zip(names, row)
                if abs(float(value)) > 0.0
            }
            term = LinearTerm(coefficients, -Fraction(float(offset)).limit_denominator(10**12))
            constraints.append(AtomicConstraint(term, Relation.LE))
        return GeneralizedTuple(constraints, names)

    def __repr__(self) -> str:
        return f"HPolytope(dim={self.dimension}, constraints={self.num_constraints})"
