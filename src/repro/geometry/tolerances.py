"""The shared containment-tolerance contract for geometric membership.

Every boundary-sensitive membership predicate in :mod:`repro.geometry`
(`Halfspace.contains`, `HPolytope.contains`/`contains_points`,
`Ball.contains`/`contains_points`) accepts points within an **additive**
slack of the exact boundary: ``A x <= b + tol`` for halfspace systems and
``||x - c|| <= r + tol`` for balls.

Historically the polytope predicates defaulted to ``1e-9`` while the ball
predicates defaulted to ``0.0``, so a point lying exactly on a shared
boundary could be "inside" the polytope description of a body but "outside"
its ball description.  All defaults now share this single constant.

The contract:

* The tolerance is absolute, not relative — callers working with very large
  coordinates should pass an explicit tolerance scaled to their data.
* ``tolerance=0.0`` gives the closed set exactly (boundary included, float
  arithmetic permitting); the default admits points up to ``1e-9`` outside,
  which is volume-negligible for the estimators while making membership
  robust to the one-ulp rounding of the exact→float lowering documented in
  :meth:`repro.constraints.tuples.GeneralizedTuple.float_system`.
* Monte-Carlo estimates are unaffected in distribution: the slab of points
  affected by the slack has measure ~``tol``·(surface area), far below the
  statistical resolution of any sample budget the planner will grant.
"""

from __future__ import annotations

#: Default additive slack for all `contains`/`contains_points` predicates.
DEFAULT_CONTAINMENT_TOLERANCE = 1e-9
