"""Plain-text table formatting for experiment output.

The benchmark harness prints the rows and series the experiments produce in a
fixed-width layout (and a Markdown variant for ``EXPERIMENTS.md``), so that
the "tables" of DESIGN.md's experiment index can be regenerated with a single
command and pasted into the documentation unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width text table."""
    rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    header_line = "  ".join(header.ljust(widths[index]) for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_format_cell(cell) for cell in row) + " |")
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)
