"""Benchmark harness: experiment registry, result containers, table formatting."""

from repro.harness.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    register_experiment,
    run_registered,
)
from repro.harness.tables import format_markdown_table, format_table

__all__ = [
    "EXPERIMENT_REGISTRY",
    "ExperimentResult",
    "register_experiment",
    "run_registered",
    "format_markdown_table",
    "format_table",
]
