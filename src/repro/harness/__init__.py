"""Benchmark harness: experiment registry, result containers, table formatting."""

from repro.harness.experiments import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    register_experiment,
    run_registered,
    service_metrics_result,
)
from repro.harness.tables import format_markdown_table, format_table

__all__ = [
    "EXPERIMENT_REGISTRY",
    "ExperimentResult",
    "register_experiment",
    "run_registered",
    "service_metrics_result",
    "format_markdown_table",
    "format_table",
]
