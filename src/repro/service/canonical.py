"""Canonicalization of queries and databases for cache keying.

Two requests should share a cache entry exactly when they denote the same
set over the same data.  Deciding semantic equivalence of FO+LIN queries is
as hard as evaluating them, so the service settles for a *structural*
canonical form: the query's logical plan (:mod:`repro.plan`), whose content
digest already normalises the cheap, common sources of syntactic variation
— nested conjunctions/disjunctions are flattened, operands of ``AND``/``OR``
are order-normalized and de-duplicated (commutativity and idempotence),
double negation is eliminated, negated conjuncts collect into one
difference, the bound-variable tuple of an existential quantifier is sorted,
and constraint atoms rely on
:class:`~repro.constraints.atoms.AtomicConstraint`'s canonical
``term <rel> 0`` form with exact rational coefficients.

Deriving request keys from *plan* digests is what makes subplan-granular
caching line up with whole-query caching: a request's canonical form is the
same digest its query would carry as a subplan of a larger query.  (The two
entry kinds still live in disjoint key namespaces — ``kind`` and execution
context are folded into the hash — subplan entries additionally discriminate
on the phase budget; what lines up is the *identity*, not the cache slots.)

Query shapes with no plan form (a bare top-level complement — unbounded,
never servable) fall back to a legacy structural rendering, so every AST
keeps a stable key.  A database *fingerprint* — a hash of every stored
relation's name, variable order and defining DNF formula — is folded into
each request key so that mutating the database invalidates all of its
entries at once.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.constraints.database import ConstraintDatabase
from repro.plan.canonical import build_plan
from repro.plan.nodes import CompilationError
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query


def canonical_query(query: Query) -> str:
    """A stable, structurally canonical serialization of a query AST.

    The canonical form *is* the logical plan's content digest; shapes the
    plan IR cannot express fall back to a legacy structural rendering
    (prefixed so the two namespaces can never collide).
    """
    try:
        return build_plan(query).digest
    except CompilationError:
        return "legacy:" + _legacy_canonical(query)


def subplan_key(fingerprint: str, digest: str, kind: str, extra: tuple = ()) -> str:
    """The cache key of one subplan-granular entry.

    Mirrors :func:`request_key` with a plan digest in place of a query: the
    sharing broker stores union-member volume estimates under these keys, so
    any query containing the subtree — on any backend — finds them.
    """
    payload = "\x1f".join((kind, fingerprint, digest, *map(str, extra)))
    return hashlib.sha256(payload.encode()).hexdigest()


def _legacy_canonical(query: Query) -> str:
    """The pre-plan-IR structural rendering (kept for planless shapes)."""
    if isinstance(query, QRelation):
        return f"R:{query.name}({','.join(query.arguments)})"
    if isinstance(query, QConstraint):
        return f"C:{query.constraint}"
    if isinstance(query, QNot):
        inner = query.operand
        if isinstance(inner, QNot):
            return _legacy_canonical(inner.operand)
        if isinstance(inner, QConstraint):
            # Push negation into the atom: ¬(t <= 0) canonicalises to t > 0,
            # which AtomicConstraint renders back in term-relation-zero form.
            return f"C:{inner.constraint.negate()}"
        return f"NOT({_legacy_canonical(inner)})"
    if isinstance(query, (QAnd, QOr)):
        tag = "AND" if isinstance(query, QAnd) else "OR"
        parts = sorted(set(_flatten(query, type(query))))
        if len(parts) == 1:
            return parts[0]
        return f"{tag}({';'.join(parts)})"
    if isinstance(query, QExists):
        variables = ",".join(sorted(query.variables))
        return f"EX[{variables}]({_legacy_canonical(query.operand)})"
    raise TypeError(f"unsupported query node {query!r}")


def _flatten(query: Query, node_type: type) -> Iterable[str]:
    """Canonical operand strings of a (possibly nested) AND/OR chain."""
    for operand in query.operands:
        if isinstance(operand, node_type):
            yield from _flatten(operand, node_type)
        else:
            yield _legacy_canonical(operand)


def database_fingerprint(database: ConstraintDatabase) -> str:
    """A hash of the database contents, stable across processes.

    Relation names, their schema variable order and the exact textual DNF of
    every instance feed the digest; the rendering uses exact rational
    coefficients, so the fingerprint never suffers floating point drift.
    """
    digest = hashlib.sha256()
    for name in sorted(database.names()):
        relation = database.relation(name)
        digest.update(name.encode())
        digest.update(b"|")
        digest.update(",".join(relation.variables).encode())
        digest.update(b"|")
        digest.update(str(relation).encode())
        digest.update(b"#")
    return digest.hexdigest()


def request_key(
    query: Query,
    database: ConstraintDatabase | str,
    kind: str = "volume",
    extra: tuple = (),
) -> str:
    """The cache key of one request: query structure + data + request kind.

    ``database`` accepts a precomputed fingerprint string so batch callers can
    amortise the fingerprint over many keys.  ``extra`` folds in any further
    discriminating parameters (*not* ε/δ — accuracy is handled by the cache's
    dominance rule, see :mod:`repro.service.cache`).
    """
    fingerprint = (
        database if isinstance(database, str) else database_fingerprint(database)
    )
    payload = "\x1f".join(
        (kind, fingerprint, canonical_query(query), *map(str, extra))
    )
    return hashlib.sha256(payload.encode()).hexdigest()
