"""Canonicalization of queries and databases for cache keying.

Two requests should share a cache entry exactly when they denote the same
set over the same data.  Deciding semantic equivalence of FO+LIN queries is
as hard as evaluating them, so the service settles for a *structural*
canonical form: the query's logical plan (:mod:`repro.plan`), whose content
digest already normalises the cheap, common sources of syntactic variation
— nested conjunctions/disjunctions are flattened, operands of ``AND``/``OR``
are order-normalized and de-duplicated (commutativity and idempotence),
double negation is eliminated, negated conjuncts collect into one
difference, the bound-variable tuple of an existential quantifier is sorted,
and constraint atoms rely on
:class:`~repro.constraints.atoms.AtomicConstraint`'s canonical
``term <rel> 0`` form with exact rational coefficients.

Deriving request keys from *plan* digests is what makes subplan-granular
caching line up with whole-query caching: a request's canonical form is the
same digest its query would carry as a subplan of a larger query.  (The two
entry kinds still live in disjoint key namespaces — ``kind`` and execution
context are folded into the hash — subplan entries additionally discriminate
on the phase budget; what lines up is the *identity*, not the cache slots.)

Query shapes with no plan form (a bare top-level complement — unbounded,
never servable) fall back to a legacy structural rendering, so every AST
keeps a stable key.

The *data* half of a key is plan-aware: a :class:`DatabaseFingerprint`
records one digest per stored relation next to the whole-database hash, and
a request key folds in only the restriction to the relations its plan
actually scans.  A query over relation ``A`` therefore keeps its key — and
its cache entries, in memory and on disk — when relation ``B`` is mutated;
only entries whose plans reference the changed relation move to new keys.
Planless shapes conservatively use the full fingerprint, so any mutation
invalidates them.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping, Optional

from repro.constraints.database import ConstraintDatabase
from repro.plan.canonical import build_plan
from repro.plan.nodes import CompilationError, referenced_relations
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query


def _hash(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()


#: Fingerprint component standing in for a relation the database lacks.
#: A plan scanning an undefined relation fails at execution, but its *key*
#: must still be stable and must still react if the relation later appears.
_MISSING = "<missing>"


class DatabaseFingerprint:
    """Per-relation content digests plus the whole-database hash.

    ``full`` is the blunt fingerprint (hash over every relation) that pre-dates
    plan-aware keying; ``restrict(names)`` hashes only the named relations'
    digests, which is what plan-aware request keys fold in.  Restrictions are
    memoised — a batch of requests over the same footprint pays for one hash.

    Instances are immutable snapshots: mutate the database, take a new index,
    and diff ``relations`` against the old one to learn which relations
    actually changed.  The class is picklable (process backends ship it to
    workers so subplan seeds derive identically on both sides).
    """

    __slots__ = ("full", "relations", "_restricted")

    def __init__(self, full: str, relations: Mapping[str, str]) -> None:
        self.full = full
        self.relations = dict(relations)
        self._restricted: dict[tuple[str, ...], str] = {}

    def restrict(self, names: Optional[Iterable[str]]) -> str:
        """The fingerprint of the sub-database the named relations span.

        ``None`` means "unknown footprint" and yields the full fingerprint
        (the conservative choice for planless queries).  Names are sorted and
        de-duplicated, so any iterable ordering produces the same digest; a
        name with no stored relation contributes a marker component, keeping
        the key reactive to the relation's later creation.
        """
        if names is None:
            return self.full
        footprint = tuple(sorted(set(names)))
        cached = self._restricted.get(footprint)
        if cached is None:
            parts = (
                f"{name}={self.relations.get(name, _MISSING)}" for name in footprint
            )
            cached = _hash("rel-fp:" + "|".join(parts))
            self._restricted[footprint] = cached
        return cached

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DatabaseFingerprint)
            and self.full == other.full
            and self.relations == other.relations
        )

    def __hash__(self) -> int:
        return hash(self.full)

    def __repr__(self) -> str:
        return f"DatabaseFingerprint({self.full[:12]}…, {len(self.relations)} relations)"

    def __getstate__(self) -> tuple[str, dict[str, str]]:
        return (self.full, self.relations)

    def __setstate__(self, state: tuple[str, dict[str, str]]) -> None:
        self.full, self.relations = state
        self._restricted = {}


def relation_fingerprint(name: str, relation: object) -> str:
    """The content digest of one stored relation instance."""
    variables = ",".join(getattr(relation, "variables", ()))
    return _hash(f"{name}|{variables}|{relation}")


def fingerprint_index(database: ConstraintDatabase) -> DatabaseFingerprint:
    """Snapshot the database as a :class:`DatabaseFingerprint`.

    The per-relation digests let cache keys embed only the *restriction*
    of the fingerprint to a plan's footprint
    (``fingerprint_index(db).restrict(("Zone",))``), so mutating one
    relation moves the keys of exactly the plans that scan it.
    """
    relations: dict[str, str] = {}
    digest = hashlib.sha256()
    for name in sorted(database.names()):
        relation = database.relation(name)
        digest.update(name.encode())
        digest.update(b"|")
        digest.update(",".join(relation.variables).encode())
        digest.update(b"|")
        digest.update(str(relation).encode())
        digest.update(b"#")
        relations[name] = relation_fingerprint(name, relation)
    return DatabaseFingerprint(digest.hexdigest(), relations)


def plan_identity(query: "Query") -> tuple[str, Optional[tuple[str, ...]]]:
    """The canonical digest of a query plus its relation footprint.

    Returns ``(digest, relations)`` where ``relations`` is the sorted tuple
    of stored-relation names the plan scans — or ``None`` for planless
    shapes, whose footprint is unknown and must be treated as "everything".
    """
    try:
        plan = build_plan(query)
    except CompilationError:
        return "legacy:" + _legacy_canonical(query), None
    return plan.digest, referenced_relations(plan)


def canonical_query(query: "Query") -> str:
    """A stable, structurally canonical serialization of a query AST.

    The canonical form *is* the logical plan's content digest; shapes the
    plan IR cannot express fall back to a legacy structural rendering
    (prefixed so the two namespaces can never collide).  Structurally
    equivalent queries canonicalize identically:
    ``canonical_query(parse_query("A(x) and B(x)", db)) ==
    canonical_query(parse_query("B(x) and A(x)", db))``.
    """
    return plan_identity(query)[0]


def compose_key(
    kind: str, fingerprint: str, digest: str, extra: tuple = ()
) -> str:
    """Assemble a cache key from pre-resolved components.

    ``compose_key(canonical, fingerprint)`` hashes a canonical query form
    together with a (restricted) database fingerprint — the primitive
    under :func:`request_key` and :func:`subplan_key`, exposed for callers
    that already hold both parts.
    """
    payload = "\x1f".join((kind, fingerprint, digest, *map(str, extra)))
    return hashlib.sha256(payload.encode()).hexdigest()


def subplan_key(fingerprint: str, digest: str, kind: str, extra: tuple = ()) -> str:
    """The cache key of one subplan-granular entry.

    Mirrors :func:`request_key` with a plan digest in place of a query: the
    sharing broker stores union-member volume estimates under these keys, so
    any query containing the subtree — on any backend — finds them.
    ``fingerprint`` should be the restriction to the subtree's footprint so
    the entry survives mutations of unrelated relations.
    """
    return compose_key(kind, fingerprint, digest, extra)


def _legacy_canonical(query: "Query") -> str:
    """The pre-plan-IR structural rendering (kept for planless shapes)."""
    if isinstance(query, QRelation):
        return f"R:{query.name}({','.join(query.arguments)})"
    if isinstance(query, QConstraint):
        return f"C:{query.constraint}"
    if isinstance(query, QNot):
        inner = query.operand
        if isinstance(inner, QNot):
            return _legacy_canonical(inner.operand)
        if isinstance(inner, QConstraint):
            # Push negation into the atom: ¬(t <= 0) canonicalises to t > 0,
            # which AtomicConstraint renders back in term-relation-zero form.
            return f"C:{inner.constraint.negate()}"
        return f"NOT({_legacy_canonical(inner)})"
    if isinstance(query, (QAnd, QOr)):
        tag = "AND" if isinstance(query, QAnd) else "OR"
        parts = sorted(set(_flatten(query, type(query))))
        if len(parts) == 1:
            return parts[0]
        return f"{tag}({';'.join(parts)})"
    if isinstance(query, QExists):
        variables = ",".join(sorted(query.variables))
        return f"EX[{variables}]({_legacy_canonical(query.operand)})"
    raise TypeError(f"unsupported query node {query!r}")


def _flatten(query: "Query", node_type: type) -> Iterable[str]:
    """Canonical operand strings of a (possibly nested) AND/OR chain."""
    for operand in query.operands:
        if isinstance(operand, node_type):
            yield from _flatten(operand, node_type)
        else:
            yield _legacy_canonical(operand)


def database_fingerprint(database: ConstraintDatabase) -> str:
    """A hash of the database contents, stable across processes.

    Relation names, their schema variable order and the exact textual DNF of
    every instance feed the digest; the rendering uses exact rational
    coefficients, so the fingerprint never suffers floating point drift.
    Two processes holding equal databases compute equal fingerprints
    (``database_fingerprint(db) == database_fingerprint(copy)``) — the
    property the persistent store's cross-process reuse rests on.
    """
    return fingerprint_index(database).full


def request_key(
    query: "Query",
    database: "ConstraintDatabase | str | DatabaseFingerprint",
    kind: str = "volume",
    extra: tuple = (),
) -> str:
    """The cache key of one request: query structure + data + request kind.

    The data component is *plan-aware* when possible: given a database (or a
    precomputed :class:`DatabaseFingerprint`), the key folds in only the
    restriction to the relations the query's plan scans, so mutating an
    unreferenced relation leaves the key — and its cache entries — intact.
    A plain string fingerprint is used as-is (blunt whole-database keying,
    kept for callers that amortise one fingerprint over many keys and accept
    full invalidation on any mutation).  ``extra`` folds in any further
    discriminating parameters (*not* ε/δ — accuracy is handled by the cache's
    dominance rule, see :mod:`repro.service.cache`).
    """
    digest, relations = plan_identity(query)
    if isinstance(database, str):
        fingerprint = database
    else:
        index = (
            database
            if isinstance(database, DatabaseFingerprint)
            else fingerprint_index(database)
        )
        fingerprint = index.restrict(relations)
    return compose_key(kind, fingerprint, digest, extra)
