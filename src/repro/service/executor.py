"""Deterministic multi-backend batch execution.

:func:`execute_batch` serves a list of requests in four phases:

1. **resolve** (sequential) — every request gets a cache key and a dedicated
   child seed derived upfront with :func:`repro.sampling.rng.spawn_seeds`.
   Cache lookups run against the cache state *at batch start*, so which
   requests hit is independent of worker scheduling.
2. **plan** (sequential) — cache misses are de-duplicated by key and each
   unique miss becomes a self-contained :class:`~repro.service.backends.WorkUnit`
   (query, plan, seed, fingerprint).  Planning is cheap (a structural scan),
   and doing it upfront lets the planner recommend an execution backend from
   the plans' estimated cost before any work starts.  The telescoping misses
   then form one shared plan *forest*: union members demanded by several
   plans are estimated once, parent-side, from their content-addressed
   streams (:func:`repro.service.sharing.prepare_shared_members`), so common
   subexpressions are planned, sampled and estimated a single time across
   the whole batch.
3. **compute** (backend) — the work units are handed to an
   :class:`~repro.service.backends.ExecutionBackend`: serially, across a
   thread pool, or sharded over worker processes.  Each unit consumes only
   its own seeded stream, so the produced numbers are bit-identical for any
   backend choice, worker count and block size.
4. **commit** (sequential) — results are stored into the cache in first-
   occurrence order, execution metrics are recorded, and the outcomes are
   assembled in request order.

Failures inside a backend — whatever thread or process they happen on — are
surfaced as :class:`~repro.service.backends.BatchExecutionError`, which names
the originating batch request index instead of letting the pool raise bare.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import Sequence

from repro.queries.aggregates import AggregateResult
from repro.queries.ast import Query
from repro.sampling.rng import RandomState, ensure_rng, spawn_seeds
from repro.service.backends import ExecutionBackend, WorkUnit, resolve_backend
from repro.service.planner import Plan
from repro.telemetry.tracer import activate

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class BatchRequest:
    """One volume request of a batch (accuracy defaults to the session's).

    A thin value object: ``BatchRequest(query, epsilon=0.1, delta=0.05)``.
    Lists of these are what :meth:`ServiceSession.submit_batch` consumes;
    ``epsilon``/``delta`` of ``None`` inherit the session defaults.
    """

    query: Query
    epsilon: float | None = None
    delta: float | None = None


@dataclass
class BatchOutcome:
    """The served answer for one batch position.

    Attributes
    ----------
    index:
        Position of the request in the submitted batch.
    key:
        The structural cache key the request resolved to.
    result:
        The aggregate answer.
    cached:
        ``True`` when the answer came from the pre-batch cache state.
    plan:
        The plan executed for the *unique* computation of this key
        (``None`` for cache hits).
    backend:
        Name of the execution backend that computed this key (``None`` for
        cache hits).
    """

    index: int
    key: str
    result: AggregateResult
    cached: bool
    plan: Plan | None
    backend: str | None = None


def execute_batch(
    session,
    requests: Sequence[BatchRequest | Query],
    workers: int = 1,
    rng: RandomState = None,
    block_size: int | None = None,
    backend: ExecutionBackend | str | None = None,
) -> list[BatchOutcome]:
    """Serve a batch of volume requests, deterministically, on any backend.

    Bare :class:`~repro.queries.ast.Query` values are accepted and wrapped in
    default-accuracy :class:`BatchRequest` objects.  ``backend`` selects how
    unique misses are computed — ``"serial"``, ``"thread"``, ``"process"``,
    an :class:`~repro.service.backends.ExecutionBackend` instance, or
    ``None`` to let the planner recommend one from the plans' estimated cost
    and the measured per-sample throughput.  With a fixed ``rng`` seed the
    returned values are bit-identical for every choice of backend, of
    ``workers`` **and** of ``block_size`` — scheduling only decides *where*
    independent computations run, and the batch kernels' block size only
    shapes how many proposals each oracle call judges, never which proposals
    are drawn or how they are counted.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if block_size is not None and block_size < 1:
        raise ValueError("block_size must be at least 1")
    normalized = [
        request if isinstance(request, BatchRequest) else BatchRequest(request)
        for request in requests
    ]
    if not normalized:
        return []
    root = ensure_rng(rng)
    seeds = spawn_seeds(root, len(normalized))
    session.metrics.record_batch(len(normalized))

    # The whole batch runs under one "submit_batch" root span in the
    # session's tracer (a no-op context manager when tracing is off).
    # ``activate`` pins the tracer in this task's context so the phase
    # spans, the thread pool's copied contexts and every kernel counter
    # attach to it.
    tracer = session.tracer
    with activate(tracer), tracer.span(
        "submit_batch", requests=len(normalized), workers=workers
    ) as batch_span:
        return _run_batch_phases(
            session, normalized, seeds, workers, block_size, backend, batch_span
        )


def _run_batch_phases(
    session,
    normalized: list[BatchRequest],
    seeds,
    workers: int,
    block_size: int | None,
    backend: ExecutionBackend | str | None,
    batch_span,
) -> list[BatchOutcome]:
    """The four batch phases, traced under ``batch_span`` (see module doc)."""
    tracer = session.tracer

    # Phase 1 — resolve keys and consult the pre-batch cache state.
    resolved = []  # (index, key, epsilon, delta, cached_result | None)
    unique: dict[str, tuple[int, float, float]] = {}
    metas = {}  # key -> EntryMeta (store provenance for the commit phase)
    with tracer.span("batch-resolve") as resolve_span:
        for index, request in enumerate(normalized):
            epsilon, delta = session._resolve_accuracy(request.epsilon, request.delta)
            key, meta = session.resolve_request(request.query)
            metas[key] = meta
            cached, dominance = session.cache.lookup(key, epsilon, delta)
            if cached is not None:
                session.metrics.record_cache_hit(dominance=dominance)
                session.observatory.record_hit(
                    meta.digest, "dominance" if dominance else "memory"
                )
            else:
                session.metrics.record_cache_miss()
                if key not in unique:
                    unique[key] = (index, epsilon, delta)
                else:
                    session.metrics.record_coalesced()
                    # A duplicate miss still wants the *tightest* accuracy asked
                    # for in this batch, so one computation satisfies all copies.
                    first_index, best_eps, best_delta = unique[key]
                    unique[key] = (
                        first_index, min(best_eps, epsilon), min(best_delta, delta)
                    )
            resolved.append((index, key, epsilon, delta, cached))
        resolve_span.annotate(
            hits=sum(1 for entry in resolved if entry[4] is not None),
            misses=len(unique),
        )

    # Phase 2 — plan each unique miss and package it as a work unit.  A miss
    # whose cached entry is too loose but *refinable* (an adaptive answer
    # whose δ covers the request) carries that resumable state along: the
    # backend continues it instead of recomputing, falling back to the plan
    # only if the continuation cannot certify the target.  Like the cache
    # lookups, refinables are resolved against the pre-batch cache state.
    units: list[WorkUnit] = []
    with tracer.span("batch-plan"):
        for key, (first_index, epsilon, delta) in unique.items():
            request = normalized[first_index]
            plan = session.planner.plan(
                request.query, session.database, epsilon=epsilon, delta=delta
            )
            if block_size is not None and plan.block_size:
                plan = replace(plan, block_size=block_size)
            # Exact plans always execute — instant, error-free, dominating —
            # so only the sampling routes are offered a cached continuation.
            refinable_entry = (
                None
                if plan.estimator == "exact"
                else session.cache.refinable_lookup(key, epsilon, delta)
            )
            units.append(
                WorkUnit(
                    index=first_index,
                    key=key,
                    query=request.query,
                    plan=plan,
                    seed=seeds[first_index],
                    fingerprint=session.fingerprint,
                    refinable=(
                        None if refinable_entry is None else refinable_entry.refinable
                    ),
                )
            )

    # Phase 2.5 — the shared plan forest: compile the telescoping misses
    # (through the session's memoising cache) and estimate every union
    # member demanded by more than one plan exactly once, parent-side, from
    # its content-addressed stream.  All three backends then consume the
    # same precomputed values: sharing changes where a member volume is
    # computed, never its value, and no worker duplicates a shared node.
    telescoping_units = [
        unit for unit in units if unit.plan.estimator == "telescoping"
    ]
    if len(telescoping_units) > 1 and getattr(session, "share_subplans", False):
        from repro.service.sharing import prepare_shared_members

        with tracer.span("prepare-shared-members", units=len(telescoping_units)):
            prepare_shared_members(session, telescoping_units)

    # Phase 3 — compute the units on the chosen (or recommended) backend.
    computed: dict[str, tuple[AggregateResult, Plan]] = {}
    chosen: ExecutionBackend | None = None
    if units:
        if backend is not None:
            chosen = resolve_backend(backend)
        else:
            recommended = session.planner.recommend_backend(
                [unit.plan for unit in units], workers
            )
            chosen = resolve_backend(recommended)
        logger.debug(
            "batch: %d unit(s) -> %s backend (%d worker(s))",
            len(units),
            chosen.name,
            workers,
        )
        session.metrics.record_backend(chosen.name, len(units))
        with tracer.span(
            "batch-compute", backend=chosen.name, units=len(units)
        ) as compute_span:
            results = chosen.execute(session, units, workers)
            for work in results:
                # Worker *processes* record spans into a local flight
                # recorder and ship them back; adopting them under the
                # compute span rebuilds the tree the thread path records
                # directly.  Counters recorded outside any span merge into
                # the parent tracer's globals.
                if work.spans:
                    tracer.adopt(work.spans, parent=compute_span)
                if work.counters:
                    tracer.merge_counters(work.counters)
        for unit, work in zip(units, results):
            if work.refined:
                session.metrics.record_refinement()
            session._record_execution(
                work.plan,
                work.result,
                work.elapsed,
                digest=metas[unit.key].digest,
            )
            computed[unit.key] = (work.result, work.plan)
        batch_span.annotate(backend=chosen.name, units=len(units))

    # Phase 4 — commit to the cache (first-occurrence order) and assemble.
    with tracer.span("batch-commit"):
        for key, (result, plan) in computed.items():
            # Adaptive answers certify the plan's ε at the *estimator's* δ
            # (tighter or equal — a refined continuation keeps its original
            # budget); storing that δ keeps the entry maximally reusable.
            delta = result.refinable.delta if result.refinable is not None else plan.delta
            session.cache.put(key, result, plan.epsilon, delta, meta=metas.get(key))
        outcomes: list[BatchOutcome] = []
        for index, key, epsilon, delta, cached in resolved:
            if cached is not None:
                outcomes.append(
                    BatchOutcome(
                        index=index, key=key, result=cached, cached=True, plan=None
                    )
                )
            else:
                result, plan = computed[key]
                outcomes.append(
                    BatchOutcome(
                        index=index,
                        key=key,
                        result=result,
                        cached=False,
                        plan=plan,
                        backend=chosen.name if chosen is not None else None,
                    )
                )
    return outcomes
