"""Deterministic parallel batch execution.

:func:`execute_batch` serves a list of requests in three phases:

1. **resolve** (sequential) — every request gets a cache key and a dedicated
   child generator derived upfront with
   :func:`repro.sampling.rng.spawn_rngs`.  Cache lookups run against the
   cache state *at batch start*, so which requests hit is independent of
   worker scheduling.
2. **compute** (parallel) — cache misses are de-duplicated by key (the first
   occurrence's generator is used, later duplicates share its answer) and
   fanned out over a thread pool.  Each unique miss consumes only its own
   generator, so the produced numbers are bit-identical for any worker
   count.
3. **commit** (sequential) — results are stored into the cache in first-
   occurrence order and the outcomes are assembled in request order.

Threads (not processes) are the right pool here: the hot loops live in NumPy
and SciPy, which release the GIL, and thread workers can share the session's
compiled-plan cache and metrics without serialisation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Sequence

from repro.queries.aggregates import AggregateResult
from repro.queries.ast import Query
from repro.sampling.rng import RandomState, ensure_rng, spawn_rngs
from repro.service.planner import Plan


@dataclass(frozen=True)
class BatchRequest:
    """One volume request of a batch (accuracy defaults to the session's)."""

    query: Query
    epsilon: float | None = None
    delta: float | None = None


@dataclass
class BatchOutcome:
    """The served answer for one batch position.

    Attributes
    ----------
    index:
        Position of the request in the submitted batch.
    key:
        The structural cache key the request resolved to.
    result:
        The aggregate answer.
    cached:
        ``True`` when the answer came from the pre-batch cache state.
    plan:
        The plan executed for the *unique* computation of this key
        (``None`` for cache hits).
    """

    index: int
    key: str
    result: AggregateResult
    cached: bool
    plan: Plan | None


def execute_batch(
    session,
    requests: Sequence[BatchRequest | Query],
    workers: int = 1,
    rng: RandomState = None,
    block_size: int | None = None,
) -> list[BatchOutcome]:
    """Serve a batch of volume requests, deterministically, on ``workers`` threads.

    Bare :class:`~repro.queries.ast.Query` values are accepted and wrapped in
    default-accuracy :class:`BatchRequest` objects.  With a fixed ``rng``
    seed the returned values are bit-identical for every choice of
    ``workers`` **and** of ``block_size`` — the worker count only schedules
    independent computations, and the batch kernels' block size only shapes
    how many proposals each oracle call judges, never which proposals are
    drawn or how they are counted.
    """
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if block_size is not None and block_size < 1:
        raise ValueError("block_size must be at least 1")
    normalized = [
        request if isinstance(request, BatchRequest) else BatchRequest(request)
        for request in requests
    ]
    if not normalized:
        return []
    root = ensure_rng(rng)
    streams = spawn_rngs(root, len(normalized))
    session.metrics.record_batch(len(normalized))

    # Phase 1 — resolve keys and consult the pre-batch cache state.
    resolved = []  # (index, key, epsilon, delta, cached_result | None)
    unique: dict[str, tuple[int, float, float]] = {}
    for index, request in enumerate(normalized):
        epsilon, delta = session._resolve_accuracy(request.epsilon, request.delta)
        key = session.key_for(request.query)
        cached, dominance = session.cache.lookup(key, epsilon, delta)
        if cached is not None:
            session.metrics.record_cache_hit(dominance=dominance)
        else:
            session.metrics.record_cache_miss()
            if key not in unique:
                unique[key] = (index, epsilon, delta)
            else:
                session.metrics.record_coalesced()
                # A duplicate miss still wants the *tightest* accuracy asked
                # for in this batch, so one computation satisfies all copies.
                first_index, best_eps, best_delta = unique[key]
                unique[key] = (first_index, min(best_eps, epsilon), min(best_delta, delta))
        resolved.append((index, key, epsilon, delta, cached))

    # Phase 2 — plan and compute each unique miss with its own stream.
    def compute(key: str) -> tuple[AggregateResult, Plan]:
        first_index, epsilon, delta = unique[key]
        request = normalized[first_index]
        plan = session.planner.plan(
            request.query, session.database, epsilon=epsilon, delta=delta
        )
        if block_size is not None and plan.block_size:
            plan = replace(plan, block_size=block_size)
        result = session._execute(plan, request.query, key, streams[first_index])
        return result, plan

    computed: dict[str, tuple[AggregateResult, Plan]] = {}
    if unique:
        if workers == 1:
            for key in unique:
                computed[key] = compute(key)
        else:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                for key, outcome in zip(unique, pool.map(compute, unique)):
                    computed[key] = outcome

    # Phase 3 — commit to the cache (first-occurrence order) and assemble.
    for key, (result, plan) in computed.items():
        session.cache.put(key, result, plan.epsilon, plan.delta)
    outcomes: list[BatchOutcome] = []
    for index, key, epsilon, delta, cached in resolved:
        if cached is not None:
            outcomes.append(
                BatchOutcome(index=index, key=key, result=cached, cached=True, plan=None)
            )
        else:
            result, plan = computed[key]
            outcomes.append(
                BatchOutcome(index=index, key=key, result=result, cached=False, plan=plan)
            )
    return outcomes
