"""Measured-throughput block-size autotuning for the batch sampling kernels.

The planner's ``batch_block_size`` used to be a static ``8192``.  The right
block size is a hardware property — it balances per-call dispatch overhead
against cache footprint — and it shifts with the kernel backend (the numba
epilogues amortise differently than NumPy's multi-pass reductions).  This
module replaces the constant with measurement:

* On first contact per ``(kernel, dimension, backend)``, a small geometric
  ladder of candidate block sizes is probed against the actual membership
  kernel on synthetic data of that dimension; the highest measured
  samples/second wins.
* The winner is cached **process-wide** (class-level cache: every planner in
  the process shares it) and persisted as a relationless ``tune:`` entry in
  the PR 7 :class:`~repro.store.ResultStore` — the same pattern as PR 9's
  ``profile:`` entries — so a restarted server skips re-probing entirely.
* Block size is an execution knob only: the blocked estimators are
  block-size invariant by construction (same generator calls, same point
  stream), so autotuning can never change a served value — only how fast it
  is produced.

``REPRO_AUTOTUNE=off`` (or constructing the planner with an explicit
``batch_block_size``) restores the static constant.
"""

from __future__ import annotations

import logging
import os
import time
from threading import Lock
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro import kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store import ResultStore

logger = logging.getLogger(__name__)

#: ``EntryMeta.kind`` of persisted tuning entries.
TUNE_KIND = "tune"
_TUNE_KEY_PREFIX = "tune:"

#: The geometric ladder of candidate block sizes.
DEFAULT_LADDER = (1024, 2048, 4096, 8192, 16384, 32768)


class BlockSizeTuner:
    """Probe-once, persist-forever block-size selection.

    Parameters
    ----------
    ladder:
        Candidate block sizes (sorted, deduplicated).
    default_block_size:
        Returned when tuning is disabled or a probe fails.
    probe_seconds:
        Measurement window per candidate size (per first contact, not per
        plan — winners are cached process-wide and in the store).
    enabled:
        Defaults to the ``REPRO_AUTOTUNE`` environment gate (anything but
        ``off``/``0``/``false`` enables).
    """

    #: Winners shared by every tuner in the process, keyed
    #: ``(kernel, dimension, backend)`` — planning never probes twice for
    #: the same shape, no matter how many sessions exist.
    _process_cache: dict[tuple[str, int, str], int] = {}
    _process_lock = Lock()

    def __init__(
        self,
        ladder: tuple[int, ...] = DEFAULT_LADDER,
        default_block_size: int = 8192,
        probe_seconds: float = 0.0015,
        enabled: bool | None = None,
    ) -> None:
        if enabled is None:
            enabled = os.environ.get("REPRO_AUTOTUNE", "auto").strip().lower() not in (
                "off",
                "0",
                "false",
            )
        self.enabled = enabled
        self.ladder = tuple(sorted({int(size) for size in ladder}))
        if not self.ladder or min(self.ladder) < 1:
            raise ValueError("ladder must contain positive block sizes")
        self.default_block_size = int(default_block_size)
        self.probe_seconds = probe_seconds
        self._lock = Lock()
        self._loaded: dict[tuple[str, int, str], int] = {}
        self._store: "ResultStore | None" = None

    # ------------------------------------------------------------------
    def block_size(self, dimension: int, kernel: str = "membership") -> int:
        """The tuned block size for this ``(kernel, dimension)`` pair.

        Resolution order: process-wide cache → store-restored winners →
        a fresh probe (whose winner is then cached and persisted).  Any
        probe failure falls back to :attr:`default_block_size` with a
        logged warning — tuning is an optimisation, never a failure mode.
        """
        if not self.enabled or dimension < 1:
            return self.default_block_size
        key = (kernel, int(dimension), kernels.active_backend())
        with self._process_lock:
            winner = self._process_cache.get(key)
        if winner is not None:
            return winner
        with self._lock:
            winner = self._loaded.get(key)
        if winner is None:
            try:
                measurement = self.probe(dimension, kernel=kernel)
            except Exception as error:
                logger.warning(
                    "block-size probe failed for %s (%s: %s); using static %d",
                    key,
                    type(error).__name__,
                    error,
                    self.default_block_size,
                )
                return self.default_block_size
            winner = int(measurement["block_size"])
            self._persist(key, measurement)
        with self._process_lock:
            self._process_cache.setdefault(key, winner)
        return winner

    def probe(self, dimension: int, kernel: str = "membership") -> dict[str, Any]:
        """Measure the ladder against the live kernel; returns the verdict.

        The workload is the hot one the block size actually gates: batched
        H-polytope membership of ``dimension``-dimensional points (a box
        system, ``2 d`` rows) through the active backend.  Deterministic
        synthetic data; only the timings — never any served value — depend
        on the measurement.
        """
        d = max(int(dimension), 1)
        rng = np.random.default_rng(0xE25 + d)
        a = np.vstack([np.eye(d), -np.eye(d)])
        b = np.ones(2 * d)
        rates: dict[int, float] = {}
        for size in self.ladder:
            points = rng.random((size, d)) * 2.4 - 1.2
            kernels.membership_mask(a, b, points, 1e-9)  # warm (JIT/cache)
            iterations = 0
            start = time.perf_counter()
            deadline = start + self.probe_seconds
            now = start
            while iterations < 2 or (now < deadline and iterations < 64):
                kernels.membership_mask(a, b, points, 1e-9)
                iterations += 1
                now = time.perf_counter()
            rates[size] = size * iterations / max(now - start, 1e-9)
        winner = max(self.ladder, key=lambda size: rates[size])
        return {
            "kernel": kernel,
            "dimension": d,
            "backend": kernels.active_backend(),
            "block_size": int(winner),
            "rates": {str(size): rates[size] for size in self.ladder},
        }

    # ------------------------------------------------------------------
    # Store persistence (the PR 9 ``profile:`` pattern, relationless keys)
    # ------------------------------------------------------------------
    def load(self, store: "ResultStore") -> int:
        """Restore persisted winners and attach the store for new ones."""
        self._store = store
        loaded = 0
        for key, kind, _relations in store.entries():
            if kind != TUNE_KIND or not key.startswith(_TUNE_KEY_PREFIX):
                continue
            stored = store.get(key)
            if stored is None or not isinstance(stored.result, Mapping):
                continue
            state = stored.result
            try:
                entry = (
                    str(state["kernel"]),
                    int(state["dimension"]),
                    str(state["backend"]),
                )
                size = int(state["block_size"])
            except (KeyError, TypeError, ValueError):
                continue
            with self._lock:
                self._loaded[entry] = size
            loaded += 1
        return loaded

    def _persist(self, key: tuple[str, int, str], measurement: Mapping) -> None:
        store = self._store
        if store is None:
            return
        from repro.store import EntryMeta

        kernel, dimension, backend = key
        digest = f"{kernel}:{dimension}:{backend}"
        try:
            store.put(
                f"{_TUNE_KEY_PREFIX}{digest}",
                dict(measurement),
                epsilon=0.0,
                delta=0.0,
                meta=EntryMeta(
                    kind=TUNE_KIND, digest=digest, relations=(), fingerprint=""
                ),
                replace=True,
            )
        except Exception:  # pragma: no cover - store failures are non-fatal
            logger.debug("persisting tune entry %s failed", digest, exc_info=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Operator-facing view for ``/v1/stats`` and ``repro top``."""
        with self._process_lock:
            tuned = {
                f"{kernel}:{dimension}:{backend}": size
                for (kernel, dimension, backend), size in sorted(
                    self._process_cache.items()
                )
            }
        return {
            "enabled": self.enabled,
            "default_block_size": self.default_block_size,
            "ladder": list(self.ladder),
            "tuned": tuned,
        }

    @classmethod
    def clear_process_cache(cls) -> None:
        """Forget process-wide winners (tests re-probing under a new backend)."""
        with cls._process_lock:
            cls._process_cache.clear()
