"""repro.service — the cached, planned, parallel query-serving subsystem.

The modules compose into one serving pipeline (see
:class:`~repro.service.session.ServiceSession`):

* :mod:`repro.service.canonical` — structural cache keys (logical-plan
  content digests) for queries, subplans and database fingerprints;
* :mod:`repro.service.planner`   — the cost model choosing between exact,
  Monte-Carlo and telescoping volume routes;
* :mod:`repro.service.cache`     — LRU/TTL result cache with ε-dominance,
  holding whole-query *and* subplan-granular entries;
* :mod:`repro.service.sharing`   — the subplan broker: content-addressed
  member streams, cross-query estimate reuse, batch plan forests;
* :mod:`repro.service.backends`  — pluggable execution backends (serial,
  thread pool, process sharding) with bit-identical results;
* :mod:`repro.service.executor`  — deterministic multi-backend batch
  execution;
* :mod:`repro.service.metrics`   — hit/miss, plan-choice and latency
  counters;
* :mod:`repro.service.session`   — the facade tying the above together.
"""

from repro.service.backends import (
    BatchExecutionError,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkResult,
    WorkUnit,
    resolve_backend,
)
from repro.service.cache import CacheEntry, ResultCache
from repro.service.canonical import (
    DatabaseFingerprint,
    canonical_query,
    compose_key,
    database_fingerprint,
    fingerprint_index,
    plan_identity,
    request_key,
    subplan_key,
)
from repro.service.executor import BatchOutcome, BatchRequest, execute_batch
from repro.service.metrics import ServiceMetrics
from repro.service.planner import (
    Plan,
    Planner,
    QueryProfile,
    profile_query,
    telescoping_samples_per_phase,
)
from repro.service.session import ServiceSession, refine_result, run_plan
from repro.service.sharing import (
    SubplanBroker,
    harvest_subplans,
    prepare_shared_members,
)
from repro.store import EntryMeta, ResultStore

__all__ = [
    "BatchExecutionError",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "WorkResult",
    "WorkUnit",
    "resolve_backend",
    "CacheEntry",
    "ResultCache",
    "DatabaseFingerprint",
    "EntryMeta",
    "ResultStore",
    "canonical_query",
    "compose_key",
    "database_fingerprint",
    "fingerprint_index",
    "plan_identity",
    "request_key",
    "subplan_key",
    "BatchOutcome",
    "BatchRequest",
    "execute_batch",
    "ServiceMetrics",
    "Plan",
    "Planner",
    "QueryProfile",
    "profile_query",
    "telescoping_samples_per_phase",
    "ServiceSession",
    "refine_result",
    "run_plan",
    "SubplanBroker",
    "harvest_subplans",
    "prepare_shared_members",
]
