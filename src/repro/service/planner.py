"""Cost-based plan selection for aggregate queries.

The library offers four routes to a volume:

* **exact** — symbolic evaluation plus inclusion–exclusion
  (:func:`repro.queries.aggregates.exact_volume`).  Exponential in the
  dimension (vertex enumeration) and in the number of disjuncts
  (inclusion–exclusion), but unbeatable when both are tiny: no sampling, no
  error, and the answer dominates every ε in the cache.
* **monte_carlo** — uniform sampling of the bounding box
  (:func:`repro.volume.monte_carlo.monte_carlo_volume`).  Cheap per sample
  and insensitive to the disjunct count, but the sample size for a relative
  guarantee grows with ``vol(box)/vol(S)`` — only viable in low dimension
  with loose accuracy requirements.
* **adaptive** — box sampling with anytime-valid confidence-sequence
  stopping (:mod:`repro.inference`).  Same regime as Monte-Carlo but the
  budget is decided by the data: easy instances stop orders of magnitude
  below the fixed Chernoff schedule, the answer is resumable to tighter ε
  via the cache, and exhausting the cap falls back to telescoping.  Opt-in
  via ``Planner(adaptive=True)`` or forced with ``plan(..., route="adaptive")``.
* **telescoping** — the paper's route: compile to an observable plan and run
  the DFK telescoping estimator.  Polynomial in the dimension and the only
  route that supports projection and negation without materialising the
  result.

:class:`Planner` inspects a cheap structural profile of the query (dimension,
atom counts, a syntactic disjunct estimate, the description size of the
referenced stored relations) together with the requested ε/δ and picks a
route plus per-query sample/time budgets.  The decision rules are ordered and
deliberately simple — each is stated in the plan's ``reason`` so benchmarks
and tests can assert on *why* a route was chosen.
"""

from __future__ import annotations

import logging
import os
from collections import OrderedDict
from dataclasses import dataclass, field
from threading import Lock
from typing import Sequence

from repro.constraints.database import ConstraintDatabase
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query
from repro.service.autotune import BlockSizeTuner
from repro.volume.chernoff import chernoff_ratio_sample_size

logger = logging.getLogger(__name__)


def _chosen(plan: "Plan") -> "Plan":
    """Log a plan decision on its way out (single funnel for every route)."""
    logger.debug(
        "plan: %s (eps=%g, delta=%g, budget=%d): %s",
        plan.estimator,
        plan.epsilon,
        plan.delta,
        plan.sample_budget,
        plan.reason,
    )
    return plan


def telescoping_samples_per_phase(
    epsilon: float, delta: float = 0.1, max_samples_per_phase: int = 20_000
) -> int:
    """Per-phase telescoping budget from the phase-level Chernoff schedule.

    Prices a telescoping phase with the same formula the estimator's own
    schedule uses — :func:`repro.volume.chernoff.chernoff_ratio_sample_size`
    at the phase's ε/2 share with the telescoping lower bound ``p ≥ 1/2`` —
    under a laptop-scale cap that only binds for very tight requests
    (ε ≲ 0.06 at the default δ), so tightening ε keeps buying samples
    through the practically requestable range.  This replaced an ad-hoc
    ``(0.2/ε)² · 800`` curve that was consistent with nothing the
    estimators compute.
    """
    # Clamp pathological requests instead of refusing them at plan time: the
    # estimators themselves validate the accuracy they are executed with.
    epsilon = min(max(epsilon, 1e-3), 1.0 - 1e-9)
    delta = min(max(delta, 1e-12), 1.0 - 1e-9)
    samples = chernoff_ratio_sample_size(epsilon / 2.0, delta, 0.5)
    return min(samples, max_samples_per_phase)


@dataclass(frozen=True)
class QueryProfile:
    """A cheap structural summary of a query over a concrete database.

    Attributes
    ----------
    dimension:
        Number of free variables of the query (the ambient dimension of the
        result).
    relation_atoms / constraint_atoms:
        Counts of the two atom kinds.
    has_negation / has_projection:
        Whether the query uses ``NOT`` / ``EXISTS`` anywhere.
    disjunct_estimate:
        Syntactic upper bound on the DNF size of the result: stored relations
        contribute their disjunct counts, ``AND`` multiplies, ``OR`` adds.
    description_size:
        Total description size of the stored relations the query references
        (the paper's input-size measure).
    """

    dimension: int
    relation_atoms: int
    constraint_atoms: int
    has_negation: bool
    has_projection: bool
    disjunct_estimate: int
    description_size: int

    @property
    def atom_count(self) -> int:
        """Total number of atoms (relation + constraint)."""
        return self.relation_atoms + self.constraint_atoms


def profile_query(query: Query, database: ConstraintDatabase) -> QueryProfile:
    """Compute the structural profile the planner's cost model consumes.

    The profile is purely syntactic — dimension, atom count, a disjunct
    estimate, description size, projection/negation flags — so it is cheap
    enough to compute per request: ``profile_query(query, db).dimension``.
    """
    state = {
        "relation_atoms": 0,
        "constraint_atoms": 0,
        "has_negation": False,
        "has_projection": False,
        "description_size": 0,
    }
    disjuncts = _scan(query, database, state)
    return QueryProfile(
        dimension=len(query.free_variables()),
        relation_atoms=state["relation_atoms"],
        constraint_atoms=state["constraint_atoms"],
        has_negation=state["has_negation"],
        has_projection=state["has_projection"],
        disjunct_estimate=disjuncts,
        description_size=state["description_size"],
    )


def _scan(query: Query, database: ConstraintDatabase, state: dict) -> int:
    """Accumulate atom statistics and return the node's disjunct estimate."""
    if isinstance(query, QRelation):
        state["relation_atoms"] += 1
        if query.name in database:
            relation = database.relation(query.name)
            state["description_size"] += relation.description_size()
            return max(len(relation.disjuncts), 1)
        return 1
    if isinstance(query, QConstraint):
        state["constraint_atoms"] += 1
        state["description_size"] += 1
        return 1
    if isinstance(query, QNot):
        state["has_negation"] = True
        return _scan(query.operand, database, state)
    if isinstance(query, QExists):
        state["has_projection"] = True
        return _scan(query.operand, database, state)
    if isinstance(query, QAnd):
        product = 1
        for operand in query.operands:
            product *= _scan(operand, database, state)
        return product
    if isinstance(query, QOr):
        return sum(_scan(operand, database, state) for operand in query.operands)
    raise TypeError(f"unsupported query node {query!r}")


@dataclass(frozen=True)
class Plan:
    """The planner's verdict for one request.

    Attributes
    ----------
    estimator:
        ``"exact"``, ``"monte_carlo"``, ``"adaptive"`` or ``"telescoping"``.
    epsilon / delta:
        The accuracy the plan was selected for.
    sample_budget:
        Upper bound on random samples the executor should spend (``0`` for
        the exact route).  For the adaptive route this is a *cap*, not a
        spend: the confidence sequence stops as soon as the contract is
        certified, and the cap — the fixed Chernoff schedule's budget —
        bounds the hard instances.
    time_budget:
        Soft wall-clock budget in seconds; overruns are recorded in the
        service metrics, not enforced by interruption.
    reason:
        Human-readable statement of the decisive rule.
    min_hit_fraction:
        Monte-Carlo only: the volume fraction ``vol(S)/vol(box)`` the sample
        size was dimensioned for.  The executor must verify the observed hit
        fraction reaches it — below the floor the relative guarantee does not
        hold and the answer must not be served (see
        :func:`repro.service.session.run_plan`).
    block_size:
        Number of proposals the sampling routes evaluate per batch-oracle
        call (``0`` for the exact route, which draws no samples).  The block
        size is an execution knob only: the blocked estimators produce
        bit-identical values for every block size.
    sample_ceiling:
        Adaptive route only: the planner's absolute ceiling on the
        resumable stream (:attr:`Planner.adaptive_sample_cap`), over *all*
        runs of the estimator — later refinements to tighter ε included.
        ``0`` on the other routes, whose ``sample_budget`` already is the
        whole story.
    profile:
        The structural profile the decision was based on.
    """

    estimator: str
    epsilon: float
    delta: float
    sample_budget: int
    time_budget: float
    reason: str
    min_hit_fraction: float = 0.0
    block_size: int = 0
    sample_ceiling: int = 0
    profile: QueryProfile = field(repr=False, default=None)  # type: ignore[assignment]


class Planner:
    """Rule-ordered cost model choosing between the three volume routes.

    Parameters bound the regime of each route; the defaults favour the exact
    route only where it is effectively free and fall back to the paper's
    telescoping estimator everywhere else.  ``Planner(adaptive=True)``
    replaces the fixed Monte-Carlo budget with the anytime estimators of
    :mod:`repro.inference`.  Example::

        plan = Planner().plan(query, database, epsilon=0.1, delta=0.05)
        plan.estimator  # "exact" | "monte_carlo" | "adaptive" | "telescoping"
    """

    def __init__(
        self,
        exact_dimension_limit: int = 3,
        exact_disjunct_limit: int = 8,
        monte_carlo_dimension_limit: int = 4,
        monte_carlo_min_epsilon: float = 0.15,
        monte_carlo_min_fraction: float = 0.05,
        monte_carlo_sample_cap: int = 60_000,
        telescoping_max_samples_per_phase: int = 20_000,
        adaptive: bool = False,
        adaptive_sample_cap: int = 200_000,
        time_budget_per_unit: float = 0.02,
        batch_block_size: int | None = None,
        tuner: BlockSizeTuner | None = None,
        batch_samples_per_second: float = 500_000.0,
        telescoping_samples_per_second: float = 2_000.0,
        adaptive_samples_per_second: float = 400_000.0,
        process_backend_min_seconds: float = 0.2,
        max_symbolic_disjuncts: int = 512,
    ) -> None:
        self.exact_dimension_limit = exact_dimension_limit
        self.exact_disjunct_limit = exact_disjunct_limit
        self.monte_carlo_dimension_limit = monte_carlo_dimension_limit
        self.monte_carlo_min_epsilon = monte_carlo_min_epsilon
        self.monte_carlo_min_fraction = monte_carlo_min_fraction
        self.monte_carlo_sample_cap = monte_carlo_sample_cap
        self.telescoping_max_samples_per_phase = telescoping_max_samples_per_phase
        # The adaptive route replaces the fixed Monte-Carlo budget with
        # confidence-sequence stopping (repro.inference); opt-in so existing
        # deployments keep byte-stable plans until they ask for it.
        self.adaptive = adaptive
        # Cap on an adaptive stream: the route is taken even when the fixed
        # Chernoff budget would disqualify Monte-Carlo, because the stream
        # stops early on easy instances and the executor falls back to
        # telescoping when the cap is hit without certifying the contract.
        self.adaptive_sample_cap = adaptive_sample_cap
        self.time_budget_per_unit = time_budget_per_unit
        # Block-size policy: an explicit ``batch_block_size`` pins the
        # historical static constant (byte-stable plans for callers that
        # asked for a specific size); leaving it ``None`` engages the
        # measured-throughput autotuner, which probes a geometric ladder on
        # first contact per (kernel, dimension, backend) and persists the
        # winner in the result store.  Block size is an execution knob only,
        # so either policy serves identical values.
        self.batch_block_size = 8192 if batch_block_size is None else int(batch_block_size)
        if tuner is not None:
            self.tuner = tuner
        elif batch_block_size is None:
            self.tuner = BlockSizeTuner(default_block_size=self.batch_block_size)
        else:
            self.tuner = None
        # Throughput of the vectorized sampling kernels, in judged samples
        # per second.  The default is a deliberately conservative prior; the
        # session feeds measured throughput back through observe_throughput,
        # so time budgets tighten as the service learns the hardware.
        self.batch_samples_per_second = batch_samples_per_second
        # Throughput of the telescoping route, in consumed samples per
        # second.  It is tracked separately from the batch kernels: a
        # telescoping sample advances a GIL-bound random walk, so its cost
        # bears no relation to a blocked Monte-Carlo proposal's, and folding
        # the routes together would corrupt both estimates.  The prior is
        # deliberately conservative (slow): it biases the first batch of a
        # telescoping workload toward process sharding, and the session's
        # measured feedback corrects the rate from the first execution on.
        # The backend recommendation uses this rate to decide when a batch's
        # GIL-bound work is heavy enough to amortise process sharding.
        self.telescoping_samples_per_second = telescoping_samples_per_second
        # Throughput of the adaptive route's batch kernels.  Tracked apart
        # from the fixed Monte-Carlo rate: an adaptive execution interleaves
        # confidence-sequence checkpoints with its oracle blocks, and a
        # refinement continuation reports only its *new* samples — mixing
        # those observations into the fixed-budget rate would bias both.
        self.adaptive_samples_per_second = adaptive_samples_per_second
        # Estimated GIL-bound seconds per batch above which process sharding
        # beats thread fan-out (covers pool start-up plus shipping the
        # pickled shared setup).
        self.process_backend_min_seconds = process_backend_min_seconds
        # Cost bound of physical lowering's symbolic-vs-observable decision
        # for conjunctions: past this DNF product, rejection sampling beats
        # materialising the product (see repro.plan.lowering).
        self.max_symbolic_disjuncts = max_symbolic_disjuncts
        self._throughput_observations = 0
        self._telescoping_observations = 0
        self._adaptive_observations = 0
        self._throughput_lock = Lock()
        # Per-plan-digest throughput priors (digest -> route -> samples/s),
        # bounded LRU.  Fed online by observe_throughput(digest=...) and
        # primed from persisted profiles on restart, so the cost model starts
        # warm for queries it has served in any previous process.
        self._digest_rates: OrderedDict[str, dict[str, float]] = OrderedDict()
        self._digest_capacity = 1024

    def lowering_options(self, samples_per_phase: int = 800, sampler: str = "hit_and_run"):
        """The physical-lowering knobs this cost model implies.

        The session threads these into :func:`repro.plan.lowering.lower_plan`
        so the per-subtree symbolic-vs-observable decision is the planner's,
        not a hard-coded constant of the compiler.
        """
        from repro.plan.lowering import LoweringOptions

        return LoweringOptions(
            sampler=sampler,
            samples_per_phase=samples_per_phase,
            max_symbolic_disjuncts=self.max_symbolic_disjuncts,
        )

    def observe_throughput(
        self,
        samples: int,
        seconds: float,
        route: str = "monte_carlo",
        digest: str | None = None,
    ) -> None:
        """Fold one measured sampling run into a per-route throughput estimate.

        The session reports ``(samples consumed, wall seconds)`` for each
        sampling-route execution; an exponential moving average (weight 0.3)
        keeps the estimate current without letting one noisy run swing the
        time budgets.  ``route`` selects the estimate: ``"monte_carlo"``
        updates the batch-kernel rate, ``"telescoping"`` the walk rate and
        ``"adaptive"`` the confidence-sequence route's own rate.  When a plan
        ``digest`` is given, a per-digest prior is maintained alongside the
        global rate — plans the session has executed before get their *own*
        cost estimate instead of the fleet-wide average.  Results are
        unaffected — throughput only sizes the *budgets* that the metrics
        compare latencies against and informs the backend recommendation.
        The update is locked because batch execution reports from worker
        threads.
        """
        if samples <= 0 or seconds <= 0:
            return
        observed = samples / seconds
        if digest:
            self._observe_digest(digest, route, observed)
        if route == "telescoping":
            rate_attr, count_attr = (
                "telescoping_samples_per_second",
                "_telescoping_observations",
            )
        elif route == "adaptive":
            rate_attr, count_attr = (
                "adaptive_samples_per_second",
                "_adaptive_observations",
            )
        else:
            rate_attr, count_attr = (
                "batch_samples_per_second",
                "_throughput_observations",
            )
        with self._throughput_lock:
            if getattr(self, count_attr) == 0:
                setattr(self, rate_attr, observed)
            else:
                current = getattr(self, rate_attr)
                setattr(self, rate_attr, current + 0.3 * (observed - current))
            setattr(self, count_attr, getattr(self, count_attr) + 1)

    def _observe_digest(self, digest: str, route: str, observed: float) -> None:
        """EWMA-update the (digest, route) prior under the throughput lock."""
        with self._throughput_lock:
            rates = self._digest_rates.get(digest)
            if rates is None:
                if len(self._digest_rates) >= self._digest_capacity:
                    self._digest_rates.popitem(last=False)
                rates = {}
                self._digest_rates[digest] = rates
            else:
                self._digest_rates.move_to_end(digest)
            current = rates.get(route)
            rates[route] = (
                observed if current is None else current + 0.3 * (observed - current)
            )

    def prime_throughput(self, digest: str, route: str, rate: float) -> None:
        """Install a restored per-digest prior (profile persistence path).

        Unlike :meth:`observe_throughput` this sets the prior directly — the
        rate was already smoothed when the profile accumulated it — but it
        never *overwrites* a rate observed live in this process.
        """
        if not digest or rate <= 0.0:
            return
        with self._throughput_lock:
            rates = self._digest_rates.get(digest)
            if rates is None:
                if len(self._digest_rates) >= self._digest_capacity:
                    self._digest_rates.popitem(last=False)
                rates = {}
                self._digest_rates[digest] = rates
            rates.setdefault(route, float(rate))

    def digest_rate(self, digest: str, route: str) -> float | None:
        """The per-digest samples/second prior, or ``None`` if unknown."""
        with self._throughput_lock:
            rates = self._digest_rates.get(digest)
            return None if rates is None else rates.get(route)

    def estimated_execution_seconds(
        self, plan: Plan, digest: str | None = None
    ) -> float:
        """Rough wall-clock estimate of executing one plan, from its budgets.

        Sampling plans are costed at the learned per-route throughput — the
        per-``digest`` prior when this exact plan has been executed before
        (in this process or, via persisted profiles, a previous one), the
        global route rate otherwise; the exact route is costed at the
        structural time-budget term only.  This is the quantity
        :meth:`recommend_backend` compares against the process backend's
        amortisation threshold and serving admission compares against its
        capacity — a scheduling heuristic, never a correctness knob.
        """
        if plan.estimator == "exact":
            return self.time_budget_per_unit
        if digest:
            prior = self.digest_rate(digest, plan.estimator)
            if prior is not None:
                return plan.sample_budget / max(prior, 1.0)
        if plan.estimator == "telescoping":
            return plan.sample_budget / max(self.telescoping_samples_per_second, 1.0)
        if plan.estimator == "monte_carlo":
            return plan.sample_budget / max(self.batch_samples_per_second, 1.0)
        if plan.estimator == "adaptive":
            return plan.sample_budget / max(self.adaptive_samples_per_second, 1.0)
        return self.time_budget_per_unit

    def recommend_backend(
        self, plans: Sequence[Plan], workers: int, cores: int | None = None
    ) -> str:
        """Recommend an execution backend for a batch of planned misses.

        ``cores`` is the effective core count (defaults to ``os.cpu_count()``;
        injectable for tests).  The decision mirrors where each backend wins:

        * one worker, one core or at most one plan → ``"serial"`` (nothing
          can overlap);
        * enough GIL-bound telescoping work spread over several plans →
          ``"process"`` (worker processes own whole cores; the threshold
          :attr:`process_backend_min_seconds` covers pool start-up and the
          pickled shared setup);
        * otherwise → ``"thread"`` (NumPy kernels release the GIL, and
          threads share the compiled-plan cache for free).

        Only scheduling depends on this choice — the served values are
        bit-identical across backends.
        """
        if cores is None:
            cores = os.cpu_count() or 1
        if workers <= 1 or len(plans) <= 1:
            logger.debug(
                "backend: serial (workers=%d, plans=%d)", workers, len(plans)
            )
            return "serial"
        if cores <= 1:
            # No second core: neither pool can overlap compute, and the
            # process pool would add fork + pickling overhead on top.
            logger.debug("backend: serial (single core)")
            return "serial"
        telescoping = [plan for plan in plans if plan.estimator == "telescoping"]
        gil_bound_seconds = sum(
            self.estimated_execution_seconds(plan) for plan in telescoping
        )
        if len(telescoping) > 1 and gil_bound_seconds >= self.process_backend_min_seconds:
            logger.debug(
                "backend: process (%d telescoping plans, ~%.3fs GIL-bound work)",
                len(telescoping),
                gil_bound_seconds,
            )
            return "process"
        logger.debug(
            "backend: thread (workers=%d, plans=%d, ~%.3fs GIL-bound work)",
            workers,
            len(plans),
            gil_bound_seconds,
        )
        return "thread"

    def plan(
        self,
        query: Query,
        database: ConstraintDatabase,
        epsilon: float = 0.2,
        delta: float = 0.1,
        route: str | None = None,
    ) -> Plan:
        """Select the estimator and budgets for one volume request.

        ``route="adaptive"`` forces the confidence-sequence route regardless
        of the planner's :attr:`adaptive` flag (used by
        ``QueryEngine.volume(mode="adaptive")``); queries outside the
        adaptive route's regime — projection, negation, a zero ε or δ —
        still fall back to the route that can serve them.
        """
        if route is not None and route != "adaptive":
            raise ValueError(f"only the 'adaptive' route can be forced, got {route!r}")
        profile = profile_query(query, database)
        time_budget = self.time_budget_per_unit * max(
            profile.description_size * max(profile.dimension, 1), 1
        )
        symbolic_friendly = not profile.has_negation and not profile.has_projection
        adaptive_eligible = (
            symbolic_friendly
            and profile.dimension <= self.monte_carlo_dimension_limit
            and 0.0 < epsilon < 1.0
            and 0.0 < delta < 1.0
        )
        if route == "adaptive" and adaptive_eligible:
            return self._adaptive_plan(profile, epsilon, delta, time_budget)
        if (
            route is None
            and symbolic_friendly
            and profile.dimension <= self.exact_dimension_limit
            and profile.disjunct_estimate <= self.exact_disjunct_limit
        ):
            return _chosen(Plan(
                estimator="exact",
                epsilon=0.0,
                delta=0.0,
                sample_budget=0,
                time_budget=time_budget,
                reason=(
                    f"dimension {profile.dimension} <= {self.exact_dimension_limit} and "
                    f"{profile.disjunct_estimate} disjunct(s) <= {self.exact_disjunct_limit}: "
                    "inclusion-exclusion is cheap and its answer dominates every epsilon"
                ),
                profile=profile,
            ))
        if self.adaptive and adaptive_eligible:
            return self._adaptive_plan(profile, epsilon, delta, time_budget)
        if (
            route is None
            and symbolic_friendly
            and profile.dimension <= self.monte_carlo_dimension_limit
            and epsilon >= self.monte_carlo_min_epsilon
        ):
            # Dimension the sample count for a *relative* (1 + ε) guarantee
            # under the assumption vol(S)/vol(box) >= min_fraction; the
            # executor verifies the observed hit fraction and falls back to
            # telescoping when the assumption fails (the naive estimator's
            # known failure mode, experiment E10).  When the required count
            # exceeds the cap the guarantee cannot be met at this accuracy,
            # so the route is not taken at all — a capped run would be
            # cached at an accuracy it does not have.
            samples = chernoff_ratio_sample_size(
                epsilon, delta, self.monte_carlo_min_fraction
            )
            if samples <= self.monte_carlo_sample_cap:
                return _chosen(Plan(
                    estimator="monte_carlo",
                    epsilon=epsilon,
                    delta=delta,
                    sample_budget=samples,
                    time_budget=time_budget + samples / self.batch_samples_per_second,
                    reason=(
                        f"dimension {profile.dimension} <= {self.monte_carlo_dimension_limit} "
                        f"with loose epsilon {epsilon:g} but {profile.disjunct_estimate} "
                        "disjuncts: box sampling beats 2^disjuncts inclusion-exclusion"
                    ),
                    min_hit_fraction=self.monte_carlo_min_fraction,
                    block_size=self.block_size_for(profile.dimension),
                    profile=profile,
                ))
        samples = self._telescoping_samples(epsilon, delta)
        reason = (
            "projection/negation requires the observable route"
            if not symbolic_friendly
            else f"dimension {profile.dimension} needs the polynomial-time telescoping estimator"
        )
        if route == "adaptive":
            reason = f"adaptive route not applicable ({reason})"
        return _chosen(Plan(
            estimator="telescoping",
            epsilon=epsilon,
            delta=delta,
            sample_budget=samples,
            # Telescoping walks one sample at a time per phase; budget the
            # phases' samples at the learned walk throughput on top of the
            # structural term so the over-budget metric stays meaningful.
            time_budget=time_budget + samples / self.telescoping_samples_per_second,
            reason=reason,
            block_size=self.block_size_for(profile.dimension),
            profile=profile,
        ))

    def _adaptive_plan(
        self, profile: QueryProfile, epsilon: float, delta: float, time_budget: float
    ) -> Plan:
        """The confidence-sequence plan: cap at the fixed Chernoff schedule.

        The cap is what a fixed-budget Monte-Carlo run would spend for the
        same contract under the ``min_fraction`` assumption; the adaptive
        stream certifies easy instances far below it and falls back to
        telescoping at execution time when the cap is exhausted without
        certification (mirroring the Monte-Carlo route's hit-fraction
        fallback, but decided by the data instead of by an assumption).
        """
        fixed_budget = chernoff_ratio_sample_size(
            epsilon, delta, self.monte_carlo_min_fraction
        )
        cap = min(fixed_budget, self.adaptive_sample_cap)
        return _chosen(Plan(
            estimator="adaptive",
            epsilon=epsilon,
            delta=delta,
            sample_budget=cap,
            time_budget=time_budget + cap / self.adaptive_samples_per_second,
            reason=(
                f"dimension {profile.dimension} <= {self.monte_carlo_dimension_limit}: "
                "confidence-sequence stopping serves the contract from the data, "
                f"capped at the fixed Chernoff schedule ({cap} samples)"
            ),
            # For the adaptive route this is the volume-fraction assumption
            # the sample cap is dimensioned for, not a serving floor: the
            # confidence sequence certifies the contract directly and the
            # executor falls back when the cap is exhausted uncertified.
            min_hit_fraction=self.monte_carlo_min_fraction,
            block_size=self.block_size_for(profile.dimension),
            sample_ceiling=self.adaptive_sample_cap,
            profile=profile,
        ))

    def block_size_for(self, dimension: int) -> int:
        """The execution block size for plans over ``dimension`` variables.

        Consults the measured-throughput autotuner when one is attached
        (the default); an explicitly pinned ``batch_block_size`` — or any
        tuner failure — yields the static constant.  Either way the value
        is an execution knob: plans differ only in wall-clock, never in
        served results.
        """
        if self.tuner is None:
            return self.batch_block_size
        return self.tuner.block_size(max(int(dimension), 1))

    def _telescoping_samples(self, epsilon: float, delta: float = 0.1) -> int:
        """Per-phase sample budget for the telescoping route."""
        return telescoping_samples_per_phase(
            epsilon, delta, self.telescoping_max_samples_per_phase
        )
