"""Service metrics: cache, plan-choice and latency counters.

The counters are deliberately plain (no external dependency): benchmarks read
them through :meth:`ServiceMetrics.snapshot` and the harness renders them as
experiment tables.  All methods are cheap enough to sit on the hot path, and
mutation is guarded by a lock so the batch executor's worker threads can
record concurrently.
"""

from __future__ import annotations

import threading
from collections import Counter


class ServiceMetrics:
    """Counters a :class:`~repro.service.session.ServiceSession` maintains.

    Tracked quantities:

    * cache traffic — ``cache_hits`` / ``cache_misses`` (dominance hits are
      counted separately as ``dominance_hits`` when the stored entry was
      tighter than requested, and ``refinements`` when a cached adaptive
      answer was *continued* to a tighter ε instead of recomputed);
    * subplan traffic — ``subplan_hits`` / ``subplan_misses`` /
      ``subplan_stores`` for the plan forest's shared-member cache (a hit
      means a query reused a member volume some other query computed);
    * plan choices — one counter per estimator name;
    * backend choices — batches and computed units per execution backend
      (serial / thread / process);
    * latency — total seconds and request count per estimator, from which
      :meth:`snapshot` derives means;
    * budget overruns — requests whose wall-clock exceeded the plan's soft
      time budget.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0
        self.dominance_hits = 0
        self.refinements = 0
        self.coalesced = 0
        self.subplan_hits = 0
        self.subplan_misses = 0
        self.subplan_stores = 0
        self.store_hits = 0
        self.store_misses = 0
        self.store_invalidations = 0
        self.plan_choices: Counter[str] = Counter()
        self.backend_choices: Counter[str] = Counter()
        self.backend_units: Counter[str] = Counter()
        self.latency_totals: Counter[str] = Counter()
        self.request_counts: Counter[str] = Counter()
        self.budget_overruns = 0
        self.batches = 0
        self.batch_requests = 0

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_cache_hit(self, dominance: bool = False) -> None:
        """Count a cache hit (``dominance=True`` when a tighter entry served)."""
        with self._lock:
            self.cache_hits += 1
            if dominance:
                self.dominance_hits += 1

    def record_cache_miss(self) -> None:
        """Count a cache miss."""
        with self._lock:
            self.cache_misses += 1

    def record_refinement(self) -> None:
        """Count a cached adaptive answer continued in place to a tighter ε."""
        with self._lock:
            self.refinements += 1

    def record_coalesced(self) -> None:
        """Count a batch request that shared another request's computation."""
        with self._lock:
            self.coalesced += 1

    def record_subplan_hit(self) -> None:
        """Count a cached subplan estimate reused by a query containing it."""
        with self._lock:
            self.subplan_hits += 1

    def record_subplan_miss(self) -> None:
        """Count a subplan lookup that found no reusable entry."""
        with self._lock:
            self.subplan_misses += 1

    def record_subplan_store(self) -> None:
        """Count a subplan estimate banked for later queries."""
        with self._lock:
            self.subplan_stores += 1

    def record_store_hit(self) -> None:
        """Count an in-memory miss served from the persistent store."""
        with self._lock:
            self.store_hits += 1

    def record_store_miss(self) -> None:
        """Count a lookup that missed both the memory and disk tiers."""
        with self._lock:
            self.store_misses += 1

    def record_store_invalidations(self, count: int) -> None:
        """Count entries dropped by plan-aware relation invalidation."""
        with self._lock:
            self.store_invalidations += count

    def record_plan(self, estimator: str) -> None:
        """Count one plan choice."""
        with self._lock:
            self.plan_choices[estimator] += 1

    def record_backend(self, backend: str, units: int = 1) -> None:
        """Count one batch computed on ``backend`` (``units`` unique misses)."""
        with self._lock:
            self.backend_choices[backend] += 1
            self.backend_units[backend] += units

    def record_latency(
        self, estimator: str, seconds: float, over_budget: bool = False
    ) -> None:
        """Record the wall-clock cost of one executed request."""
        with self._lock:
            self.latency_totals[estimator] += seconds
            self.request_counts[estimator] += 1
            if over_budget:
                self.budget_overruns += 1

    def record_batch(self, size: int) -> None:
        """Count a submitted batch and its request count."""
        with self._lock:
            self.batches += 1
            self.batch_requests += size

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        """Cache hit fraction over all lookups (``0.0`` before any traffic)."""
        # Both counters must be read under the lock or a concurrent recorder
        # can slip a hit between the two reads and skew the ratio.  snapshot()
        # already holds the (non-reentrant) lock, so it uses the raw helper.
        with self._lock:
            return self._hit_rate_locked()

    def _hit_rate_locked(self) -> float:
        return (
            self.cache_hits / (self.cache_hits + self.cache_misses)
            if self.cache_hits + self.cache_misses
            else 0.0
        )

    def snapshot(self) -> dict:
        """A plain-dict copy of every counter (plus derived means)."""
        with self._lock:
            mean_latency = {
                name: self.latency_totals[name] / count
                for name, count in self.request_counts.items()
                if count
            }
            return {
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "dominance_hits": self.dominance_hits,
                "refinements": self.refinements,
                "coalesced": self.coalesced,
                "subplan_hits": self.subplan_hits,
                "subplan_misses": self.subplan_misses,
                "subplan_stores": self.subplan_stores,
                "store_hits": self.store_hits,
                "store_misses": self.store_misses,
                "store_invalidations": self.store_invalidations,
                "hit_rate": self._hit_rate_locked(),
                "plan_choices": dict(self.plan_choices),
                "backend_choices": dict(self.backend_choices),
                "backend_units": dict(self.backend_units),
                "mean_latency": mean_latency,
                "total_latency": dict(self.latency_totals),
                "budget_overruns": self.budget_overruns,
                "batches": self.batches,
                "batch_requests": self.batch_requests,
            }

    def rows(self) -> list[tuple[str, object]]:
        """The snapshot flattened into (metric, value) rows for the harness."""
        snap = self.snapshot()
        rows: list[tuple[str, object]] = []
        for name in (
            "cache_hits",
            "cache_misses",
            "dominance_hits",
            "refinements",
            "coalesced",
            "subplan_hits",
            "subplan_misses",
            "subplan_stores",
            "store_hits",
            "store_misses",
            "store_invalidations",
        ):
            rows.append((name, snap[name]))
        rows.append(("hit_rate", round(snap["hit_rate"], 4)))
        for estimator, count in sorted(snap["plan_choices"].items()):
            rows.append((f"plan[{estimator}]", count))
        for backend, count in sorted(snap["backend_choices"].items()):
            rows.append((f"backend[{backend}]", count))
        for estimator, latency in sorted(snap["mean_latency"].items()):
            rows.append((f"mean_latency[{estimator}]", round(latency, 6)))
        rows.append(("budget_overruns", snap["budget_overruns"]))
        rows.append(("batches", snap["batches"]))
        rows.append(("batch_requests", snap["batch_requests"]))
        return rows

    def __repr__(self) -> str:
        return (
            f"ServiceMetrics(hits={self.cache_hits}, misses={self.cache_misses}, "
            f"plans={dict(self.plan_choices)!r})"
        )
