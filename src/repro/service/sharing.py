"""Subplan-level estimate sharing: the broker behind the plan forest.

The logical plan IR gives every subplan a content digest
(:mod:`repro.plan.nodes`), and physical lowering tags every union member
with its subplan's digest and a content-addressed seed.  This module turns
those tags into cross-query reuse:

* :class:`SubplanBroker` implements the lowering's
  :class:`~repro.plan.lowering.SubplanSharing` hook against the session's
  :class:`~repro.service.cache.ResultCache`: member estimates are stored
  under :func:`~repro.service.canonical.subplan_key` keys — subject to the
  cache's TTL/LRU rules, with value reuse restricted to entries at
  *exactly* the consumer's accuracy (dominance would serve bits an
  unshared computation could not produce) — and every query whose plan
  contains the subtree primes them back at compile time.  A stored entry
  at a different accuracy that carries a resumable computation is
  *continued* to the requested accuracy instead, composing subplan reuse
  with the refinable-result machinery.
* :func:`prepare_shared_members` is the batch-forest step: before a batch
  executes, members demanded by two or more compiled plans are estimated
  **once**, parent-side, from the exact member objects execution would use
  — so serial, thread and process backends all consume the same
  precomputed values and no worker duplicates a shared node.
* :func:`harvest_subplans` runs after an execution and banks the member
  estimates the union computed on the way, making them available to every
  later query containing the subtree.

Determinism contract: a member's estimate is a pure function of
``(database fingerprint, subplan digest, accuracy, samples-per-phase)`` —
the seed is derived from exactly those values, never from the request's
stream or the batch composition.  Sharing therefore changes *where* a
member volume is computed (parent vs worker, this query vs an earlier one),
never its value; a sharing and a non-sharing session produce bit-identical
results, and reuse of a *tighter* cached entry follows the same dominance
rule the whole-query cache has always applied.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.core.difference import DifferenceObservable
from repro.core.intersection import IntersectionObservable
from repro.core.observable import ObservableRelation
from repro.core.projection import ProjectionObservable
from repro.core.union import UnionObservable
from repro.plan.lowering import SubplanSharing
from repro.queries.aggregates import AggregateResult
from repro.service.canonical import DatabaseFingerprint, subplan_key
from repro.store import EntryMeta
from repro.volume.base import VolumeEstimate

#: Cache-key kind for subplan-granular volume entries.
SUBPLAN_KIND = "subplan:volume"


class SubplanBroker(SubplanSharing):
    """Connects plan lowering to the session's cache, metrics and seeds.

    Parameters
    ----------
    fingerprint:
        The data identity every key and seed is derived from.  A
        :class:`~repro.service.canonical.DatabaseFingerprint` enables
        plan-aware keying: each member's key/seed folds in only the
        restriction to the relations its subtree scans (registered by
        lowering through :meth:`register_relations`), so banked entries
        survive mutations of unrelated relations *and* match the streams a
        cold session over the mutated database would derive.  A plain
        string falls back to blunt whole-database keying.
    cache:
        The session's :class:`~repro.service.cache.ResultCache`, or ``None``
        for a *seed-only* broker (used by process workers for fallback
        compilations: same content-addressed member streams, no store).
    metrics:
        The session's metrics, or ``None`` (seed-only brokers).
    reuse:
        ``False`` disables lookup/store while keeping the seeds — the
        "sharing off" mode that E20 compares against: identical values,
        no reuse.
    """

    #: Above this many live locks, :meth:`_lock_for` prunes entries whose
    #: keys are no longer cached (bounds memory under long-running serving).
    lock_limit = 256

    def __init__(
        self,
        fingerprint: "str | DatabaseFingerprint",
        cache=None,
        metrics=None,
        reuse: bool = True,
    ) -> None:
        self.fingerprint = fingerprint
        self.cache = cache
        self.metrics = metrics
        self.reuse = reuse and cache is not None
        self._relations: dict[str, tuple[str, ...]] = {}
        self._locks: dict[str, threading.Lock] = {}
        self._locks_guard = threading.Lock()

    @property
    def fingerprint(self) -> str:
        """The full (whole-database) fingerprint string."""
        return self._fingerprint

    @fingerprint.setter
    def fingerprint(self, value: "str | DatabaseFingerprint") -> None:
        if isinstance(value, DatabaseFingerprint):
            self._index: Optional[DatabaseFingerprint] = value
            self._fingerprint = value.full
        else:
            self._index = None
            self._fingerprint = value

    # ------------------------------------------------------------------
    # SubplanSharing hooks (called by plan lowering)
    # ------------------------------------------------------------------
    def register_relations(self, digest: str, relations: tuple[str, ...]) -> None:
        """Record which relations the subtree behind ``digest`` scans.

        Lowering calls this for every digest it tags (before deriving the
        member's seed), so by the time a key or seed is needed the footprint
        is known.  Registration is content-addressed like everything else —
        a digest's footprint is a function of the subtree, so re-registering
        is idempotent.
        """
        self._relations[digest] = relations

    def relations_for(self, digest: str) -> Optional[tuple[str, ...]]:
        """The registered footprint of a (possibly suffixed) member digest.

        Lowering derives two synthetic digest shapes from a subtree digest:
        ``digest@order`` (a disjoin member re-aligned to the union's variable
        order) and ``digest#dN`` (the N-th disjunct of a relation scan's DNF).
        Both denote geometry carved out of the base subtree, so they share
        its footprint.  ``None`` means unregistered — unknown footprint.
        """
        relations = self._relations.get(digest)
        if relations is not None:
            return relations
        base = digest.split("@", 1)[0]
        relations = self._relations.get(base)
        if relations is not None:
            return relations
        return self._relations.get(base.split("#", 1)[0])

    def _restricted(self, digest: str) -> str:
        """The fingerprint component for ``digest``'s keys and seeds."""
        if self._index is None:
            return self._fingerprint
        return self._index.restrict(self.relations_for(digest))

    def member_seed(
        self, digest: str, epsilon: float, delta: float, samples_per_phase: int
    ) -> int:
        """Content-addressed seed: data + subplan + accuracy + phase budget.

        The data component is the *restricted* fingerprint, so a member's
        stream depends only on the relations its subtree scans: entries
        surviving an unrelated mutation keep matching what a cold run over
        the mutated database would compute — the bit-identity contract holds
        across invalidation, not just within one database version.
        """
        payload = (
            f"{self._restricted(digest)}|{digest}|"
            f"{epsilon!r}|{delta!r}|{samples_per_phase}"
        )
        return int.from_bytes(hashlib.sha256(payload.encode()).digest()[:8], "big")

    def member_lookup(
        self, digest: str, epsilon: float, delta: float, samples_per_phase: int
    ) -> VolumeEstimate | None:
        """A banked estimate a consumer at ``(ε, δ)`` may reuse bit-for-bit.

        Value reuse requires the stored entry's accuracy to *equal* the
        request — the content-addressed member stream is a function of the
        accuracy, so serving a merely *dominating* (tighter) entry would
        hand the consumer a value its own unshared computation could not
        have produced, breaking the sharing/non-sharing bit-identity
        contract.  An entry at a different accuracy is still reachable when
        its producer left resumable state: the continuation is deterministic
        in that state (PR 4's refinable contract), and is how subplan
        entries compose with the refinable machinery.
        """
        if not self.reuse:
            return None
        key = self._key(digest, samples_per_phase)
        result = self.cache.exact_lookup(key, epsilon, delta)
        if result is None:
            result = self._continue_refinable(key, digest, epsilon, delta)
        if result is None or result.estimate is None:
            if self.metrics is not None:
                self.metrics.record_subplan_miss()
            return None
        if self.metrics is not None:
            self.metrics.record_subplan_hit()
        return result.estimate

    # ------------------------------------------------------------------
    # Store side
    # ------------------------------------------------------------------
    def store_member(
        self,
        digest: str,
        estimate: VolumeEstimate,
        epsilon: float,
        delta: float,
        samples_per_phase: int,
        refinable=None,
    ) -> bool:
        """Bank one member estimate under its subplan key."""
        if not self.reuse:
            return False
        key = self._key(digest, samples_per_phase)
        stored = self.cache.put(
            key,
            AggregateResult(
                value=estimate.value, estimate=estimate, exact=False, refinable=refinable
            ),
            epsilon,
            delta,
            meta=self._meta(digest),
        )
        if stored and self.metrics is not None:
            self.metrics.record_subplan_store()
        return stored

    def ensure_member(
        self,
        union: UnionObservable,
        index: int,
        digest: str,
        samples_per_phase: int,
    ) -> VolumeEstimate:
        """Compute-once semantics for one union member (the shared node).

        Under the digest's lock: a cached (or concurrently computed) entry
        is primed and returned; otherwise the member is estimated from its
        content-addressed stream, stored, and primed.  Concurrent callers
        for the same digest therefore never duplicate the computation.
        """
        epsilon, delta = UnionObservable.member_accuracy(
            union.params, len(union.members)
        )
        with self._lock_for(self._key(digest, samples_per_phase)):
            cached = self.member_lookup(digest, epsilon, delta, samples_per_phase)
            if cached is not None:
                union.prime_member_volume(index, cached)
                return cached
            seed = self.member_seed(digest, epsilon, delta, samples_per_phase)
            member = union.members[index]
            estimate = member.estimate_volume(
                epsilon, delta, rng=np.random.default_rng(seed)
            )
            self.store_member(digest, estimate, epsilon, delta, samples_per_phase)
            union.prime_member_volume(index, estimate)
        # Bank whatever the member computed on the way (e.g. the disjunct
        # volumes of an inner union), so sibling consumers prime instead of
        # recomputing.  Outside the lock: store_member locks the cache.
        harvest_subplans(self, member, samples_per_phase)
        return estimate

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _key(self, digest: str, samples_per_phase: int) -> str:
        return subplan_key(
            self._restricted(digest), digest, SUBPLAN_KIND, (samples_per_phase,)
        )

    def _meta(self, digest: str) -> EntryMeta:
        return EntryMeta(
            kind=SUBPLAN_KIND,
            digest=digest,
            relations=self.relations_for(digest),
            fingerprint=self._restricted(digest),
        )

    def _lock_for(self, key: str) -> threading.Lock:
        with self._locks_guard:
            lock = self._locks.get(key)
            if lock is None:
                if len(self._locks) >= self.lock_limit:
                    self._prune_locks_locked()
                lock = self._locks[key] = threading.Lock()
            return lock

    def _prune_locks_locked(self) -> None:
        """Drop locks whose keys are no longer live in the cache.

        Compute-once locks are a *performance* device — losing one merely
        risks a duplicate computation whose identical value the cache's
        dominance rule deduplicates — so pruning an unlocked lock for a
        cold key is always safe.  Held locks and locks for still-cached
        keys are kept.
        """
        cache = self.cache
        for key in list(self._locks):
            lock = self._locks[key]
            if lock.locked():
                continue
            if cache is None or key not in cache:
                del self._locks[key]

    def _continue_refinable(
        self, key: str, digest: str, epsilon: float, delta: float
    ) -> AggregateResult | None:
        """Continue a resumable subplan entry to the requested accuracy.

        Inherited from the refinable machinery of the result cache: subplan
        entries whose producers left resumable state behave like whole-query
        adaptive answers.  Today's member estimates (telescoping) are not
        resumable, so this fires only for future refinable producers banked
        through :meth:`store_member`'s ``refinable`` parameter.
        """
        candidate = self.cache.refinable_lookup(key, epsilon, delta)
        if candidate is None:
            return None
        from repro.service.session import refine_result

        refined = refine_result(candidate.refinable, epsilon, delta)
        if refined is None:
            return None
        assert refined.refinable is not None
        self.cache.put(
            key, refined, epsilon, refined.refinable.delta, meta=self._meta(digest)
        )
        if self.metrics is not None:
            self.metrics.record_refinement()
        return refined


# ----------------------------------------------------------------------
# Observable traversal
# ----------------------------------------------------------------------
def iter_unions(observable: ObservableRelation) -> Iterator[UnionObservable]:
    """Every union generator reachable inside a compiled plan (root first)."""
    stack: list[ObservableRelation] = [observable]
    while stack:
        node = stack.pop()
        if isinstance(node, UnionObservable):
            yield node
            stack.extend(node.members)
        elif isinstance(node, IntersectionObservable):
            stack.extend(node.members)
        elif isinstance(node, DifferenceObservable):
            stack.extend((node.minuend, node.subtrahend))
        elif isinstance(node, ProjectionObservable):
            stack.append(node.source)


def _tagged_members(
    observable: ObservableRelation,
) -> Iterator[tuple[UnionObservable, int, str]]:
    """(union, member index, digest) for every plan-tagged union member."""
    for union in iter_unions(observable):
        if union.member_digests is None or union.member_seeds is None:
            continue
        for index, digest in enumerate(union.member_digests):
            if digest is not None:
                yield union, index, digest


def harvest_subplans(
    broker: SubplanBroker,
    observable: ObservableRelation,
    samples_per_phase: int,
) -> int:
    """Bank the member estimates a finished execution computed on the way.

    Returns the number of entries stored.  Estimates that were primed from
    the cache (or already banked by a concurrent execution) are skipped by
    the cache's own dominance rule, so harvesting is idempotent.  Called by
    the session after every executed unit; standalone use is
    ``harvest_subplans(broker, compiled_observable, samples_per_phase)``.
    """
    stored = 0
    for union, index, digest in _tagged_members(observable):
        volumes = union.member_volume_estimates()
        if volumes is None:
            continue
        epsilon, delta = UnionObservable.member_accuracy(
            union.params, len(union.members)
        )
        if broker.store_member(
            digest, volumes[index], epsilon, delta, samples_per_phase
        ):
            stored += 1
    return stored


def prepare_shared_members(session, units: Sequence) -> int:
    """The batch plan-forest step: estimate shared members once, parent-side.

    ``units`` are the batch's telescoping-route work units.  Their queries
    are compiled (through the session's memoising ``compile_cached``, so the
    backends execute these exact objects), every plan-tagged union member is
    collected, and each member demanded more than once — or by more than one
    unit — is estimated a single time from its content-addressed stream and
    primed everywhere it occurs.  Returns the number of shared members
    precomputed.
    """
    broker = session._broker
    if broker is None or not broker.reuse:
        return 0
    # Demand is grouped by (digest, accuracy, phase budget): consumers in a
    # group would compute the *identical* estimate (same member content,
    # same seed), so one computation serves them all.  Unions with different
    # member counts request different member accuracies and land in
    # different groups — their reuse still happens through the cache's
    # dominance rule, never by priming a mismatched value.
    demand: dict[
        tuple[str, float, float, int], list[tuple[UnionObservable, int]]
    ] = {}
    for unit in units:
        samples_per_phase = unit.plan.sample_budget or 800
        try:
            compiled = session.compile_cached(
                unit.query, samples_per_phase=samples_per_phase
            )
        except Exception:
            # Compilation problems belong to the executing backend, which
            # reports them with the originating request attached.
            continue
        for union, index, digest in _tagged_members(compiled):
            epsilon, delta = UnionObservable.member_accuracy(
                union.params, len(union.members)
            )
            demand.setdefault((digest, epsilon, delta, samples_per_phase), []).append(
                (union, index)
            )
    precomputed = 0
    for (digest, _, _, samples_per_phase), consumers in demand.items():
        if len(consumers) < 2:
            continue
        estimate: VolumeEstimate | None = None
        for union, index in consumers:
            if index in union._primed:
                continue  # an earlier ensure's harvest already reached it
            if estimate is None:
                estimate = broker.ensure_member(union, index, digest, samples_per_phase)
                precomputed += 1
            else:
                union.prime_member_volume(index, estimate)
    # Second pass: ensures bank transitive estimates (inner-union disjunct
    # volumes) after some consumers were already compiled — fill the gaps so
    # every compiled plan enters execution fully primed.
    for unit in units:
        samples_per_phase = unit.plan.sample_budget or 800
        try:
            compiled = session.compile_cached(
                unit.query, samples_per_phase=samples_per_phase
            )
        except Exception:
            continue
        prime_from_cache(broker, compiled, samples_per_phase)
    return precomputed


def prime_from_cache(
    broker: SubplanBroker, observable: ObservableRelation, samples_per_phase: int
) -> int:
    """Prime every unprimed, not-yet-estimated tagged member from the cache."""
    primed = 0
    for union, index, digest in _tagged_members(observable):
        if index in union._primed or union.member_volume_estimates() is not None:
            continue
        epsilon, delta = UnionObservable.member_accuracy(
            union.params, len(union.members)
        )
        cached = broker.member_lookup(digest, epsilon, delta, samples_per_phase)
        if cached is not None:
            union.prime_member_volume(index, cached)
            primed += 1
    return primed


def shared_member_digests(observables: Iterable[ObservableRelation]) -> set[str]:
    """Digests of members occurring in more than one compiled plan (for tests)."""
    seen: dict[str, int] = {}
    for position, observable in enumerate(observables):
        for _, _, digest in _tagged_members(observable):
            first = seen.setdefault(digest, position)
            if first != position:
                seen[digest] = -1
    return {digest for digest, flag in seen.items() if flag == -1}
