"""Result cache: LRU + TTL + ε-dominance, with an optional persistent tier.

Entries are keyed by the *structural* request key of
:mod:`repro.service.canonical` — accuracy parameters are deliberately not
part of the key.  The same cache holds entries at two granularities: whole
requests (``request_key``) and **subplans** (``subplan_key`` — union-member
volume estimates the sharing broker of :mod:`repro.service.sharing` banks
under their plan digests, so any query containing the subtree reuses them).
Both kinds share the TTL/LRU/refinable machinery below; whole requests are
served under the dominance rule, while subplan entries are served through
:meth:`ResultCache.exact_lookup` (bit-identity requires the exact stored
accuracy).  The key namespaces cannot collide because the request kind is
folded into the hash.  Instead the cache applies a **dominance rule** on lookup: a
stored answer computed at accuracy ``(ε', δ')`` satisfies a request for
``(ε, δ)`` whenever ``ε' <= ε`` and ``δ' <= δ`` — a tighter estimate is also a
valid looser estimate, and an exact answer (``ε' = δ' = 0``) satisfies every
request.  On store, a looser result never overwrites a tighter one that is
still fresh.

Dominance has a constructive mirror image for adaptive answers: an entry that
is too *loose* for a request but carries resumable sufficient statistics
(:attr:`~repro.queries.aggregates.AggregateResult.refinable`) can be
**continued** to the requested ε instead of recomputed —
:meth:`ResultCache.refinable_lookup` exposes exactly those entries.

Eviction is least-recently-used above ``capacity``; every entry additionally
carries a time-to-live, checked lazily on access.  The clock is injectable so
tests can drive TTL expiry deterministically.

**Two tiers.**  An attached :class:`~repro.store.ResultStore` makes the
cache write-through: accepted entries that carry provenance metadata
(:class:`~repro.store.EntryMeta`) are also persisted, and a lookup that
misses in memory falls through to disk, *promoting* the stored row back
into the LRU on a hit.  The tiers keep separate clocks — the in-memory TTL
stays on the injectable monotonic clock, while persisted rows carry a
wall-clock epoch expiry (monotonic time is meaningless across restarts).
LRU eviction never deletes from the store: memory holds the working set,
disk holds everything live.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.queries.aggregates import AggregateResult
from repro.store import EntryMeta, ResultStore, StoredEntry
from repro.volume.base import accuracy_dominates

if TYPE_CHECKING:
    from repro.service.metrics import ServiceMetrics


@dataclass
class CacheEntry:
    """One cached aggregate answer and its accuracy/lifetime metadata.

    Entries record the accuracy ``(ε, δ)`` they were computed at, so the
    cache's dominance rule can serve them to any looser request; resumable
    entries additionally carry the :class:`RefinableEstimate` continuation
    state a tighter request refines.  Created internally by
    ``ResultCache.put``; consumers read answers back through
    ``ResultCache.lookup`` / ``refinable_lookup`` rather than touching
    entries directly.
    """

    result: AggregateResult
    epsilon: float
    delta: float
    expires_at: float
    hits: int = 0
    meta: Optional[EntryMeta] = field(default=None, compare=False)

    def dominates(self, epsilon: float, delta: float) -> bool:
        """Does this entry satisfy a request at accuracy ``(epsilon, delta)``?"""
        return accuracy_dominates(self.epsilon, self.delta, epsilon, delta)

    def strictly_dominates(self, epsilon: float, delta: float) -> bool:
        """Is this entry strictly tighter than the request on some axis?"""
        return self.dominates(epsilon, delta) and (
            self.epsilon < epsilon or self.delta < delta
        )


class ResultCache:
    """An LRU result cache with TTL expiry, ε-dominance reuse and a disk tier.

    Parameters
    ----------
    capacity:
        Maximum number of live in-memory entries; the least recently used
        entry is evicted first (eviction does not touch the store).
    ttl:
        Lifetime of an entry in seconds (``None`` disables expiry).
    clock:
        Monotonic time source for the in-memory tier, injectable for tests.
    store:
        Optional persistent second tier (write-through + read-through).
    wall_clock:
        Wall-clock epoch source used for persisted expiries, injectable for
        tests; must agree with the attached store's clock.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float | None = 300.0,
        clock: Callable[[], float] = time.monotonic,
        store: ResultStore | None = None,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._wall_clock = wall_clock
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        # The session is meant to be shared by server threads; every method
        # that touches the OrderedDict or the counters takes this lock.
        self._lock = threading.Lock()
        self.store = store
        self._metrics: Optional["ServiceMetrics"] = None
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0

    def attach_store(self, store: ResultStore) -> None:
        """Attach (or replace) the persistent tier."""
        with self._lock:
            self.store = store

    def bind_metrics(self, metrics: "ServiceMetrics") -> None:
        """Report store-tier traffic to a session's metrics."""
        self._metrics = metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        """Membership in the in-memory tier only (the broker's lock-pruning
        probe — a store-resident entry re-promotes on demand)."""
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry)

    def get(
        self, key: str, epsilon: float = float("inf"), delta: float = float("inf")
    ) -> AggregateResult | None:
        """Look up a request; ``None`` on miss, expiry, or insufficient accuracy."""
        return self.lookup(key, epsilon, delta)[0]

    def lookup(
        self, key: str, epsilon: float = float("inf"), delta: float = float("inf")
    ) -> tuple[AggregateResult | None, bool]:
        """Like :meth:`get`, plus whether a *strictly* tighter entry served.

        The second component lets callers count ε-dominance reuse from the
        entry's own stored accuracy — the values the admission decision was
        actually made on.
        """
        result, strict, _ = self.lookup_with_source(key, epsilon, delta)
        return result, strict

    def lookup_with_source(
        self, key: str, epsilon: float = float("inf"), delta: float = float("inf")
    ) -> tuple[AggregateResult | None, bool, Optional[str]]:
        """Like :meth:`lookup`, plus which tier served (``"memory"``/``"store"``)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                entry = None
            source = "memory"
            if entry is None:
                entry = self._from_store(key)
                source = "store"
            if entry is None:
                self.misses += 1
                return None, False, None
            if not entry.dominates(epsilon, delta):
                self.misses += 1
                return None, False, None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry.result, entry.strictly_dominates(epsilon, delta), source

    def exact_lookup(
        self, key: str, epsilon: float, delta: float
    ) -> AggregateResult | None:
        """A live entry stored at *exactly* the requested accuracy.

        The subplan broker's value-reuse rule: a shared member estimate may
        only replace a computation that would have produced the identical
        bits, and the content-addressed member streams are a function of the
        accuracy — so dominance (a tighter entry serving a looser request)
        is deliberately **not** applied here.  Mismatched-accuracy entries
        are still reachable through :meth:`refinable_lookup`, where a
        resumable producer can be *continued* to the requested accuracy.
        No hit/miss counters move: subplan traffic is counted by the
        broker's own metrics, not the request-level ones.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is None:
                entry = self._from_store(key)
            if entry is None:
                return None
            if entry.epsilon != epsilon or entry.delta != delta:
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            return entry.result

    def refinable_lookup(
        self, key: str, epsilon: float, delta: float
    ) -> AggregateResult | None:
        """A live entry that cannot serve ``(ε, δ)`` as-is but can be *continued*.

        The mirror image of ε-dominance: when the stored answer is too loose
        for the request but carries a resumable adaptive computation
        (:attr:`~repro.queries.aggregates.AggregateResult.refinable`) whose δ
        budget covers the request, the caller may refine it in place instead
        of recomputing from scratch.  Entries that already dominate are not
        returned — the normal :meth:`lookup` path serves those.  No hit/miss
        counters move (the preceding ordinary lookup already counted the
        miss); recency is refreshed, since a refined entry is about to be
        rewritten tighter.  A persisted continuation state restored from the
        store works here too: unpickling recreates the estimator's lock and
        its sufficient statistics resume exactly where they stopped.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                entry = None
            if entry is None:
                entry = self._from_store(key)
            if entry is None:
                return None
            if entry.dominates(epsilon, delta):
                return None
            refinable = entry.result.refinable
            if refinable is None or not refinable.can_refine_to(epsilon, delta):
                return None
            self._entries.move_to_end(key)
            return entry.result

    def put(
        self,
        key: str,
        result: AggregateResult,
        epsilon: float,
        delta: float,
        meta: Optional[EntryMeta] = None,
    ) -> bool:
        """Store an answer; returns ``False`` when a fresher, tighter entry wins.

        ``meta`` carries the entry's plan provenance (digest + relation
        footprint); entries that have it are written through to the attached
        store with a wall-clock expiry.  Entries without it stay memory-only
        and are conservatively invalidated by any relation update.
        """
        with self._lock:
            now = self._clock()
            existing = self._entries.get(key)
            if existing is not None:
                if self._expired(existing):
                    # Replacing an expired entry is an expiry event like any
                    # other — the lazy-TTL counters must see it.
                    del self._entries[key]
                    self.expirations += 1
                elif existing.dominates(epsilon, delta):
                    # The stored answer is at least as accurate: keep it (but
                    # refresh recency, the key is evidently hot).
                    self._entries.move_to_end(key)
                    return False
            expires_at = float("inf") if self.ttl is None else now + self.ttl
            self._entries[key] = CacheEntry(
                result=result,
                epsilon=epsilon,
                delta=delta,
                expires_at=expires_at,
                meta=meta,
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            if self.store is not None and meta is not None:
                wall_expiry = (
                    None if self.ttl is None else self._wall_clock() + self.ttl
                )
                self.store.put(key, result, epsilon, delta, meta, wall_expiry)
            return True

    def invalidate_relations(self, names: Iterable[str]) -> int:
        """Plan-aware invalidation: drop entries referencing any of ``names``.

        Uses each entry's recorded relation footprint; entries whose
        footprint is unknown (no meta, or a planless key) are conservatively
        dropped.  Entries over disjoint footprints keep both their memory
        slot and their store row — their keys did not change, so they remain
        reachable and correct.  Returns the total dropped across both tiers.
        """
        targets = set(names)
        if not targets:
            return 0
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if entry.meta is None
                or entry.meta.relations is None
                or targets.intersection(entry.meta.relations)
            ]
            for key in doomed:
                del self._entries[key]
            dropped = len(doomed)
            self.invalidations += dropped
            if self.store is not None:
                dropped += self.store.invalidate_relations(targets)
        return dropped

    def warm_from_store(self, limit: Optional[int] = None) -> int:
        """Promote live store rows into memory (most recent first).

        Called once at session startup so a fresh process serves its first
        repeated queries from memory speed.  Returns the number promoted.
        """
        if self.store is None:
            return 0
        loaded = self.store.load_live(limit=limit or self.capacity)
        promoted = 0
        with self._lock:
            # load_live is most-recent-first; insert in reverse so the most
            # recently written row ends up most recently used.
            for key, stored in reversed(loaded):
                if stored.meta.kind == "profile":
                    # Runtime profiles share the store but are not servable
                    # results; promoting them would pollute the LRU.
                    continue
                entry = self._entry_from_stored(stored)
                if entry is None:
                    continue
                self._entries[key] = entry
                self._entries.move_to_end(key)
                promoted += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return promoted

    def purge_expired(self) -> int:
        """Drop every expired entry eagerly; returns the number removed."""
        with self._lock:
            dead = [key for key, entry in self._entries.items() if self._expired(entry)]
            for key in dead:
                del self._entries[key]
            self.expirations += len(dead)
            count = len(dead)
            if self.store is not None:
                count += self.store.purge_expired()
            return count

    def clear(self) -> None:
        """Drop all in-memory entries (counters and the store are kept)."""
        with self._lock:
            self._entries.clear()

    def _from_store(self, key: str) -> Optional[CacheEntry]:
        """Read-through: promote a live store row into the LRU (lock held)."""
        if self.store is None:
            return None
        stored = self.store.get(key)
        metrics = self._metrics
        if stored is None:
            if metrics is not None:
                metrics.record_store_miss()
            return None
        entry = self._entry_from_stored(stored)
        if entry is None:
            if metrics is not None:
                metrics.record_store_miss()
            return None
        self._entries[key] = entry
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
        if metrics is not None:
            metrics.record_store_hit()
        return entry

    def _entry_from_stored(self, stored: StoredEntry) -> Optional[CacheEntry]:
        """Convert a store row to a memory entry (wall expiry → monotonic)."""
        if stored.expires_at is None:
            expires_at = float("inf")
        else:
            remaining = stored.expires_at - self._wall_clock()
            if remaining <= 0:
                return None
            expires_at = self._clock() + remaining
        return CacheEntry(
            result=stored.result,
            epsilon=stored.epsilon,
            delta=stored.delta,
            expires_at=expires_at,
            meta=stored.meta,
        )

    def _expired(self, entry: CacheEntry) -> bool:
        return entry.expires_at < self._clock()

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
