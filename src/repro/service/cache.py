"""Result cache: LRU + TTL + ε-dominance.

Entries are keyed by the *structural* request key of
:mod:`repro.service.canonical` — accuracy parameters are deliberately not
part of the key.  The same cache holds entries at two granularities: whole
requests (``request_key``) and **subplans** (``subplan_key`` — union-member
volume estimates the sharing broker of :mod:`repro.service.sharing` banks
under their plan digests, so any query containing the subtree reuses them).
Both kinds share the TTL/LRU/refinable machinery below; whole requests are
served under the dominance rule, while subplan entries are served through
:meth:`ResultCache.exact_lookup` (bit-identity requires the exact stored
accuracy).  The key namespaces cannot collide because the request kind is
folded into the hash.  Instead the cache applies a **dominance rule** on lookup: a
stored answer computed at accuracy ``(ε', δ')`` satisfies a request for
``(ε, δ)`` whenever ``ε' <= ε`` and ``δ' <= δ`` — a tighter estimate is also a
valid looser estimate, and an exact answer (``ε' = δ' = 0``) satisfies every
request.  On store, a looser result never overwrites a tighter one that is
still fresh.

Dominance has a constructive mirror image for adaptive answers: an entry that
is too *loose* for a request but carries resumable sufficient statistics
(:attr:`~repro.queries.aggregates.AggregateResult.refinable`) can be
**continued** to the requested ε instead of recomputed —
:meth:`ResultCache.refinable_lookup` exposes exactly those entries.

Eviction is least-recently-used above ``capacity``; every entry additionally
carries a time-to-live, checked lazily on access.  The clock is injectable so
tests can drive TTL expiry deterministically.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.queries.aggregates import AggregateResult
from repro.volume.base import accuracy_dominates


@dataclass
class CacheEntry:
    """One cached aggregate answer and its accuracy/lifetime metadata."""

    result: AggregateResult
    epsilon: float
    delta: float
    expires_at: float
    hits: int = 0

    def dominates(self, epsilon: float, delta: float) -> bool:
        """Does this entry satisfy a request at accuracy ``(epsilon, delta)``?"""
        return accuracy_dominates(self.epsilon, self.delta, epsilon, delta)

    def strictly_dominates(self, epsilon: float, delta: float) -> bool:
        """Is this entry strictly tighter than the request on some axis?"""
        return self.dominates(epsilon, delta) and (
            self.epsilon < epsilon or self.delta < delta
        )


class ResultCache:
    """An LRU result cache with TTL expiry and ε-dominance reuse.

    Parameters
    ----------
    capacity:
        Maximum number of live entries; the least recently used entry is
        evicted first.
    ttl:
        Lifetime of an entry in seconds (``None`` disables expiry).
    clock:
        Monotonic time source, injectable for tests.
    """

    def __init__(
        self,
        capacity: int = 1024,
        ttl: float | None = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        if ttl is not None and ttl <= 0:
            raise ValueError("ttl must be positive (or None to disable)")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        # The session is meant to be shared by server threads; every method
        # that touches the OrderedDict or the counters takes this lock.
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.get(key)
            return entry is not None and not self._expired(entry)

    def get(
        self, key: str, epsilon: float = float("inf"), delta: float = float("inf")
    ) -> AggregateResult | None:
        """Look up a request; ``None`` on miss, expiry, or insufficient accuracy."""
        return self.lookup(key, epsilon, delta)[0]

    def lookup(
        self, key: str, epsilon: float = float("inf"), delta: float = float("inf")
    ) -> tuple[AggregateResult | None, bool]:
        """Like :meth:`get`, plus whether a *strictly* tighter entry served.

        The second component lets callers count ε-dominance reuse from the
        entry's own stored accuracy — the values the admission decision was
        actually made on.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None, False
            if self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None, False
            if not entry.dominates(epsilon, delta):
                self.misses += 1
                return None, False
            self._entries.move_to_end(key)
            entry.hits += 1
            self.hits += 1
            return entry.result, entry.strictly_dominates(epsilon, delta)

    def exact_lookup(
        self, key: str, epsilon: float, delta: float
    ) -> AggregateResult | None:
        """A live entry stored at *exactly* the requested accuracy.

        The subplan broker's value-reuse rule: a shared member estimate may
        only replace a computation that would have produced the identical
        bits, and the content-addressed member streams are a function of the
        accuracy — so dominance (a tighter entry serving a looser request)
        is deliberately **not** applied here.  Mismatched-accuracy entries
        are still reachable through :meth:`refinable_lookup`, where a
        resumable producer can be *continued* to the requested accuracy.
        No hit/miss counters move: subplan traffic is counted by the
        broker's own metrics, not the request-level ones.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if self._expired(entry):
                del self._entries[key]
                self.expirations += 1
                return None
            if entry.epsilon != epsilon or entry.delta != delta:
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            return entry.result

    def refinable_lookup(
        self, key: str, epsilon: float, delta: float
    ) -> AggregateResult | None:
        """A live entry that cannot serve ``(ε, δ)`` as-is but can be *continued*.

        The mirror image of ε-dominance: when the stored answer is too loose
        for the request but carries a resumable adaptive computation
        (:attr:`~repro.queries.aggregates.AggregateResult.refinable`) whose δ
        budget covers the request, the caller may refine it in place instead
        of recomputing from scratch.  Entries that already dominate are not
        returned — the normal :meth:`lookup` path serves those.  No hit/miss
        counters move (the preceding ordinary lookup already counted the
        miss); recency is refreshed, since a refined entry is about to be
        rewritten tighter.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None or self._expired(entry):
                return None
            if entry.dominates(epsilon, delta):
                return None
            refinable = entry.result.refinable
            if refinable is None or not refinable.can_refine_to(epsilon, delta):
                return None
            self._entries.move_to_end(key)
            return entry.result

    def put(
        self, key: str, result: AggregateResult, epsilon: float, delta: float
    ) -> bool:
        """Store an answer; returns ``False`` when a fresher, tighter entry wins."""
        with self._lock:
            now = self._clock()
            existing = self._entries.get(key)
            if existing is not None and not self._expired(existing):
                if existing.dominates(epsilon, delta):
                    # The stored answer is at least as accurate: keep it (but
                    # refresh recency, the key is evidently hot).
                    self._entries.move_to_end(key)
                    return False
            expires_at = float("inf") if self.ttl is None else now + self.ttl
            self._entries[key] = CacheEntry(
                result=result, epsilon=epsilon, delta=delta, expires_at=expires_at
            )
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return True

    def purge_expired(self) -> int:
        """Drop every expired entry eagerly; returns the number removed."""
        with self._lock:
            dead = [key for key, entry in self._entries.items() if self._expired(entry)]
            for key in dead:
                del self._entries[key]
            self.expirations += len(dead)
            return len(dead)

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()

    def _expired(self, entry: CacheEntry) -> bool:
        return entry.expires_at < self._clock()

    def __repr__(self) -> str:
        return (
            f"ResultCache(size={len(self._entries)}/{self.capacity}, "
            f"hits={self.hits}, misses={self.misses})"
        )
