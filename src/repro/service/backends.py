"""Pluggable execution backends for the batch executor.

:func:`repro.service.executor.execute_batch` resolves, de-duplicates and
commits; *how* the unique cache misses are computed is delegated to an
:class:`ExecutionBackend`:

* :class:`SerialBackend` — compute the units one after the other on the
  calling thread (no pool overhead; right for tiny batches);
* :class:`ThreadBackend` — fan units out over a thread pool (the pre-backend
  behaviour).  Right when the work is NumPy/SciPy-heavy: those kernels
  release the GIL, and threads share the session's compiled-plan cache and
  metrics without any serialization;
* :class:`ProcessBackend` — shard units across a ``ProcessPoolExecutor``.
  Right when the work is GIL-bound (the telescoping estimator's phase loops,
  constraint algebra, canonicalization): each worker process owns a whole
  core.

Every backend consumes the same :class:`WorkUnit` values and must return
bit-identical results: a unit carries the *seed* of its request's random
stream (see :func:`repro.sampling.rng.spawn_seeds`), so whether the stream is
spawned in the calling process or in a worker process, the draws are the
same.  The process backend ships each worker a pickled work unit — database
fingerprint, compiled plan, spawned seed — while the heavy immutable state
(the database with its cached float constraint systems, the compiled
observables with their polytope H-representations) is warmed once and
published through the session's :class:`repro.service.stateplane.StatePlane`:
workers receive a few-hundred-byte segment manifest per batch and attach to
the shared-memory arena zero-copy.  When the plane is unavailable (platform
without ``shared_memory``, publish error, worker attach failure) the backend
falls back — with a logged warning — to pickling the full setup into the
pool initializer once per batch, the historical behaviour.

Worker failures never surface as bare pool exceptions: every backend wraps
them in :class:`BatchExecutionError`, which names the originating batch
request index and cache key.
"""

from __future__ import annotations

import contextvars
import logging
import os
import pickle
import time
import traceback
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from multiprocessing import get_all_start_methods, get_context
from typing import Mapping, Sequence

import numpy as np

from repro.constraints.database import ConstraintDatabase
from repro.core.observable import GeneratorParams, ObservableRelation
from repro.queries.aggregates import AggregateResult
from repro.queries.ast import Query
from repro.service.planner import Plan
from repro.telemetry.tracer import (
    NULL_TRACER,
    RecordingTracer,
    Span,
    activate,
    current_tracer,
)

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class WorkUnit:
    """One de-duplicated cache miss, self-contained enough to ship anywhere.

    Attributes
    ----------
    index:
        First-occurrence position of the unit's key in the submitted batch
        (duplicates coalesce onto this request).
    key:
        The structural cache key the unit computes.
    query:
        The request's query AST.
    plan:
        The planner's verdict for the unit.
    seed:
        Seed of the request's spawned random stream;
        ``np.random.default_rng(seed)`` reconstructs the exact stream in any
        process.
    fingerprint:
        The session's database fingerprint, so a worker can verify it is
        computing against the data the key was derived from.
    refinable:
        A cached resumable adaptive computation to *continue* instead of
        computing afresh (``None`` for ordinary misses).  The refinable
        state pickles — sequences, generators and the symbolic body — so
        the process backend ships it to a worker and the refreshed state
        back; the continuation is deterministic in that state, making the
        refined value bit-identical across backends.
    """

    index: int
    key: str
    query: Query
    plan: Plan
    seed: int
    fingerprint: str
    refinable: object | None = None


@dataclass
class WorkResult:
    """The computed answer for one work unit (plus its wall-clock cost).

    ``refined`` marks answers produced by *continuing* a cached resumable
    computation rather than executing the plan — the executor counts those
    in the refinement metric.  ``spans``/``counters`` carry trace records a
    worker *process* collected locally (``None`` for in-process backends,
    whose spans land directly in the session's tracer): the executor adopts
    them into the parent tracer after the batch so the span tree looks the
    same whichever backend ran the unit.
    """

    key: str
    result: AggregateResult
    plan: Plan
    elapsed: float
    refined: bool = False
    spans: list[Span] | None = None
    counters: dict[str, int] | None = None


class BatchExecutionError(RuntimeError):
    """A batch computation failed; names the originating request.

    The executor's contract is that pool internals never leak: whatever a
    unit's computation raises — in a worker thread or a worker process — the
    caller sees this exception, carrying the batch ``index`` of the request
    whose computation failed, its cache ``key``, the ``backend`` that ran it,
    and a rendering of the original error (chained as ``__cause__`` when the
    failure happened in-process).
    """

    def __init__(self, index: int, key: str, backend: str, cause: str) -> None:
        super().__init__(
            f"batch request {index} (key {key[:12]}…) failed on the "
            f"{backend} backend: {cause}"
        )
        self.index = index
        self.key = key
        self.backend = backend
        self.cause = cause


class ExecutionBackend(ABC):
    """Strategy interface: compute a batch's unique cache misses.

    Implementations must return one :class:`WorkResult` per unit, in unit
    order, and must be *value-transparent*: for a fixed unit (same plan, same
    seed) every backend produces bit-identical results.  Custom strategies
    subclass this and pass an instance to ``submit_batch(backend=...)``.
    """

    #: Short name used for ``submit_batch(backend=...)`` and in the metrics.
    name: str = "?"

    @abstractmethod
    def execute(
        self, session, units: Sequence[WorkUnit], workers: int
    ) -> list[WorkResult]:
        """Compute every unit and return the results in unit order."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _referenced_relations(queries) -> set[str]:
    """The stored-relation names a collection of query ASTs mentions."""
    from repro.queries.ast import QAnd, QExists, QNot, QOr, QRelation

    names: set[str] = set()

    def scan(node) -> None:
        if isinstance(node, QRelation):
            names.add(node.name)
        elif isinstance(node, (QAnd, QOr)):
            for operand in node.operands:
                scan(operand)
        elif isinstance(node, (QNot, QExists)):
            scan(node.operand)

    for query in queries:
        scan(query)
    return names


def _compute_in_session(
    session, unit: WorkUnit, backend: str, enqueued: float | None = None
) -> WorkResult:
    """Compute one unit inside the calling session (serial and thread path).

    ``enqueued`` is the ``perf_counter`` instant the unit entered the
    backend; the gap to compute start is recorded as queue wait in the
    session's observatory (serial units wait behind their predecessors,
    thread units behind pool scheduling).
    """
    if enqueued is not None:
        observatory = getattr(session, "observatory", None)
        if observatory is not None:
            observatory.observe("queue_wait_seconds", time.perf_counter() - enqueued)
    rng = np.random.default_rng(unit.seed)
    with current_tracer().span(
        "work-unit",
        key=unit.key[:12],
        index=unit.index,
        route=unit.plan.estimator,
        backend=backend,
    ) as span:
        try:
            if unit.refinable is not None:
                from repro.service.session import refine_result

                start = time.perf_counter()
                refined = refine_result(
                    unit.refinable, unit.plan.epsilon, unit.plan.delta
                )
                elapsed = time.perf_counter() - start
                if refined is not None:
                    span.annotate(refined=True)
                    return WorkResult(
                        key=unit.key,
                        result=refined,
                        plan=unit.plan,
                        elapsed=elapsed,
                        refined=True,
                    )
                # The continuation could not certify the target (cap
                # exhausted): fall through to a fresh computation of the
                # planned route.
            result, elapsed = session._execute_unit(unit.plan, unit.query, rng)
        except Exception as error:
            raise BatchExecutionError(
                unit.index, unit.key, backend, f"{type(error).__name__}: {error}"
            ) from error
        return WorkResult(key=unit.key, result=result, plan=unit.plan, elapsed=elapsed)


class SerialBackend(ExecutionBackend):
    """Compute the units one after the other on the calling thread.

    No pool overhead — the right backend for tiny batches and single-core
    hosts; ``submit_batch(..., backend="serial")`` selects it explicitly.
    """

    name = "serial"

    def execute(
        self, session, units: Sequence[WorkUnit], workers: int
    ) -> list[WorkResult]:
        batch_start = time.perf_counter()
        return [
            _compute_in_session(session, unit, self.name, enqueued=batch_start)
            for unit in units
        ]


class ThreadBackend(ExecutionBackend):
    """Fan units out over a thread pool sharing the session's caches.

    Scales when the work releases the GIL (the blocked NumPy Monte-Carlo
    kernels); GIL-bound telescoping work belongs on
    :class:`ProcessBackend` instead.  Selected with
    ``submit_batch(..., backend="thread")`` or
    ``ThreadBackend(max_workers=4)``.
    """

    name = "thread"

    def execute(
        self, session, units: Sequence[WorkUnit], workers: int
    ) -> list[WorkResult]:
        batch_start = time.perf_counter()
        if workers <= 1 or len(units) <= 1:
            return [
                _compute_in_session(session, unit, self.name, enqueued=batch_start)
                for unit in units
            ]
        # Each task carries a copy of the submitting thread's context so the
        # active tracer and the current span (the batch's compute span)
        # propagate into the pool: worker-thread spans parent correctly
        # instead of becoming roots in a default context.
        contexts = [contextvars.copy_context() for _ in units]
        with ThreadPoolExecutor(max_workers=min(workers, len(units))) as pool:
            return list(
                pool.map(
                    lambda pair: pair[0].run(
                        _compute_in_session,
                        session,
                        pair[1],
                        self.name,
                        batch_start,
                    ),
                    zip(contexts, units),
                )
            )


# ----------------------------------------------------------------------
# Process backend: pickled shared setup + pickled work units
# ----------------------------------------------------------------------
@dataclass
class _SharedSetup:
    """The per-batch immutable state every worker process receives once.

    ``compiled`` maps cache keys to pre-compiled observable plans (warmed so
    their float constraint systems and H-representations ship ready to use);
    ``params`` carries the session's default accuracy so fallback
    compilations in a worker match the parent session's ``compile_cached``
    bit for bit.
    """

    fingerprint: str
    database: ConstraintDatabase
    params: GeneratorParams
    compiled: Mapping[str, ObservableRelation] = field(default_factory=dict)
    #: The parent session's per-relation fingerprint index (picklable), so
    #: worker-side fallback brokers derive the same plan-aware restricted
    #: fingerprints — and therefore the same member seeds — as the parent.
    fingerprints: object | None = None
    #: The parent planner's lowering cost bound, so fallback compilations in
    #: a worker take the same symbolic-vs-observable decisions.
    max_symbolic_disjuncts: int = 512
    #: Whether the parent session is tracing: workers then record spans into
    #: a local flight recorder and ship them back inside the result tuple.
    #: Tracing never touches the random streams, so the flags cannot change
    #: computed values — only whether observation records travel back.
    trace: bool = False
    trace_diagnostics: bool = False

    def lowering_options(self, samples_per_phase: int):
        from repro.plan.lowering import LoweringOptions

        return LoweringOptions(
            samples_per_phase=samples_per_phase,
            max_symbolic_disjuncts=self.max_symbolic_disjuncts,
        )


class _AttachFailure:
    """Worker-local marker: the arena attach failed during initialization.

    Pool initializers cannot signal errors to the parent directly, so the
    failure is parked here and every unit executed by this worker reports
    an ``("attach_failed", ...)`` record; the parent then retries the batch
    with inline shipping.
    """

    __slots__ = ("rendering",)

    def __init__(self, rendering: str) -> None:
        self.rendering = rendering


_WORKER_SHARED: _SharedSetup | _AttachFailure | None = None


def _worker_initialize(payload: bytes) -> None:
    """Pool initializer: materialise the shared setup once per worker process.

    ``payload`` is a pickled ``("arena", SegmentManifest)`` — attach to the
    parent's shared-memory segment and rebuild the setup zero-copy — or
    ``("inline", _SharedSetup)``, the historical full pickle.
    """
    global _WORKER_SHARED
    kind, value = pickle.loads(payload)
    if kind == "arena":
        try:
            from repro.service import stateplane

            _WORKER_SHARED = stateplane.attach(value)
        except Exception as error:
            _WORKER_SHARED = _AttachFailure(
                f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
            )
    else:
        _WORKER_SHARED = value


def _worker_execute(unit_bytes: bytes) -> bytes:
    """Compute one pickled work unit against the worker's shared setup.

    Returns a pickled ``("ok", key, result, elapsed, compiled, refined,
    spans, counters)`` tuple — ``compiled`` being the post-execution
    compiled plan (or ``None``), so the parent can adopt the state a serial
    execution would have left in its own memoised object, ``refined``
    marking answers that continued a shipped resumable computation, and
    ``spans``/``counters`` the worker's locally recorded trace (``None``
    when the parent is not tracing) — or ``("error", index, key,
    rendering)``; exceptions are rendered in the worker because traceback
    objects do not cross process boundaries.
    """
    unit: WorkUnit | None = None
    try:
        unit = pickle.loads(unit_bytes)
        shared = _WORKER_SHARED
        if isinstance(shared, _AttachFailure):
            # Not an execution error: the parent retries the whole batch
            # with inline shipping when it sees this record.
            return pickle.dumps(
                ("attach_failed", unit.index, unit.key, shared.rendering)
            )
        if shared is None:
            raise RuntimeError("worker has no shared setup (initializer did not run)")
        if shared.fingerprint != unit.fingerprint:
            raise RuntimeError(
                "work unit fingerprint does not match the shared database "
                f"({unit.fingerprint[:12]}… vs {shared.fingerprint[:12]}…)"
            )
        from repro.queries.compiler import compile_plan
        from repro.service.session import refine_result, run_plan
        from repro.service.sharing import SubplanBroker

        # The parent's tracer cannot cross the process boundary, so a
        # tracing parent gets a local flight recorder here; its spans ship
        # back in the result and the executor adopts them under the batch's
        # compute span.  Tracing reads already-drawn data only — same
        # streams, same values, traced or not.
        tracer = (
            RecordingTracer(diagnostics=shared.trace_diagnostics)
            if shared.trace
            else NULL_TRACER
        )
        refined_result = None
        refined_elapsed = 0.0
        with activate(tracer), tracer.span(
            "worker-unit",
            key=unit.key[:12],
            index=unit.index,
            route=unit.plan.estimator,
            backend="process",
        ) as span:
            if unit.refinable is not None:
                # Continue the shipped resumable state instead of
                # recomputing; the refreshed state travels back inside the
                # result so the parent's cache adopts it.
                start = time.perf_counter()
                refined_result = refine_result(
                    unit.refinable, unit.plan.epsilon, unit.plan.delta
                )
                refined_elapsed = time.perf_counter() - start
                if refined_result is not None:
                    span.annotate(refined=True)
            if refined_result is None:
                # Cap exhausted without certification (or an ordinary
                # miss): compute the planned route afresh.
                rng = np.random.default_rng(unit.seed)
                compiled = shared.compiled.get(unit.key)
                start = time.perf_counter()
                result = run_plan(
                    unit.plan,
                    unit.query,
                    shared.database,
                    rng=rng,
                    compiled=compiled,
                    # Mirror ServiceSession.compile_cached: fallback
                    # compilations use the session's default accuracy (and
                    # gamma), not the plan's, and a seed-only sharing broker
                    # — no cache in the worker, but the same
                    # content-addressed member streams — so the worker's
                    # compiled form matches the thread path bit for bit.
                    compile_fn=lambda spp: compile_plan(
                        unit.query,
                        shared.database,
                        params=shared.params,
                        options=shared.lowering_options(spp),
                        sharing=SubplanBroker(
                            fingerprint=shared.fingerprints or shared.fingerprint,
                            cache=None,
                        ),
                    ),
                )
                elapsed = time.perf_counter() - start
        spans = tracer.finished() or None if shared.trace else None
        # Ship only the span-less counts: the spans above carry their own
        # counters through adoption, so shipping the aggregate too would
        # double-count every kernel counter in the parent's trace.
        counters = (tracer.global_counters() or None) if shared.trace else None
        if refined_result is not None:
            return pickle.dumps(
                ("ok", unit.key, refined_result, refined_elapsed, None, True, spans, counters)
            )
        return pickle.dumps(
            ("ok", unit.key, result, elapsed, compiled, False, spans, counters)
        )
    except Exception as error:
        rendering = f"{type(error).__name__}: {error}\n{traceback.format_exc()}"
        index = -1 if unit is None else unit.index
        key = "?" if unit is None else unit.key
        return pickle.dumps(("error", index, key, rendering))


class ProcessBackend(ExecutionBackend):
    """Shard units across worker processes for GIL-bound plans.

    Parameters
    ----------
    start_method:
        ``multiprocessing`` start method; defaults to ``"fork"`` where
        available (cheap worker startup) and ``"spawn"`` elsewhere.
    single_core_fallback:
        On hosts where ``os.cpu_count()`` is 1 there is no parallelism to
        gain, so by default an explicit ``backend="process"`` logs a warning
        and computes the units serially (same values, same bookkeeping,
        ``backend`` still reported as ``"process"``) instead of paying pool
        spin-up.  Pass ``False`` to force a real pool regardless (tests of
        the worker plumbing do).
    """

    name = "process"

    def __init__(
        self, start_method: str | None = None, single_core_fallback: bool = True
    ) -> None:
        if start_method is None:
            start_method = (
                "fork" if "fork" in get_all_start_methods() else "spawn"
            )
        self.start_method = start_method
        self.single_core_fallback = single_core_fallback
        #: Bytes of the initializer payload actually shipped by the last
        #: pool dispatch (manifest or inline) — the E25 shrink witness reads
        #: this.
        self.last_payload_bytes: int | None = None
        self._warned_single_core = False

    def execute(
        self, session, units: Sequence[WorkUnit], workers: int
    ) -> list[WorkResult]:
        if not units:
            return []
        if self.single_core_fallback and (os.cpu_count() or 1) <= 1:
            if not self._warned_single_core:
                logger.warning(
                    "process backend requested on a single-core host; "
                    "degrading to serial execution (pool spin-up would buy "
                    "no parallelism)"
                )
                self._warned_single_core = True
            batch_start = time.perf_counter()
            return [
                _compute_in_session(session, unit, self.name, enqueued=batch_start)
                for unit in units
            ]
        shared = self._shared_setup(session, units)
        plane = getattr(session, "state_plane", None)
        observatory = getattr(session, "observatory", None)
        manifest = plane.publish(shared, shared.fingerprint) if plane is not None else None
        if manifest is not None:
            payload = pickle.dumps(("arena", manifest), protocol=pickle.HIGHEST_PROTOCOL)
        else:
            payload = pickle.dumps(("inline", shared), protocol=pickle.HIGHEST_PROTOCOL)
        self.last_payload_bytes = len(payload)
        unit_blobs = [
            pickle.dumps(unit, protocol=pickle.HIGHEST_PROTOCOL) for unit in units
        ]
        max_workers = max(1, min(workers, len(units), (os.cpu_count() or 1) * 4))
        if manifest is not None:
            plane.lease(manifest.digest)
        try:
            raw, arrivals = self._run_pool(payload, unit_blobs, max_workers, units)
            records = [pickle.loads(blob) for blob in raw]
            if manifest is not None and any(
                record[0] == "attach_failed" for record in records
            ):
                failure = next(r for r in records if r[0] == "attach_failed")
                logger.warning(
                    "worker failed to attach shared-memory segment %s; "
                    "retrying batch with inline setup shipping: %s",
                    manifest.name,
                    failure[3].splitlines()[0] if failure[3] else "unknown",
                )
                plane.mark_attach_failure()
                payload = pickle.dumps(
                    ("inline", shared), protocol=pickle.HIGHEST_PROTOCOL
                )
                self.last_payload_bytes = len(payload)
                raw, arrivals = self._run_pool(payload, unit_blobs, max_workers, units)
                records = [pickle.loads(blob) for blob in raw]
            elif manifest is not None and observatory is not None:
                # Each pool worker runs the initializer (and thus the
                # attach) exactly once; counted parent-side because worker
                # initializers cannot reach the observatory.
                observatory.count("arena_worker_attaches", max_workers)
        finally:
            if manifest is not None:
                plane.release(manifest.digest)
        results: list[WorkResult] = []
        for unit, record, arrival in zip(units, records, arrivals):
            if record[0] == "error":
                _, index, key, rendering = record
                raise BatchExecutionError(index, key, self.name, rendering)
            _, key, result, elapsed, compiled, refined, spans, counters = record
            if observatory is not None:
                # Worker clocks share no epoch with the parent, so queue
                # wait is approximated parent-side: time from dispatch to
                # the result's arrival minus the measured compute, clamped.
                observatory.observe(
                    "queue_wait_seconds", max(0.0, arrival - elapsed)
                )
            if compiled is not None:
                # Adopt the worker's post-execution compiled state so the
                # parent's memoised plan is indistinguishable from one the
                # serial/thread path executed — without this, caches the
                # estimators fill *during* execution (e.g. union member
                # volumes) would exist after a serial batch but not after a
                # process batch, making later recomputations of the same key
                # history-dependent on the backend choice.
                session._adopt_compiled(
                    unit.query, unit.plan.sample_budget or 800, compiled
                )
            results.append(
                WorkResult(
                    key=key,
                    result=result,
                    plan=unit.plan,
                    elapsed=elapsed,
                    refined=refined,
                    spans=spans,
                    counters=counters,
                )
            )
        return results

    def _run_pool(
        self,
        payload: bytes,
        unit_blobs: list[bytes],
        max_workers: int,
        units: Sequence[WorkUnit],
    ) -> tuple[list[bytes], list[float]]:
        """One pool dispatch; returns raw result blobs and arrival offsets."""
        dispatch_start = time.perf_counter()
        arrivals: list[float] = []
        try:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=get_context(self.start_method),
                initializer=_worker_initialize,
                initargs=(payload,),
            ) as pool:
                raw = []
                for blob in pool.map(_worker_execute, unit_blobs):
                    raw.append(blob)
                    arrivals.append(time.perf_counter() - dispatch_start)
        except Exception as error:
            # Pool-wide failures (a worker OOM-killed → BrokenProcessPool,
            # an unpicklable payload, ...) have no single originating
            # request; they are attributed to the batch's first unit so the
            # documented "never a bare pool exception" contract holds.
            raise BatchExecutionError(
                units[0].index,
                units[0].key,
                self.name,
                f"pool failure: {type(error).__name__}: {error}",
            ) from error
        return raw, arrivals

    def _shared_setup(self, session, units: Sequence[WorkUnit]) -> _SharedSetup:
        """Build (and warm) the once-per-batch payload.

        Telescoping units reuse the session's memoised compiled plans — the
        same objects the serial and thread backends execute — so the values
        cannot depend on the backend.  Warming materialises the cached float
        constraint systems and polytope H-representations *before* pickling:
        the heavy immutable state is prepared once here rather than once per
        request in every worker.  Only the relations the batch's queries
        actually reference are shipped — a batch touching one relation of a
        large database must not pay for warming and pickling all of them.
        """
        compiled: dict[str, ObservableRelation] = {}
        for unit in units:
            if unit.plan.estimator == "telescoping" and unit.key not in compiled:
                try:
                    observable = session.compile_cached(
                        unit.query, samples_per_phase=unit.plan.sample_budget or 800
                    )
                except Exception as error:
                    # Compilation happens parent-side (so workers share the
                    # session's memoised plans); its failures still belong to
                    # the originating request, not to the pool machinery.
                    raise BatchExecutionError(
                        unit.index,
                        unit.key,
                        self.name,
                        f"{type(error).__name__}: {error}",
                    ) from error
                compiled[unit.key] = observable.warm()
        database = session.database
        referenced = _referenced_relations(unit.query for unit in units)
        shipped = ConstraintDatabase()
        for name in database.names():
            if name in referenced:
                shipped.set_relation(name, database.relation(name).warm_float_systems())
        return _SharedSetup(
            # The fingerprint identifies the *data version* the keys were
            # derived from, not the (pruned) content shipped.
            fingerprint=session.fingerprint,
            database=shipped,
            params=session.params,
            compiled=compiled,
            fingerprints=getattr(session, "fingerprints", None),
            max_symbolic_disjuncts=session.planner.max_symbolic_disjuncts,
            trace=session.tracer.enabled,
            trace_diagnostics=session.tracer.diagnostics,
        )


#: Registry of the built-in backends, keyed by their ``submit_batch`` names.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    backend.name: backend
    for backend in (SerialBackend, ThreadBackend, ProcessBackend)
}


def resolve_backend(backend: ExecutionBackend | str) -> ExecutionBackend:
    """Normalise a backend name or instance into an :class:`ExecutionBackend`.

    Accepts ``"serial"`` / ``"thread"`` / ``"process"``, an already-built
    backend (returned as-is), or ``None`` for the default serial backend —
    the form every ``backend=`` parameter in the service layer takes.
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if isinstance(backend, str):
        try:
            return BACKENDS[backend]()
        except KeyError:
            choices = ", ".join(sorted(BACKENDS))
            raise ValueError(
                f"unknown backend {backend!r} (choose from: {choices})"
            ) from None
    raise TypeError(
        f"backend must be a name or an ExecutionBackend, got {type(backend).__name__}"
    )
