"""The serving facade: plan, cache, execute, measure.

:class:`ServiceSession` is the object a server process holds per database.
Every request flows through the same pipeline:

1. **canonicalize** — the query and database fingerprint become a structural
   cache key (:mod:`repro.service.canonical`);
2. **cache lookup** — subject to the ε-dominance rule of
   :mod:`repro.service.cache`;
3. **plan** — on a miss, the cost model of :mod:`repro.service.planner`
   chooses between exact evaluation, box Monte-Carlo and the telescoping
   estimator, with sample/time budgets;
4. **execute** — :func:`run_plan` carries the plan out;
5. **record** — plan choice, latency and cache traffic land in
   :class:`~repro.service.metrics.ServiceMetrics`.

Batches go through :func:`repro.service.executor.execute_batch`, which
de-duplicates requests and fans misses out across a worker pool with
deterministic per-request random streams.
"""

from __future__ import annotations

import logging
import time
from pathlib import Path
from threading import Lock
from typing import Callable

import numpy as np

from repro.constraints.database import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.core.observable import GeneratorParams, ObservableRelation
from repro.queries.aggregates import AggregateResult, exact_volume
from repro.queries.ast import Query
from repro.queries.compiler import compile_plan, compile_query
from repro.queries.symbolic import evaluate_symbolic
from repro.sampling.rng import RandomState, ensure_rng
from repro.service.cache import ResultCache
from repro.service.canonical import (
    DatabaseFingerprint,
    compose_key,
    fingerprint_index,
    plan_identity,
)
from repro.service.metrics import ServiceMetrics
from repro.service.planner import Plan, Planner, telescoping_samples_per_phase
from repro.service.sharing import SubplanBroker, harvest_subplans
from repro.service.stateplane import StatePlane
from repro.store import EntryMeta, ResultStore
from repro.telemetry.observatory import Observatory
from repro.telemetry.tracer import NULL_TRACER, Tracer, activate, current_tracer
from repro.volume.monte_carlo import monte_carlo_volume

logger = logging.getLogger(__name__)


def run_plan(
    plan: Plan,
    query: Query,
    database: ConstraintDatabase,
    params: GeneratorParams | None = None,
    rng: RandomState = None,
    compiled: ObservableRelation | None = None,
    compile_fn: Callable[[int], ObservableRelation] | None = None,
) -> AggregateResult:
    """Execute a planner verdict and return the aggregate answer.

    ``compiled`` lets callers reuse a previously compiled observable plan for
    the telescoping route; ``compile_fn`` (samples-per-phase → observable)
    lets them keep control of compilation for the *fallback* paths too — the
    session passes its memoising ``compile_cached`` so fallbacks share the
    compiled-plan cache and the session's gamma.  The Monte-Carlo route falls
    back to telescoping when the query result has no syntactic bounding box
    or fills too little of it; the adaptive route falls back when there is no
    box or its sample cap is exhausted before the confidence sequence
    certifies the contract.
    """
    if plan.estimator == "exact":
        return exact_volume(query, database)
    rng = ensure_rng(rng)
    if plan.estimator in ("monte_carlo", "adaptive"):
        relation = evaluate_symbolic(query, database)
        box = relation.bounding_box()
        if box is not None and all(name in box for name in relation.variables):
            bounds = [
                (float(box[name][0]), float(box[name][1]))
                for name in relation.variables
            ]
            if plan.estimator == "adaptive":
                from repro.inference import (
                    AdaptiveConfig,
                    AdaptiveMonteCarlo,
                    RefinableEstimate,
                )

                estimator = AdaptiveMonteCarlo(
                    relation,
                    bounds,
                    delta=plan.delta,
                    rng=rng,
                    config=AdaptiveConfig(
                        block_size=plan.block_size or 8192,
                        # The plan's fraction assumption dimensions the
                        # per-run cap (the fixed Chernoff schedule for the
                        # same contract); it scales automatically when the
                        # cache later refines this estimator to a tighter ε.
                        min_fraction=plan.min_hit_fraction or 0.05,
                        # The planner's absolute ceiling rides along so
                        # Planner(adaptive_sample_cap=...) actually bounds
                        # the stream at execution time.
                        max_samples=plan.sample_ceiling or 200_000,
                    ),
                )
                estimate = estimator.run(plan.epsilon)
                if estimate.details.get("met", False):
                    return AggregateResult(
                        value=estimate.value,
                        estimate=estimate,
                        exact=False,
                        # The estimator itself is the resumable sufficient
                        # statistic: the cache can continue it to a tighter
                        # ε instead of recomputing.
                        refinable=RefinableEstimate(
                            estimator, epsilon=plan.epsilon, delta=plan.delta
                        ),
                    )
                # Cap exhausted before the sequence certified the contract
                # (small volume fraction or adversarial variance): fall
                # through to the route that guarantees it.
                logger.debug(
                    "adaptive cap exhausted at eps=%g (achieved %g); "
                    "falling back to telescoping",
                    plan.epsilon,
                    estimate.epsilon,
                )
            else:
                from repro.sampling.oracles import batch_oracle_from_relation

                estimate = monte_carlo_volume(
                    batch_oracle_from_relation(relation),
                    bounds,
                    plan.epsilon,
                    plan.delta,
                    rng=rng,
                    samples=plan.sample_budget or None,
                    block_size=plan.block_size or 8192,
                )
                fraction = estimate.details.get("hit_fraction", 0.0)
                if fraction >= plan.min_hit_fraction:
                    return AggregateResult(
                        value=estimate.value, estimate=estimate, exact=False
                    )
                # The body fills too little of its box: the sample size was
                # dimensioned for vol(S)/vol(box) >= min_hit_fraction, so the
                # relative guarantee does not hold — fall through to the
                # telescoping route instead of serving (and caching) a value
                # whose error is unbounded.
                logger.debug(
                    "monte-carlo hit fraction %g below floor %g; "
                    "falling back to telescoping",
                    fraction,
                    plan.min_hit_fraction,
                )
        # No finite box, or the hit-fraction floor / adaptive cap failed:
        # only the observable route carries the relative guarantee.
    if compiled is None:
        if plan.estimator == "telescoping" and plan.sample_budget:
            samples_per_phase = plan.sample_budget
        else:
            # Fallbacks from the Monte-Carlo/adaptive routes must not
            # inherit their box-sampling budgets; size the phases for the
            # requested accuracy.
            samples_per_phase = telescoping_samples_per_phase(plan.epsilon, plan.delta)
        if compile_fn is not None:
            compiled = compile_fn(samples_per_phase)
        else:
            accuracy = params if params is not None else GeneratorParams(
                epsilon=plan.epsilon, delta=plan.delta
            )
            compiled = compile_query(
                query,
                database,
                params=accuracy,
                samples_per_phase=samples_per_phase,
            )
    estimate = compiled.estimate_volume(plan.epsilon, plan.delta, rng=rng)
    return AggregateResult(value=estimate.value, estimate=estimate, exact=False)


def refine_result(refinable, epsilon: float, delta: float) -> AggregateResult | None:
    """Continue a resumable adaptive computation to a tighter ε.

    ``refinable`` is the :class:`~repro.inference.refine.RefinableEstimate`
    of a cached answer.  Returns the refreshed result — carrying the same
    resumable estimator so it stays refinable — or ``None`` when the
    continuation exhausted its sample cap before certifying the target (the
    caller computes afresh then).  Shared by the session's serving path and
    by every execution backend: the continuation is deterministic in the
    estimator's state, so the refined value is bit-identical wherever it
    runs.
    """
    if refinable is None:
        return None
    estimate = refinable.refine(epsilon, delta)
    if not estimate.details.get("met", False):
        return None
    return AggregateResult(
        value=estimate.value, estimate=estimate, exact=False, refinable=refinable
    )


def _executed_route(plan: Plan, result: AggregateResult) -> str:
    """The estimator that actually produced ``result`` (fallbacks included)."""
    if result.exact:
        return "exact"
    estimate = result.estimate
    if estimate is not None and estimate.method.startswith("monte-carlo"):
        return "monte_carlo"
    if estimate is not None and estimate.method.startswith("adaptive"):
        return "adaptive"
    if plan.estimator in ("monte_carlo", "adaptive"):
        return "telescoping"
    return plan.estimator


class ServiceSession:
    """A cached, planned, metered query-serving session over one database.

    Example::

        session = ServiceSession(database, store="results.db")
        outcomes = session.submit_batch(
            [BatchRequest(query, epsilon=0.1, delta=0.05)], rng=7
        )
        outcomes[0].result.value  # bit-identical for any backend/block size

    Parameters
    ----------
    database:
        The constraint database to serve.
    params:
        Default accuracy parameters (ε/δ defaults for requests that omit
        them).
    planner / cache / metrics:
        Injectable collaborators; fresh defaults are created when omitted.
    compiled_capacity:
        Size of the compiled-plan cache (observable plans are reusable
        across requests with different accuracy, so they are cached
        separately from results).
    share_subplans:
        Enables subplan-granular reuse (:mod:`repro.service.sharing`): union
        members tagged with plan digests are cached in the result cache and
        reused by every query containing the subtree, and batches estimate
        members shared across their plans once.  Disabling it only disables
        *reuse* — member estimates keep their content-addressed streams, so
        a sharing and a non-sharing session serve bit-identical values.
    tracer:
        A :class:`~repro.telemetry.tracer.Tracer` receiving the session's
        spans and counters.  Defaults to the no-op tracer; pass a
        :class:`~repro.telemetry.tracer.RecordingTracer` to capture full
        request traces.  Tracing never touches the random streams, so traced
        and untraced sessions serve bit-identical values (benchmark E21).
    store:
        A persistent :class:`~repro.store.ResultStore` (or a path to open
        one at) backing the result cache as a write-through second tier.
        The session warms its in-memory cache from the store at startup, so
        a fresh process serves repeated queries bit-identically from disk.
    observatory:
        The continuous-observability registry
        (:class:`~repro.telemetry.observatory.Observatory`): latency/sample
        histograms with rollup rings plus per-plan-digest profiles feeding
        the planner per-digest throughput priors.  On by default; pass
        ``False`` for the histogram-free telemetry-only baseline (benchmark
        E24 holds the enabled observatory under a <5% overhead budget), or a
        prebuilt instance to share one registry across sessions.  Like
        tracing, observation never touches the random streams.
    """

    def __init__(
        self,
        database: ConstraintDatabase,
        params: GeneratorParams | None = None,
        planner: Planner | None = None,
        cache: ResultCache | None = None,
        metrics: ServiceMetrics | None = None,
        compiled_capacity: int = 64,
        share_subplans: bool = True,
        tracer: Tracer | None = None,
        store: "ResultStore | str | Path | None" = None,
        observatory: "Observatory | bool | None" = None,
    ) -> None:
        self.database = database
        self.params = params if params is not None else GeneratorParams()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if observatory is None or observatory is True:
            self.observatory = Observatory()
        elif observatory is False:
            self.observatory = Observatory(enabled=False)
        else:
            self.observatory = observatory
        self.planner = planner if planner is not None else Planner()
        self.cache = cache if cache is not None else ResultCache()
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self._fingerprints = fingerprint_index(database)
        self._fingerprint = self._fingerprints.full
        self.share_subplans = share_subplans
        if store is not None:
            if not isinstance(store, ResultStore):
                store = ResultStore(store)
            self.cache.attach_store(store)
        self.cache.bind_metrics(self.metrics)
        self._broker = SubplanBroker(
            fingerprint=self._fingerprints,
            cache=self.cache,
            metrics=self.metrics,
            reuse=share_subplans,
        )
        self._compiled: dict[str, ObservableRelation] = {}
        self._compiled_capacity = compiled_capacity
        self._lock = Lock()
        # Shared-memory arena for the process backend: heavy immutable setup
        # is published once per session epoch and workers attach zero-copy;
        # degrades to inline pickling when the platform lacks shared memory.
        self.state_plane = StatePlane(observatory=self.observatory)
        if self.cache.store is not None:
            self.cache.warm_from_store()
            if self.observatory.enabled:
                # Persisted profiles warm both the /v1/profile surface and
                # the planner's per-digest cost priors across restarts.
                self.observatory.profiles.load(self.cache.store)
                self.observatory.profiles.prime_planner(self.planner)
            if self.planner.tuner is not None:
                # Persisted block-size autotuning results skip re-probing
                # after a restart.
                self.planner.tuner.load(self.cache.store)

    # ------------------------------------------------------------------
    # Keys and plans
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """The whole-database fingerprint (plan-aware keys restrict it)."""
        return self._fingerprint

    @property
    def fingerprints(self) -> DatabaseFingerprint:
        """The per-relation fingerprint index cache keys are derived from."""
        return self._fingerprints

    @property
    def store(self) -> ResultStore | None:
        """The persistent tier behind the result cache, if any."""
        return self.cache.store

    def refresh_fingerprint(self) -> str:
        """Recompute the fingerprint after a database mutation.

        Invalidation is plan-aware: the per-relation fingerprints are
        diffed against the previous snapshot, and only cache entries (in
        memory and on disk) whose plans reference a changed relation are
        dropped — an entry over a disjoint footprint keeps its key and
        stays servable, bit-identical to a cold recompute over the mutated
        database.
        """
        old = self._fingerprints
        new = fingerprint_index(self.database)
        self._fingerprints = new
        self._fingerprint = new.full
        self._broker.fingerprint = new
        changed = {
            name
            for name in set(old.relations) | set(new.relations)
            if old.relations.get(name) != new.relations.get(name)
        }
        if changed:
            dropped = self.cache.invalidate_relations(changed)
            self.metrics.record_store_invalidations(dropped)
        # Compiled plans embed member streams derived from the old data
        # version; drop them with the fingerprint they belong to.  (Plans
        # over unchanged relations recompile to identical objects and find
        # their surviving subplan entries primed back from the cache.)
        with self._lock:
            self._compiled.clear()
        # Published shared-memory segments hold the *old* float systems;
        # retire them all so no future batch can ship a stale arena (the
        # worker-side fingerprint check is the second belt).
        self.state_plane.bump_epoch()
        return self._fingerprint

    def close(self) -> None:
        """Release session-owned OS resources (shared-memory segments).

        Idempotent; an un-closed session's segments are also reclaimed by a
        ``weakref.finalize`` on the state plane, but calling this at
        shutdown makes the reclamation deterministic.
        """
        self.state_plane.close()

    def update_relation(self, name: str, relation: GeneralizedRelation) -> str:
        """Replace one stored relation and incrementally invalidate.

        The convenience mutation path: entries whose plans do not scan
        ``name`` survive in both cache tiers.  Returns the new fingerprint.
        """
        self.database.set_relation(name, relation)
        return self.refresh_fingerprint()

    def resolve_request(
        self, query: Query, kind: str = "volume"
    ) -> tuple[str, EntryMeta]:
        """The cache key of a request plus its store provenance.

        The key folds in the restriction of the database fingerprint to the
        relations the query's plan scans; the meta records that footprint so
        the persistent tier can invalidate incrementally.
        """
        digest, relations = plan_identity(query)
        fingerprint = self._fingerprints.restrict(relations)
        key = compose_key(kind, fingerprint, digest)
        meta = EntryMeta(
            kind=kind, digest=digest, relations=relations, fingerprint=fingerprint
        )
        return key, meta

    def key_for(self, query: Query, kind: str = "volume") -> str:
        """The structural cache key of a request."""
        return self.resolve_request(query, kind)[0]

    def explain(
        self, query: Query, epsilon: float | None = None, delta: float | None = None
    ) -> Plan:
        """The plan the session would execute for this request (no execution)."""
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        return self.planner.plan(query, self.database, epsilon=epsilon, delta=delta)

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def volume(
        self,
        query: Query,
        epsilon: float | None = None,
        delta: float | None = None,
        rng: RandomState = None,
        use_cache: bool = True,
    ) -> AggregateResult:
        """Serve one volume request through the cache → plan → execute pipeline.

        A cached answer that is too loose for the request but carries a
        resumable adaptive computation is **refined in place** — its sample
        stream is continued until the tighter ε is certified — instead of
        being recomputed from scratch.
        """
        epsilon, delta = self._resolve_accuracy(epsilon, delta)
        key, meta = self.resolve_request(query)
        started = time.perf_counter()
        observatory = self.observatory
        with activate(self.tracer), self.tracer.span(
            "volume", key=key[:16], epsilon=epsilon, delta=delta
        ) as span:
            if use_cache:
                with self.tracer.span("cache-lookup"):
                    cached, dominance, source = self.cache.lookup_with_source(
                        key, epsilon, delta
                    )
                if cached is not None:
                    self.metrics.record_cache_hit(dominance=dominance)
                    if source == "store":
                        span.annotate(cache="store")
                        observatory.record_hit(meta.digest, "store")
                    else:
                        span.annotate(cache="dominance" if dominance else "hit")
                        observatory.record_hit(
                            meta.digest, "dominance" if dominance else "memory"
                        )
                    observatory.observe(
                        "request_seconds", time.perf_counter() - started
                    )
                    return cached
                self.metrics.record_cache_miss()
                span.annotate(cache="miss")
            plan = self.planner.plan(query, self.database, epsilon=epsilon, delta=delta)
            span.annotate(route=plan.estimator)
            # Continuing a cached adaptive stream beats recomputing on every
            # sampling route — but never on the exact route, whose answer is
            # instant, error-free and dominates all future requests.
            if use_cache and plan.estimator != "exact":
                refined = self._refine_cached(key, epsilon, delta, meta)
                if refined is not None:
                    span.annotate(cache="refined")
                    observatory.record_hit(meta.digest, "refined")
                    observatory.observe(
                        "request_seconds", time.perf_counter() - started
                    )
                    return refined
            result = self._execute(plan, query, rng, digest=meta.digest)
            if use_cache:
                self.cache.put(key, result, plan.epsilon, plan.delta, meta=meta)
            observatory.observe("request_seconds", time.perf_counter() - started)
            return result

    def sample(
        self, query: Query, count: int, rng: RandomState = None
    ) -> np.ndarray:
        """Almost uniform points of the query result, via a cached compiled plan."""
        compiled = self.compile_cached(query)
        return compiled.generate_many(count, ensure_rng(rng))

    def submit_batch(
        self,
        requests,
        workers: int = 1,
        rng: RandomState = None,
        block_size: int | None = None,
        backend=None,
    ):
        """Serve a batch of requests; see :func:`repro.service.executor.execute_batch`.

        ``block_size`` overrides the planner's batch-kernel block size for
        this batch; ``backend`` picks how unique misses are computed
        (``"serial"``, ``"thread"``, ``"process"``, an
        :class:`~repro.service.backends.ExecutionBackend` instance, or
        ``None`` for the planner's recommendation).  Like the worker count,
        neither knob ever changes the served values — the blocked estimators
        are block-size invariant and the backends are value-transparent.
        """
        from repro.service.executor import execute_batch

        return execute_batch(
            self,
            requests,
            workers=workers,
            rng=rng,
            block_size=block_size,
            backend=backend,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _refine_cached(
        self,
        key: str,
        epsilon: float,
        delta: float,
        meta: EntryMeta | None = None,
    ) -> AggregateResult | None:
        """Continue a stale-but-refinable cached answer to the requested ε.

        Returns ``None`` when no refinable entry exists or the continuation
        could not certify the target (the caller falls back to a fresh
        plan).  Successful refinements are recorded as their own metric and
        stored back under the estimator's (tighter) δ so later requests see
        the improved accuracy.
        """
        candidate = self.cache.refinable_lookup(key, epsilon, delta)
        if candidate is None:
            return None
        start = time.perf_counter()
        with current_tracer().span("refine", key=key[:16], epsilon=epsilon) as span:
            refined = refine_result(candidate.refinable, epsilon, delta)
            span.annotate(met=refined is not None)
        elapsed = time.perf_counter() - start
        if refined is None:
            logger.debug(
                "refinement of cached entry %s to eps=%g failed; recomputing",
                key[:16],
                epsilon,
            )
            return None
        logger.debug(
            "refined cached entry %s to eps=%g in %.3fs", key[:16], epsilon, elapsed
        )
        self.metrics.record_refinement()
        self.metrics.record_latency("adaptive", elapsed)
        assert refined.refinable is not None
        estimate = refined.estimate
        if estimate is not None:
            new_samples = int(estimate.details.get("new_samples", 0))
            if new_samples:
                self.planner.observe_throughput(
                    new_samples,
                    elapsed,
                    route="adaptive",
                    digest=None if meta is None else meta.digest,
                )
        self.cache.put(key, refined, epsilon, refined.refinable.delta, meta=meta)
        return refined

    def compile_cached(
        self, query: Query, samples_per_phase: int = 800
    ) -> ObservableRelation:
        """Compile a query to an observable plan, memoised on the structural key.

        Compilation runs the full plan pipeline — canonicalize, rewrite,
        CSE-intern, lower — with the planner's cost model deciding
        symbolic-vs-observable per subtree and the session's sharing broker
        wiring union members to the subplan cache (content-addressed member
        streams; cached estimates primed in).
        """
        key = self.key_for(query, kind=f"compiled:{samples_per_phase}")
        with self._lock:
            compiled = self._compiled.get(key)
        if compiled is not None:
            return compiled
        with current_tracer().span(
            "compile", key=key[:16], samples_per_phase=samples_per_phase
        ):
            compiled = compile_plan(
                query,
                self.database,
                params=self.params,
                options=self.planner.lowering_options(samples_per_phase),
                sharing=self._broker,
            )
        self._store_compiled(key, compiled)
        return compiled

    def _adopt_compiled(
        self, query: Query, samples_per_phase: int, compiled: ObservableRelation
    ) -> None:
        """Replace the memoised plan with a post-execution copy from a worker.

        The process backend calls this so the parent's compiled object ends
        up in the same state a serial/thread execution would have left it in
        (estimators fill deterministic-given-the-stream caches, e.g. union
        member volumes, *during* execution).  Without the adoption, later
        recomputations of the same key would become history-dependent on
        which backend ran earlier batches.
        """
        key = self.key_for(query, kind=f"compiled:{samples_per_phase}")
        self._store_compiled(key, compiled)
        harvest_subplans(self._broker, compiled, samples_per_phase)

    def _store_compiled(self, key: str, compiled: ObservableRelation) -> None:
        with self._lock:
            if key not in self._compiled and len(self._compiled) >= self._compiled_capacity:
                # Drop the oldest insertion; plans are cheap to rebuild.
                self._compiled.pop(next(iter(self._compiled)))
            self._compiled[key] = compiled

    def _execute_unit(
        self, plan: Plan, query: Query, rng: RandomState
    ) -> tuple[AggregateResult, float]:
        """Carry a plan out (no metrics) and return the answer with its cost.

        This is the computation the execution backends parallelise: it only
        reads immutable session state (database, params) and the memoising
        ``compile_cached``, so it is safe to call from worker threads; the
        process backend reproduces it worker-side from a pickled work unit.
        """
        compiled = None
        samples_per_phase = plan.sample_budget or 800
        if plan.estimator == "telescoping":
            compiled = self.compile_cached(query, samples_per_phase=samples_per_phase)
        start = time.perf_counter()
        with current_tracer().span("execute", route=plan.estimator) as span:
            result = run_plan(
                plan,
                query,
                self.database,
                params=None,
                rng=rng,
                compiled=compiled,
                # Fallback compilations (Monte-Carlo route without a usable box)
                # go through the memoising compile_cached as well, keeping the
                # session's gamma and avoiding recompiles on repeat misses.
                compile_fn=lambda spp: self.compile_cached(query, samples_per_phase=spp),
            )
            span.annotate(executed=_executed_route(plan, result))
        elapsed = time.perf_counter() - start
        if compiled is not None:
            # Bank the member estimates this execution computed, so every
            # later query containing one of the shared subtrees reuses them.
            harvest_subplans(self._broker, compiled, samples_per_phase)
        return result, elapsed

    def _record_execution(
        self,
        plan: Plan,
        result: AggregateResult,
        elapsed: float,
        digest: str | None = None,
    ) -> None:
        """Record plan choice, latency and measured throughput for one execution."""
        # Record the route that actually ran: the Monte-Carlo plan falls back
        # to telescoping when the result has no box or fills too little of it.
        executed = _executed_route(plan, result)
        self.metrics.record_plan(executed)
        self.metrics.record_latency(
            executed, elapsed, over_budget=elapsed > plan.time_budget
        )
        # Feed measured sampling throughput back into the cost model so
        # future time budgets — and the planner's backend recommendations —
        # reflect what the estimators actually deliver on this hardware.
        # The two routes are tracked separately: the Monte-Carlo route
        # measures the batch kernels in isolation, while telescoping's
        # elapsed time mixes walk steps with compilation, so folding the
        # routes together would corrupt both estimates.
        estimate = result.estimate
        drawn = 0
        if estimate is not None and estimate.samples_used:
            if executed == "monte_carlo":
                drawn = estimate.samples_used
                self.planner.observe_throughput(drawn, elapsed, digest=digest)
            elif executed == "adaptive":
                # A continuation's estimate reports the whole stream; only
                # the samples drawn in *this* execution were paid for here.
                drawn = int(
                    estimate.details.get("new_samples", estimate.samples_used)
                )
                if drawn:
                    self.planner.observe_throughput(
                        drawn, elapsed, route="adaptive", digest=digest
                    )
            elif executed == "telescoping":
                drawn = estimate.samples_used
                self.planner.observe_throughput(
                    drawn, elapsed, route="telescoping", digest=digest
                )
        observatory = self.observatory
        if observatory.enabled:
            observatory.record_execution(digest, executed, elapsed, drawn)
            store = self.cache.store
            if store is not None:
                observatory.profiles.maybe_persist(store)

    def _execute(
        self,
        plan: Plan,
        query: Query,
        rng: RandomState,
        digest: str | None = None,
    ) -> AggregateResult:
        result, elapsed = self._execute_unit(plan, query, rng)
        self._record_execution(plan, result, elapsed, digest=digest)
        return result

    def _resolve_accuracy(
        self, epsilon: float | None, delta: float | None
    ) -> tuple[float, float]:
        epsilon = self.params.epsilon if epsilon is None else epsilon
        delta = self.params.delta if delta is None else delta
        # Validate at the serving surface so out-of-range requests fail the
        # same way on every route (the estimators require (0, 1); 0 is
        # allowed here because the exact route satisfies it).
        if not 0.0 <= epsilon < 1.0:
            raise ValueError(f"epsilon must lie in [0, 1), got {epsilon}")
        if not 0.0 <= delta < 1.0:
            raise ValueError(f"delta must lie in [0, 1), got {delta}")
        return epsilon, delta

    def __repr__(self) -> str:
        return (
            f"ServiceSession(relations={len(self.database)}, cache={self.cache!r})"
        )
