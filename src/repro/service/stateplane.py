"""Zero-copy shared-memory state plane for the process backend.

Historically :class:`repro.service.backends.ProcessBackend` pickled the
warmed :class:`~repro.service.backends._SharedSetup` — database float
systems, compiled observables with their H-representations, plan caches —
into the pool initializer **once per batch**.  For many-worker small-batch
traffic (exactly what the serving front end generates) that per-batch
serialization dominates the useful work.

The state plane removes it.  On first contact per session epoch, the setup
is pickled with **protocol 5 out-of-band buffers**: the small object graph
becomes a "head" byte string, while every NumPy array body is extracted as
a raw buffer.  Head and buffers are packed into one
:mod:`multiprocessing.shared_memory` segment, published under a content
digest.  What crosses the process boundary per batch is then only a
:class:`SegmentManifest` — segment name, head/buffer spans, epoch,
fingerprint — a few hundred bytes regardless of database size.  Workers
attach by name and rebuild the object graph with
``pickle.loads(head, buffers=...)`` over **read-only views** of the mapped
segment: array bodies are never copied (the reconstructed arrays are
views, ``writeable=False``), and repeated batches against an unchanged
session reuse the same published segment.

Lifecycle
---------
* ``publish`` — pack + register a segment (or return the already-live one
  for the same content digest).
* ``lease`` / ``release`` — per-batch refcounts; a segment retired while
  leased is unlinked only when the last lease drops.
* ``bump_epoch`` — called by ``ServiceSession.refresh_fingerprint`` when a
  relation mutates: retires every live segment so no future batch can ship
  a stale arena (in-flight workers additionally carry the fingerprint
  check in ``_worker_execute`` as a second belt).
* ``close`` — retires everything; also wired to a ``weakref.finalize`` so
  an abandoned session cannot leak segments.

Failure is never fatal: platforms without ``shared_memory``, publish
errors, and worker attach failures all degrade to the historical inline
pickle with a logged warning (see ``ProcessBackend.execute``).
"""

from __future__ import annotations

import logging
import pickle
import threading
import weakref
from dataclasses import dataclass

logger = logging.getLogger(__name__)

try:  # pragma: no cover - exercised by monkeypatching in tests
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platform without shared memory
    _shared_memory = None  # type: ignore[assignment]

#: Buffer alignment inside a segment; keeps reconstructed array bodies on
#: cache-line boundaries.
_ALIGNMENT = 64


def shared_memory_available() -> bool:
    """Whether this platform can create shared-memory segments at all."""
    return _shared_memory is not None


@dataclass(frozen=True)
class SegmentManifest:
    """Everything a worker needs to attach and rebuild the shared setup.

    This — not the setup itself — is what the process backend pickles into
    the pool initializer per batch.
    """

    #: Shared-memory segment name (the attach handle).
    name: str
    #: ``(offset, length)`` of the pickled head inside the segment.
    head: tuple[int, int]
    #: ``(offset, length)`` per out-of-band buffer, in pickle order.
    buffers: tuple[tuple[int, int], ...]
    #: State-plane epoch the segment was published under.
    epoch: int
    #: Database fingerprint of the published setup.
    fingerprint: str
    #: Content digest (the segment registry key).
    digest: str
    #: Total mapped bytes.
    total_bytes: int


class _Segment:
    __slots__ = ("shm", "manifest", "leases", "retired")

    def __init__(self, shm, manifest: SegmentManifest) -> None:
        self.shm = shm
        self.manifest = manifest
        self.leases = 0
        self.retired = False


def _destroy(shm) -> None:
    """Unmap and unlink one owned segment, tolerating platform quirks."""
    try:
        shm.close()
    except Exception:  # pragma: no cover - close is best-effort
        pass
    try:
        shm.unlink()
    except Exception:  # pragma: no cover - already unlinked
        pass


def _finalize_segments(segments: dict) -> None:
    """``weakref.finalize`` hook: unlink whatever the plane still owns."""
    for segment in list(segments.values()):
        _destroy(segment.shm)
    segments.clear()


class StatePlane:
    """Owner of the published shared-memory segments for one session."""

    def __init__(self, observatory=None, enabled: bool = True) -> None:
        self._enabled = enabled and shared_memory_available()
        self._observatory = observatory
        self._lock = threading.Lock()
        self._epoch = 0
        self._segments: dict[str, _Segment] = {}
        self._publishes = 0
        self._reuses = 0
        self._retired = 0
        self._failed = False
        # The finalizer captures the dict, not the plane, so dropping the
        # last reference to an un-closed session still unlinks everything.
        self._finalizer = weakref.finalize(self, _finalize_segments, self._segments)

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Is publishing currently possible (platform support and no prior failure)?"""
        return self._enabled and not self._failed

    @property
    def epoch(self) -> int:
        """Current invalidation epoch (bumped on relation mutation)."""
        return self._epoch

    def _count(self, name: str, value: int = 1) -> None:
        if self._observatory is not None:
            self._observatory.count(name, value)

    # ------------------------------------------------------------------
    def publish(self, setup, fingerprint: str) -> SegmentManifest | None:
        """Publish ``setup`` into shared memory; returns its manifest.

        Reuses the live segment when the content digest is unchanged (the
        steady-state path: one publish per session epoch, zero per batch).
        Returns ``None`` — after logging a warning and disabling itself —
        when shared memory is unusable, in which case the caller ships the
        inline pickle exactly as before this module existed.
        """
        if not self.enabled:
            return None
        try:
            raw_buffers: list[pickle.PickleBuffer] = []
            head = pickle.dumps(
                setup, protocol=5, buffer_callback=raw_buffers.append
            )
            views = [buffer.raw() for buffer in raw_buffers]
            import hashlib

            hasher = hashlib.sha256(head)
            for view in views:
                hasher.update(view)
            digest = hasher.hexdigest()
            with self._lock:
                live = self._segments.get(digest)
                if live is not None and not live.retired:
                    self._reuses += 1
                    self._count("arena_reuses")
                    return live.manifest
            manifest, shm = self._pack(head, views, fingerprint, digest)
            with self._lock:
                self._segments[digest] = _Segment(shm, manifest)
                self._publishes += 1
            self._count("arena_publishes")
            self._count("arena_published_bytes", manifest.total_bytes)
            return manifest
        except Exception as error:
            # One warning, then permanent inline fallback for this plane:
            # a flaky /dev/shm must cost a log line, not a failed batch.
            logger.warning(
                "state plane publish failed (%s: %s); process backend falls "
                "back to inline setup pickling",
                type(error).__name__,
                error,
            )
            self._failed = True
            self._count("arena_publish_failures")
            return None

    def _pack(
        self,
        head: bytes,
        views: list,
        fingerprint: str,
        digest: str,
    ) -> tuple[SegmentManifest, object]:
        spans: list[tuple[int, int]] = []
        offset = len(head)
        for view in views:
            offset += (-offset) % _ALIGNMENT
            spans.append((offset, view.nbytes))
            offset += view.nbytes
        total = max(offset, 1)
        shm = _shared_memory.SharedMemory(create=True, size=total)
        try:
            target = shm.buf
            target[: len(head)] = head
            for (start, length), view in zip(spans, views):
                target[start : start + length] = view.cast("B")
            manifest = SegmentManifest(
                name=shm.name,
                head=(0, len(head)),
                buffers=tuple(spans),
                epoch=self._epoch,
                fingerprint=fingerprint,
                digest=digest,
                total_bytes=total,
            )
        except Exception:
            _destroy(shm)
            raise
        return manifest, shm

    # ------------------------------------------------------------------
    def lease(self, digest: str) -> None:
        """Pin a segment for the duration of one batch dispatch."""
        with self._lock:
            segment = self._segments.get(digest)
            if segment is not None:
                segment.leases += 1

    def release(self, digest: str) -> None:
        """Drop a batch's pin; destroys segments retired while leased."""
        destroy = None
        with self._lock:
            segment = self._segments.get(digest)
            if segment is not None:
                segment.leases = max(0, segment.leases - 1)
                if segment.retired and segment.leases == 0:
                    self._segments.pop(digest, None)
                    destroy = segment.shm
        if destroy is not None:
            _destroy(destroy)

    def _retire_all_locked(self) -> list:
        doomed = []
        for digest in list(self._segments):
            segment = self._segments[digest]
            segment.retired = True
            self._retired += 1
            if segment.leases == 0:
                self._segments.pop(digest)
                doomed.append(segment.shm)
        return doomed

    def bump_epoch(self) -> int:
        """Invalidate every published segment; returns the new epoch.

        Wired to ``ServiceSession.refresh_fingerprint`` so a relation
        mutation makes the next batch republish against the new data.
        In-flight attachments keep their (already consistent) mapping; new
        attach attempts on a retired name fail and take the inline-retry
        fallback.
        """
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            doomed = self._retire_all_locked()
        for shm in doomed:
            _destroy(shm)
        if doomed:
            self._count("arena_retires", len(doomed))
        return epoch

    def mark_attach_failure(self) -> None:
        """Record a worker attach failure and disable further publishing.

        The process backend calls this after a worker reported it could not
        map a published segment; subsequent batches ship inline setups (one
        warning, no errors — the graceful-degradation contract).
        """
        self._count("arena_attach_failures")
        if not self._failed:
            self._failed = True
            logger.warning(
                "state plane disabled after a worker attach failure; "
                "subsequent process batches ship inline setup pickles"
            )

    def close(self) -> None:
        """Retire and unlink everything (session shutdown)."""
        with self._lock:
            doomed = self._retire_all_locked()
            # Anything still leased is force-destroyed too: close() means
            # the session is over and no further dispatches exist.
            for digest in list(self._segments):
                doomed.append(self._segments.pop(digest).shm)
        for shm in doomed:
            _destroy(shm)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Operator-facing arena stats for ``/v1/stats`` and ``repro top``."""
        with self._lock:
            segments = len(self._segments)
            total = sum(
                segment.manifest.total_bytes for segment in self._segments.values()
            )
            return {
                "enabled": self.enabled,
                "epoch": self._epoch,
                "segments": segments,
                "bytes": total,
                "publishes": self._publishes,
                "reuses": self._reuses,
                "retired": self._retired,
            }


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
#: Segments this process has attached, kept alive for the worker's lifetime
#: (the reconstructed arrays are views into these mappings).
_ATTACHED: dict[str, object] = {}


def attach(manifest: SegmentManifest):
    """Attach to a published segment and rebuild the shared setup, zero-copy.

    The reconstructed NumPy arrays are read-only views over the mapping —
    no array body is copied.  Raises on any failure (missing segment,
    truncated mapping, unpickling error); the process backend treats that
    as a signal to retry the batch with inline shipping.
    """
    if _shared_memory is None:
        raise RuntimeError("multiprocessing.shared_memory is unavailable")
    shm = _ATTACHED.get(manifest.name)
    if shm is None:
        # The stdlib registers *attaches* with the resource tracker too
        # (bpo-39959); left in place, a worker exit would unlink the
        # parent's live segment, and unregister-after-attach floods the
        # tracker with KeyErrors (its cache is a set, so N workers'
        # registrations collapse into the parent's one entry).  Suppress
        # the registration for the duration of the attach instead; the
        # parent's own create-registration keeps cleanup-on-crash
        # semantics.  Workers attach from the single-threaded pool
        # initializer, so the patch window races nothing.
        from multiprocessing import resource_tracker

        original_register = resource_tracker.register
        try:
            resource_tracker.register = lambda name, rtype: None
            shm = _shared_memory.SharedMemory(name=manifest.name)
        finally:
            resource_tracker.register = original_register
        _ATTACHED[manifest.name] = shm
    buf = shm.buf
    head_start, head_length = manifest.head
    if manifest.total_bytes > shm.size:
        raise RuntimeError(
            f"segment {manifest.name} is smaller than its manifest "
            f"({shm.size} < {manifest.total_bytes} bytes)"
        )
    head = bytes(buf[head_start : head_start + head_length])
    views = [
        buf[start : start + length].toreadonly()
        for start, length in manifest.buffers
    ]
    return pickle.loads(head, buffers=views)
