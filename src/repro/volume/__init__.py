"""repro.volume — volume estimators under ``(ε, δ)`` contracts.

The paper's polynomial telescoping estimator (DFK scheme over a ball
sequence), the blocked Monte-Carlo baseline, Chernoff/Hoeffding budget
arithmetic, and exact baselines for low dimension — all returning a
:class:`VolumeEstimate` that records its accuracy, method and sampling
work.
"""

from repro.volume.base import (
    EstimationError,
    VolumeEstimate,
    accuracy_dominates,
    approximates_with_ratio,
)
from repro.volume.chernoff import (
    chernoff_ratio_sample_size,
    hoeffding_sample_size,
    median_of_means_repetitions,
    repetition_count,
)
from repro.volume.exact import (
    cell_decomposition_volume,
    exact_polytope_volume,
    exact_relation_volume,
    exact_tuple_volume,
)
from repro.volume.monte_carlo import monte_carlo_volume, required_samples_for_relative_error
from repro.volume.telescoping import (
    TelescopingConfig,
    TelescopingVolumeEstimator,
    estimate_convex_volume,
)

__all__ = [
    "EstimationError",
    "VolumeEstimate",
    "accuracy_dominates",
    "approximates_with_ratio",
    "chernoff_ratio_sample_size",
    "hoeffding_sample_size",
    "median_of_means_repetitions",
    "repetition_count",
    "cell_decomposition_volume",
    "exact_polytope_volume",
    "exact_relation_volume",
    "exact_tuple_volume",
    "monte_carlo_volume",
    "required_samples_for_relative_error",
    "TelescopingConfig",
    "TelescopingVolumeEstimator",
    "estimate_convex_volume",
]
