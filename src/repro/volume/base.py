"""Common types for volume estimation.

An (ε, δ)-volume estimator (Section 2 of the paper) outputs a value that
approximates the true volume with ratio ``1 + ε`` with probability at least
``1 - δ``, in time polynomial in the description size, ``1/ε`` and
``ln(1/δ)``.  :class:`VolumeEstimate` is the value object every estimator in
the library returns; it carries the accuracy parameters it was run with and
the work it performed so that the benchmarks can report cost alongside error.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class EstimationError(RuntimeError):
    """Raised when an estimator cannot produce a value (e.g. empty body)."""


@dataclass
class VolumeEstimate:
    """The result of a randomized (or exact) volume computation.

    Attributes
    ----------
    value:
        The estimated d-dimensional volume.
    epsilon:
        The relative accuracy parameter the estimator was run with
        (``0.0`` for exact computations).
    delta:
        The failure probability parameter (``0.0`` for exact computations).
    method:
        Human-readable name of the estimator.
    samples_used:
        Number of random points the estimator consumed.
    oracle_calls:
        Number of membership oracle calls (when tracked; ``0`` otherwise).
    details:
        Free-form auxiliary data (per-phase ratios, acceptance rates, ...).
    """

    value: float
    epsilon: float
    delta: float
    method: str
    samples_used: int = 0
    oracle_calls: int = 0
    details: dict = field(default_factory=dict)

    def approximates(self, true_value: float, ratio: float | None = None) -> bool:
        """Does this estimate approximate ``true_value`` within ratio ``1 + ε``?

        ``ratio`` overrides the estimate's own ``1 + epsilon`` when provided.
        Follows the paper's definition: ``(1+ε)^{-1} β <= α <= (1+ε) β``.
        """
        bound = (1.0 + self.epsilon) if ratio is None else ratio
        if true_value == 0.0:
            return self.value == 0.0
        return true_value / bound <= self.value <= true_value * bound

    def satisfies(self, epsilon: float, delta: float) -> bool:
        """Does this estimate's accuracy satisfy a request for ``(ε, δ)``?

        Delegates to :func:`accuracy_dominates`, the dominance rule the
        service cache (:mod:`repro.service.cache`) reuses results under.
        """
        return accuracy_dominates(self.epsilon, self.delta, epsilon, delta)

    def relative_error(self, true_value: float) -> float:
        """Relative error ``|value - true| / true`` against a reference value."""
        if true_value == 0.0:
            return float("inf") if self.value != 0.0 else 0.0
        return abs(self.value - true_value) / true_value


def accuracy_dominates(
    epsilon: float, delta: float, requested_epsilon: float, requested_delta: float
) -> bool:
    """Does accuracy ``(ε, δ)`` satisfy a request for ``(ε', δ')``?

    An answer computed at a tighter (smaller or equal) ε *and* δ is also a
    valid answer for the looser request; an exact answer (``ε = δ = 0``)
    satisfies everything.  This is the single definition of the dominance
    rule shared by :meth:`VolumeEstimate.satisfies` and the service cache.
    """
    return epsilon <= requested_epsilon and delta <= requested_delta


def approximates_with_ratio(value: float, reference: float, ratio: float) -> bool:
    """Free-standing version of the ratio test used across tests and benchmarks."""
    if reference == 0.0:
        return value == 0.0
    if ratio < 1.0:
        raise ValueError("ratio must be at least 1")
    return reference / ratio <= value <= reference * ratio
