"""Sample-size schedules from Chernoff/Hoeffding bounds.

The paper's volume estimators reduce to estimating ratios of the form
``vol(K_i) / vol(K_{i+1})`` (the telescoping product) or acceptance
probabilities, each "by a classical Chernoff estimator".  The functions below
compute the number of Bernoulli samples sufficient for a multiplicative or
additive guarantee, and the number of repetitions of a constant-success
procedure needed to reach failure probability δ (the ``k = 4 ln(1/δ)``
schedule of Theorem 4.1 and the ``O((d^3/ε) ln(1/δ))`` schedule of
Theorem 4.3).
"""

from __future__ import annotations

import math


def hoeffding_sample_size(epsilon: float, delta: float) -> int:
    """Samples sufficient for an *additive* ε-estimate of a Bernoulli mean.

    By Hoeffding's inequality ``n >= ln(2/δ) / (2 ε²)`` gives
    ``P[|p̂ - p| > ε] <= δ``.
    """
    _check(epsilon, delta)
    return max(1, math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon)))


def chernoff_ratio_sample_size(epsilon: float, delta: float, probability_lower_bound: float) -> int:
    """Samples sufficient for a *multiplicative* (1 ± ε)-estimate of a Bernoulli mean.

    The multiplicative Chernoff bound gives
    ``P[|p̂ - p| > ε p] <= 2 exp(-n p ε² / 3)``, so
    ``n >= 3 ln(2/δ) / (ε² p_min)`` suffices whenever the true probability is
    at least ``probability_lower_bound``.  The telescoping estimator applies
    this with ``p_min = 1/2`` (consecutive bodies have volume ratio at most 2).
    """
    _check(epsilon, delta)
    if not 0 < probability_lower_bound <= 1:
        raise ValueError("probability_lower_bound must lie in (0, 1]")
    return max(
        1,
        math.ceil(3.0 * math.log(2.0 / delta) / (epsilon * epsilon * probability_lower_bound)),
    )


def repetition_count(success_probability: float, delta: float) -> int:
    """Repetitions of a procedure with constant success probability to reach 1 - δ.

    If a single run succeeds with probability at least ``p`` then ``k`` runs
    all fail with probability at most ``(1 - p)^k <= exp(-p k)``; taking
    ``k = ceil(ln(1/δ) / p)`` bounds the overall failure probability by δ.
    For ``p = 1/4`` this is the ``k = 4 ln(1/δ)`` of Theorem 4.1.
    """
    if not 0 < success_probability <= 1:
        raise ValueError("success_probability must lie in (0, 1]")
    if not 0 < delta < 1:
        raise ValueError("delta must lie strictly between 0 and 1")
    return max(1, math.ceil(math.log(1.0 / delta) / success_probability))


def median_of_means_repetitions(delta: float) -> int:
    """Number of independent estimates whose median meets failure probability δ.

    Standard boosting: if each estimate is within the target ratio with
    probability at least 3/4, the median of ``t = O(ln(1/δ))`` independent
    estimates is within the ratio with probability at least ``1 - δ``; the
    constant ``18`` comes from the Chernoff bound on the binomial tail.
    """
    if not 0 < delta < 1:
        raise ValueError("delta must lie strictly between 0 and 1")
    return max(1, math.ceil(18.0 * math.log(1.0 / delta)))


def _check(epsilon: float, delta: float) -> None:
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie strictly between 0 and 1")
    if not 0 < delta < 1:
        raise ValueError("delta must lie strictly between 0 and 1")
