"""Naive Monte-Carlo volume estimation from a bounding box.

This is the baseline the paper's introduction argues against: sample the
bounding box uniformly, count the fraction of hits and multiply by the box
volume.  The *additive* error of the hit fraction translates into a relative
error only after dividing by the (unknown) volume fraction, so the number of
samples needed for a relative guarantee grows like the ratio
``vol(box) / vol(S)`` — exponential in the dimension for round bodies such as
balls (experiment E10) and unbounded for thin bodies.  The estimator is still
valuable as a cross-check in low dimension and as the negative control of the
benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.oracles import BatchOracle, MembershipOracle
from repro.sampling.rejection import count_box_hits
from repro.sampling.rng import ensure_rng
from repro.telemetry.tracer import current_tracer
from repro.volume.base import VolumeEstimate
from repro.volume.chernoff import hoeffding_sample_size


def monte_carlo_volume(
    oracle: MembershipOracle | BatchOracle,
    bounds: list[tuple[float, float]],
    epsilon: float,
    delta: float,
    rng: np.random.Generator | int | None = None,
    samples: int | None = None,
    max_samples: int = 200_000,
    block_size: int = 8192,
) -> VolumeEstimate:
    """Estimate the volume of ``{x in box : oracle(x)}`` by uniform box sampling.

    ``epsilon``/``delta`` select a Hoeffding sample size for an *additive*
    ``epsilon``-accurate hit fraction; the returned estimate's ``details``
    record the hit fraction so callers can convert the additive guarantee to
    the relative one when the fraction is known to be large.

    Sampling proceeds in blocks of ``block_size`` points, each judged with a
    single (batch) oracle call and counted with an array reduction; the loop
    stops as soon as the Hoeffding/explicit sample budget is consumed.
    Because consecutive blocks draw the identical point stream a single large
    draw would produce, the estimate is **bit-identical for every block
    size** — and for the scalar path, since a lifted scalar oracle makes the
    same per-point decisions (:func:`repro.sampling.oracles.as_batch_oracle`).
    """
    rng = ensure_rng(rng)
    if block_size < 1:
        raise ValueError("block_size must be at least 1")
    box_volume = 1.0
    for lower, upper in bounds:
        if upper < lower:
            raise ValueError("invalid bounding box")
        box_volume *= upper - lower
    if samples is None:
        samples = min(hoeffding_sample_size(epsilon, delta), max_samples)
    with current_tracer().span(
        "monte-carlo", samples=samples, block_size=block_size
    ) as span:
        hits = count_box_hits(oracle, bounds, samples, rng, block_size)
        fraction = hits / samples
        span.annotate(hit_fraction=fraction)
    return VolumeEstimate(
        value=fraction * box_volume,
        epsilon=epsilon,
        delta=delta,
        method="monte-carlo-box",
        samples_used=samples,
        oracle_calls=samples,
        details={"hit_fraction": fraction, "box_volume": box_volume},
    )


def required_samples_for_relative_error(
    volume_fraction: float, epsilon: float, delta: float
) -> int:
    """Samples the naive estimator needs for a *relative* (1 + ε) guarantee.

    By the multiplicative Chernoff bound the count concentrates within a
    relative ε once ``n >= 3 ln(2/δ) / (ε² p)`` where ``p`` is the volume
    fraction of the body inside its box — the quantity that decays
    exponentially with the dimension for balls and thin bodies.
    """
    if not 0 < volume_fraction <= 1:
        raise ValueError("volume_fraction must lie in (0, 1]")
    from repro.volume.chernoff import chernoff_ratio_sample_size

    return chernoff_ratio_sample_size(epsilon, delta, volume_fraction)
