"""The Dyer--Frieze--Kannan telescoping volume estimator for convex bodies.

Given a well-bounded convex body ``K`` the estimator proceeds as the paper
describes (Section 2, "Uniform sampling from a convex set and volume
estimation"):

1. compute an affine transformation ``Q`` that makes the body well-rounded
   (contains the unit ball ``B``, contained in a ball of radius polynomial in
   ``d``);
2. consider a sequence of convex bodies ``K_0 ⊆ K_1 ⊆ ... ⊆ K_q = Q(K)``
   whose consecutive volume ratios are bounded by a constant and whose first
   element has a known volume;
3. estimate each ratio ``vol(K_i) / vol(K_{i+1})`` with a classical Chernoff
   estimator, using an almost uniform generator on ``K_{i+1}``;
4. multiply the ratios and pull the result back through ``det(Q)``.

The paper notes that "taking homothetic K_i's is sufficient"; this
implementation uses homothetic *cubes* centred at the origin,
``K_i = Q(K) ∩ C_i`` with ``C_i = [-r_i, r_i]^d`` and ``r_i = r_0 · 2^{i/d}``:

* ``C_0`` (half-side ``1/sqrt(d)``) lies inside the unit ball, hence inside
  ``Q(K)``, so ``vol(K_0) = (2/sqrt(d))^d`` is known exactly;
* because ``Q(K)`` is convex and contains the origin, the standard scaling
  argument gives ``vol(K_i)/vol(K_{i+1}) >= (r_i/r_{i+1})^d = 1/2``, exactly
  the constant lower bound the Chernoff sample-size schedule needs;
* every intermediate body stays an H-polytope, so the hit-and-run, grid-walk
  and ball-walk samplers all apply unchanged.

The sampler used for step 3 is configurable (hit-and-run by default, the DFK
grid walk or the oracle-only ball walk as alternatives), which the E2 ablation
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.geometry.polytope import HPolytope
from repro.geometry.rounding import RoundedBody, round_by_chebyshev, round_by_covariance
from repro.sampling.ball_walk import BallWalkSampler
from repro.sampling.grid_walk import GridWalkConfig, GridWalkSampler
from repro.sampling.hit_and_run import HitAndRunSampler
from repro.sampling.oracles import (
    CountingBatchOracle,
    CountingOracle,
    batch_oracle_from_polytope,
    oracle_from_polytope,
)
from repro.sampling.rng import ensure_rng
from repro.telemetry.tracer import current_tracer
from repro.volume.base import EstimationError, VolumeEstimate
from repro.volume.chernoff import chernoff_ratio_sample_size

SamplerName = Literal["hit_and_run", "grid_walk", "ball_walk"]


@dataclass
class TelescopingConfig:
    """Parameters of the telescoping estimator.

    Attributes
    ----------
    sampler:
        Which almost uniform generator to use on the intermediate bodies.
    rounding:
        ``"chebyshev"`` (cheap sandwiching) or ``"covariance"``
        (sampling-based whitening, better for elongated bodies).
    cube_ratio:
        Volume ratio between consecutive telescoping cubes (2.0 reproduces the
        classical schedule; smaller values mean more, easier phases).
    samples_per_phase:
        Overrides the Chernoff sample size per phase when set.
    max_samples_per_phase:
        Cap on the per-phase Chernoff schedule; keeps laptop-scale runs
        tractable while remaining far above the needs of the dimensions used
        in the tests and benchmarks.
    gamma:
        Grid coarseness for the grid-walk sampler.
    chains:
        Number of independent walk chains per phase.  ``1`` (the default)
        reproduces the classic single-chain stream exactly; ``k > 1`` splits
        each phase's sample budget across ``k`` chains advanced in lockstep
        by the vectorized multi-chain kernels (hit-and-run and ball walk;
        the grid walk ignores the knob).  Multi-chain runs are deterministic
        for a fixed seed but draw a different stream than ``chains=1``.
    """

    sampler: SamplerName = "hit_and_run"
    rounding: Literal["chebyshev", "covariance"] = "chebyshev"
    cube_ratio: float = 2.0
    samples_per_phase: int | None = None
    max_samples_per_phase: int = 2_000
    gamma: float = 0.2
    chains: int = 1


class TelescopingVolumeEstimator:
    """(ε, δ)-volume estimator for a well-bounded convex polytope."""

    def __init__(self, polytope: HPolytope, config: TelescopingConfig | None = None) -> None:
        self.polytope = polytope
        self.config = config if config is not None else TelescopingConfig()

    # ------------------------------------------------------------------
    def _round(self, rng: np.random.Generator) -> RoundedBody:
        if self.config.rounding == "covariance":
            return round_by_covariance(self.polytope, rng)
        return round_by_chebyshev(self.polytope)

    def _cube_radii(self, rounded: RoundedBody) -> list[float]:
        """Half-sides ``r_0 < r_1 < ... < r_q`` of the telescoping cubes."""
        dimension = rounded.polytope.dimension
        ratio = self.config.cube_ratio
        if ratio <= 1.0:
            raise ValueError("cube_ratio must exceed 1")
        radius = 1.0 / np.sqrt(dimension)
        radii = [radius]
        growth = ratio ** (1.0 / dimension)
        # Stop once the cube contains the rounded body entirely.
        while radii[-1] < rounded.outer_radius:
            radii.append(radii[-1] * growth)
        return radii

    def _sample_phase(
        self,
        body: HPolytope,
        rng: np.random.Generator,
        count: int,
        oracle_counter: list[int],
    ) -> np.ndarray:
        """Draw ``count`` almost uniform samples from ``body`` with the configured sampler.

        With ``config.chains > 1`` the phase budget is split across that many
        lockstep chains (``ceil(count / chains)`` samples each, surplus rows
        dropped) and the multi-chain kernels replace the per-step Python
        loops with ``(k, d)`` array operations.
        """
        chains = max(int(self.config.chains), 1)
        per_chain = -(-count // chains)  # ceil division
        if self.config.sampler == "hit_and_run":
            sampler = HitAndRunSampler(body)
            if chains == 1:
                return sampler.sample(rng, count)
            stacked = sampler.sample_chains(rng, per_chain, chains)
            return stacked.reshape(chains * per_chain, body.dimension)[:count]
        oracle = CountingOracle(oracle_from_polytope(body))
        chebyshev = body.chebyshev_ball()
        if chebyshev is None or chebyshev.radius <= 0:
            raise EstimationError("intermediate body is not full-dimensional")
        if self.config.sampler == "grid_walk":
            walker = GridWalkSampler(
                oracle,
                body.dimension,
                start=chebyshev.center,
                config=GridWalkConfig(gamma=self.config.gamma),
                scale=max(chebyshev.radius, 1e-9),
            )
            samples = walker.sample_continuous(rng, count)
        elif self.config.sampler == "ball_walk":
            batch_oracle = CountingBatchOracle(batch_oracle_from_polytope(body))
            walker = BallWalkSampler(
                oracle, body.dimension, start=chebyshev.center, batch_oracle=batch_oracle
            )
            if chains == 1:
                samples = walker.sample(rng, count)
            else:
                stacked = walker.sample_chains(rng, per_chain, chains)
                samples = stacked.reshape(chains * per_chain, body.dimension)[:count]
                oracle_counter[0] += batch_oracle.calls
        else:
            raise ValueError(f"unknown sampler {self.config.sampler!r}")
        oracle_counter[0] += oracle.calls
        return samples

    # ------------------------------------------------------------------
    def estimate(
        self,
        epsilon: float,
        delta: float,
        rng: np.random.Generator | int | None = None,
    ) -> VolumeEstimate:
        """Estimate the volume of the polytope with ratio ``1 + ε`` w.p. ``1 - δ``.

        Raises :class:`EstimationError` when the body is empty or not
        full-dimensional (such bodies have no inner ball, so they are not
        *well-bounded* in the paper's sense).
        """
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie strictly between 0 and 1")
        if not 0 < delta < 1:
            raise ValueError("delta must lie strictly between 0 and 1")
        rng = ensure_rng(rng)
        if self.polytope.is_empty():
            raise EstimationError("polytope is empty; it has no well-bounded volume")
        rounded = self._round(rng)
        radii = self._cube_radii(rounded)
        phases = len(radii) - 1
        dimension = rounded.polytope.dimension

        # Per-phase accuracy so the product of phase ratios meets the global
        # (1 + ε) target: (1 + ε/(2·phases))^phases <= 1 + ε for ε < 1.
        per_phase_epsilon = epsilon / max(2 * phases, 1)
        per_phase_delta = delta / max(phases, 1)
        if self.config.samples_per_phase is not None:
            samples_per_phase = self.config.samples_per_phase
        else:
            samples_per_phase = chernoff_ratio_sample_size(
                per_phase_epsilon, per_phase_delta, probability_lower_bound=0.5
            )
            samples_per_phase = min(samples_per_phase, self.config.max_samples_per_phase)

        # vol(K_0) = (2 r_0)^d exactly, because C_0 lies inside the unit ball.
        log_volume = dimension * np.log(2.0 * radii[0])
        ratios: list[float] = []
        samples_used = 0
        oracle_counter = [0]
        tracer = current_tracer()
        for index in range(phases):
            inner_radius = radii[index]
            outer_radius = radii[index + 1]
            outer_body = rounded.polytope.restrict_to_box(
                [(-outer_radius, outer_radius)] * dimension
            )
            with tracer.span(
                "telescoping-phase", phase=index, sampler=self.config.sampler
            ) as span:
                samples = self._sample_phase(outer_body, rng, samples_per_phase, oracle_counter)
                samples_used += samples.shape[0]
                inside = int(np.sum(np.max(np.abs(samples), axis=1) <= inner_radius + 1e-12))
                fraction = inside / samples.shape[0]
                # The true ratio is at least (r_i / r_{i+1})^d = 1 / cube_ratio; a
                # zero count can only happen with tiny per-phase sample sizes.
                fraction = max(fraction, 1.0 / (2.0 * samples.shape[0]))
                ratios.append(fraction)
                log_volume -= np.log(fraction)
                if tracer.enabled:
                    span.annotate(samples=int(samples.shape[0]), hits=inside, ratio=fraction)
                    span.count("walk_samples", int(samples.shape[0]))
                    if tracer.diagnostics:
                        from repro.sampling.diagnostics import uniformity_summary

                        summary = uniformity_summary(
                            samples,
                            [(-outer_radius, outer_radius)] * dimension,
                            support_oracle=batch_oracle_from_polytope(outer_body),
                        )
                        if summary:
                            span.annotate(**summary)

        rounded_volume = float(np.exp(log_volume))
        value = rounded.pull_back_volume(rounded_volume)
        return VolumeEstimate(
            value=value,
            epsilon=epsilon,
            delta=delta,
            method=f"dfk-telescoping[{self.config.sampler}]",
            samples_used=samples_used,
            oracle_calls=oracle_counter[0],
            details={
                "phases": phases,
                "ratios": ratios,
                "sandwich_ratio": rounded.sandwich_ratio,
                "samples_per_phase": samples_per_phase,
            },
        )


def estimate_convex_volume(
    polytope: HPolytope,
    epsilon: float,
    delta: float,
    rng: np.random.Generator | int | None = None,
    config: TelescopingConfig | None = None,
) -> VolumeEstimate:
    """Convenience wrapper: one-shot DFK estimate of a convex polytope's volume.

    Builds a :class:`TelescopingVolumeEstimator` and runs the paper's
    telescoping scheme once at the requested accuracy, e.g.
    ``estimate_convex_volume(cube, 0.1, 0.05, rng=7).value``.  For repeated
    estimates on the same body, hold a :class:`TelescopingVolumeEstimator`
    instead (it caches the rounding and the ball sequence).
    """
    estimator = TelescopingVolumeEstimator(polytope, config=config)
    return estimator.estimate(epsilon, delta, rng=rng)
