"""Exact volume computation packaged as estimators (Lemma 3.1).

Under the fixed-dimension hypothesis the volume of any generalized relation
is computable exactly in polynomial time (Lemma 3.1, via a sweep-plane /
cell-decomposition algorithm).  This module exposes the exact routines of
:mod:`repro.geometry.volume` through the same :class:`VolumeEstimate`
interface as the randomized estimators so that benchmarks can swap them in as
the ground truth and as the exponential-in-``d`` baseline (experiment E9).
"""

from __future__ import annotations

from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple
from repro.geometry.polytope import HPolytope
from repro.geometry.volume import (
    grid_cell_volume,
    polytope_volume,
    relation_volume_exact,
    tuple_volume,
)
from repro.volume.base import VolumeEstimate


def exact_polytope_volume(polytope: HPolytope) -> VolumeEstimate:
    """Exact volume of a convex polytope (vertex enumeration + triangulation)."""
    value = polytope_volume(polytope)
    return VolumeEstimate(value=value, epsilon=0.0, delta=0.0, method="exact-polytope")


def exact_tuple_volume(tuple_: GeneralizedTuple) -> VolumeEstimate:
    """Exact volume of the convex set defined by a generalized tuple."""
    value = tuple_volume(tuple_)
    return VolumeEstimate(value=value, epsilon=0.0, delta=0.0, method="exact-tuple")


def exact_relation_volume(relation: GeneralizedRelation, max_disjuncts: int = 20) -> VolumeEstimate:
    """Exact volume of a DNF relation by inclusion–exclusion over disjuncts."""
    value = relation_volume_exact(relation, max_disjuncts=max_disjuncts)
    return VolumeEstimate(value=value, epsilon=0.0, delta=0.0, method="exact-inclusion-exclusion")


def cell_decomposition_volume(
    relation: GeneralizedRelation, cell_size: float
) -> VolumeEstimate:
    """The Lemma 3.1 cell-counting volume with explicit cost accounting.

    The ``details`` record the number of cells examined, i.e. the
    ``(R / gamma)^d`` term that is polynomial only for fixed dimension.
    """
    value, cells = grid_cell_volume(relation, cell_size)
    return VolumeEstimate(
        value=value,
        epsilon=0.0,
        delta=0.0,
        method="cell-decomposition",
        oracle_calls=cells,
        details={"cells_examined": cells, "cell_size": cell_size},
    )
