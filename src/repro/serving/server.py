"""The asyncio HTTP/JSON front end over :class:`~repro.service.session.ServiceSession`.

One :class:`ServingServer` owns one session and exposes it to many
concurrent network clients:

* ``POST /v1/query`` — one volume request, one JSON answer.  Misses are
  **admission-controlled**: the planner's cost model prices the request and
  :class:`~repro.serving.admission.AdmissionController` sheds explicitly
  (503/504) instead of queueing without bound.  Cache hits bypass admission
  entirely — serving a stored answer is effectively free.
* ``POST /v1/stream`` — the same request served **anytime**: a chunked
  NDJSON stream of certified ``(estimate, eps)`` checkpoints as the adaptive
  estimator tightens toward the requested ε, then a ``final`` event whose
  value is bit-identical to what ``session.submit_batch`` returns in
  process for the same seed.
* ``GET /metrics`` — Prometheus text exposition (session counters, trace
  counters, serving counters, admission gauges, plus the observatory's
  latency/sample histograms and SLO burn-rate gauges).
* ``GET /v1/profile`` — the observatory's live per-plan-digest profile
  table, SLO status and — when the calibration auditor is configured —
  its per-(route, ε, δ) coverage report.
* ``GET /healthz`` — liveness plus current load; ``GET /v1/stats`` — the
  raw counter snapshot as JSON.

Concurrent identical requests are **coalesced**: the first arrival (the
leader) computes, every later arrival with the same plan digest and accuracy
(a follower) awaits the leader's future and receives the *same*
:class:`~repro.queries.aggregates.AggregateResult` — one computation, one
cache entry, N responses.  A follower whose deadline expires while waiting
is shed cleanly; the leader's computation is never cancelled (so the cache
still gains the entry, and a disconnected streaming client never aborts work
other clients share).

The implementation is stdlib-only: a minimal HTTP/1.1 server on
``asyncio.start_server`` with computations running on a thread pool, sized
by :class:`~repro.serving.config.ServingConfig`.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import json
import logging
import time
from typing import Any, Awaitable, Callable, Iterator

import numpy as np

from repro.sampling.rng import ensure_rng, spawn_seeds
from repro.service.session import ServiceSession
from repro.serving.admission import AdmissionController, AdmissionPolicy, ServingStats
from repro.serving.config import ServingConfig, build_session
from repro.serving.protocol import ProtocolError, QueryRequest, error_body
from repro.telemetry.export import prometheus_text
from repro.telemetry.observatory import CalibrationAuditor

__all__ = ["ServingServer", "run_server"]

logger = logging.getLogger(__name__)

_MAX_HEADER_BYTES = 64 * 1024
_MAX_BODY_BYTES = 4 * 1024 * 1024


class _Deadline:
    """The wall-clock budget of one request, fixed at arrival."""

    __slots__ = ("expires_at",)

    def __init__(self, seconds: float | None) -> None:
        self.expires_at = None if seconds is None else time.monotonic() + seconds

    def remaining(self) -> float | None:
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0


class _Inflight:
    """One admitted computation and the clients awaiting it (coalescing unit)."""

    __slots__ = ("future", "cost_seconds", "deadlines", "followers")

    def __init__(self, cost_seconds: float) -> None:
        self.future: Awaitable | None = None
        self.cost_seconds = cost_seconds
        self.deadlines: list[_Deadline] = []
        self.followers = 0

    def viable(self) -> bool:
        """Can *any* registered waiter still use the answer?

        Checked at the executor boundary: work every waiter has already
        given up on is skipped, not computed.  A waiter without a deadline
        keeps the computation viable forever.
        """
        if not self.deadlines:
            return True
        return any(not deadline.expired() for deadline in self.deadlines)


class ServingServer:
    """The HTTP front end; see the module docstring for the protocol.

    Parameters
    ----------
    session:
        The service session to expose; built from ``config`` when omitted.
    config:
        Deployment parameters (:class:`~repro.serving.config.ServingConfig`).
    """

    def __init__(
        self,
        config: ServingConfig | None = None,
        session: ServiceSession | None = None,
    ) -> None:
        self.config = config if config is not None else ServingConfig()
        self.session = session if session is not None else build_session(self.config)
        self.stats = ServingStats()
        self.admission = AdmissionController(
            AdmissionPolicy(
                capacity_seconds=self.config.capacity_seconds,
                queue_limit=self.config.queue_limit,
                bypass_priority=self.config.bypass_priority,
            )
        )
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.config.workers, thread_name_prefix="repro-serve"
        )
        self._inflight: dict[tuple, _Inflight] = {}
        self._server: asyncio.AbstractServer | None = None
        self.port: int | None = None
        self.observatory = self.session.observatory
        if self.observatory.enabled:
            self.observatory.slo(
                "request_seconds",
                objective=self.config.slo_objective,
                threshold=self.config.slo_latency_threshold,
            )
        self.auditor: CalibrationAuditor | None = None
        self._audit_task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind and start accepting connections; returns the bound port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.audit_interval_seconds > 0 and self.observatory.enabled:
            self.auditor = CalibrationAuditor(
                self.session, observatory=self.observatory
            )
            self._audit_task = asyncio.get_running_loop().create_task(
                self._audit_loop()
            )
        logger.info("serving on %s:%d", self.config.host, self.port)
        return self.port

    async def _audit_loop(self) -> None:
        """Run calibration probes on an idle-time budget, forever.

        Each cycle sleeps the configured interval, then — only when the
        admission queue is completely idle — spends ``audit_budget_seconds``
        replaying known-volume canaries on the compute pool.  Audit probes
        therefore never compete with admitted user traffic.
        """
        assert self.auditor is not None
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.audit_interval_seconds)
            if self.admission.depth > 0:
                continue
            try:
                await loop.run_in_executor(
                    self._executor,
                    self.auditor.run,
                    self.config.audit_budget_seconds,
                )
            except Exception:  # pragma: no cover - audit must never kill serving
                logger.exception("calibration audit cycle failed")

    async def serve_forever(self) -> None:
        """Run until cancelled (``repro serve`` blocks here)."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and shut the compute pool down."""
        if self._audit_task is not None:
            self._audit_task.cancel()
            try:
                await self._audit_task
            except (asyncio.CancelledError, Exception):
                pass
            self._audit_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, body = request
                keep_alive = await self._dispatch(method, path, body, writer)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        except Exception:  # pragma: no cover - defensive: never kill the acceptor
            logger.exception("connection handler failed")
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                OSError,
                asyncio.CancelledError,
            ):
                # Teardown only: the connection is closing either way, and a
                # cancellation arriving here (server shutdown) must not spill
                # into the event loop's protocol callbacks as noise.
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        try:
            header_blob = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            return None
        if len(header_blob) > _MAX_HEADER_BYTES:
            return None
        head, _, _ = header_blob.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _ = lines[0].split(" ", 2)
        except ValueError:
            return None
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        return method.upper(), target.split("?", 1)[0], body

    @staticmethod
    def _json_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        content_type: str = "application/json",
    ) -> None:
        body = (json.dumps(payload) + "\n").encode()
        ServingServer._raw_response(writer, status, body, content_type)

    @staticmethod
    def _raw_response(
        writer: asyncio.StreamWriter, status: int, body: bytes, content_type: str
    ) -> None:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 500: "Internal Server Error",
                  503: "Service Unavailable", 504: "Gateway Timeout"}.get(status, "OK")
        writer.write(
            (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: keep-alive\r\n\r\n"
            ).encode()
            + body
        )

    async def _dispatch(
        self, method: str, path: str, body: bytes, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns whether to keep the connection alive."""
        routes: dict[str, tuple[str, Callable]] = {
            "/healthz": ("GET", self._handle_healthz),
            "/metrics": ("GET", self._handle_metrics),
            "/v1/stats": ("GET", self._handle_stats),
            "/v1/profile": ("GET", self._handle_profile),
            "/v1/query": ("POST", self._handle_query),
            "/v1/stream": ("POST", self._handle_stream),
        }
        route = routes.get(path)
        if route is None:
            self._json_response(
                writer, 404, error_body("not_found", f"no such endpoint: {path}")
            )
            return True
        expected_method, handler = route
        if method != expected_method:
            self._json_response(
                writer,
                405,
                error_body("method_not_allowed", f"{path} expects {expected_method}"),
            )
            return True
        if handler is self._handle_stream:
            return await handler(body, writer)
        await handler(body, writer)
        await writer.drain()
        return True

    # ------------------------------------------------------------------
    # Simple endpoints
    # ------------------------------------------------------------------
    async def _handle_healthz(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        self._json_response(
            writer,
            200,
            {
                "status": "ok",
                "load": round(self.admission.load(), 4),
                "inflight": self.admission.depth,
                "backlog_seconds": round(self.admission.backlog_seconds, 4),
            },
        )

    async def _handle_metrics(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        text = prometheus_text(
            self.session.metrics,
            self.session.tracer,
            observatory=self.observatory if self.observatory.enabled else None,
        )
        lines = [text.rstrip("\n")] if text.strip() else []
        for name, value in self.stats.snapshot().items():
            lines.append(f"# HELP repro_serving_{name}_total Serving counter {name}.")
            lines.append(f"# TYPE repro_serving_{name}_total counter")
            lines.append(f"repro_serving_{name}_total {value}")
        gauges = (
            ("backlog_seconds", "Admitted-but-unfinished estimated cost.",
             self.admission.backlog_seconds),
            ("inflight", "Admitted computations currently in flight.",
             self.admission.depth),
            ("load", "Backlog over admission capacity.", self.admission.load()),
        )
        for name, help_text, value in gauges:
            lines.append(f"# HELP repro_serving_{name} {help_text}")
            lines.append(f"# TYPE repro_serving_{name} gauge")
            lines.append(f"repro_serving_{name} {value}")
        self._raw_response(
            writer, 200, ("\n".join(lines) + "\n").encode(), "text/plain; version=0.0.4"
        )

    def _execution_stats(self) -> dict[str, Any]:
        """Kernel backend, shared-memory arena, and autotuner status.

        Surfaced on both ``/v1/stats`` and ``/v1/profile`` so ``repro top``
        can show which compiled backend is live and how the state plane is
        being used without a second round trip.
        """
        from repro import kernels

        tuner = self.session.planner.tuner
        return {
            "kernels": kernels.kernel_stats(),
            "arena": self.session.state_plane.stats(),
            "autotune": None if tuner is None else tuner.stats(),
        }

    async def _handle_profile(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        payload: dict[str, Any] = {
            "enabled": self.observatory.enabled,
            "profiles": self.observatory.profiles.top(50),
            "slo": self.observatory.slo_status(),
            "auditor": None if self.auditor is None else self.auditor.report(),
            "execution": self._execution_stats(),
        }
        self._json_response(writer, 200, payload)

    async def _handle_stats(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        self._json_response(
            writer,
            200,
            {
                "serving": self.stats.snapshot(),
                "admission": {
                    "backlog_seconds": self.admission.backlog_seconds,
                    "inflight": self.admission.depth,
                    "load": self.admission.load(),
                },
                "session": self.session.metrics.snapshot(),
                "observatory": self.observatory.snapshot(),
                "execution": self._execution_stats(),
            },
        )

    # ------------------------------------------------------------------
    # /v1/query
    # ------------------------------------------------------------------
    async def _handle_query(self, body: bytes, writer: asyncio.StreamWriter) -> None:
        self.stats.count("received")
        try:
            payload = await self._serve_query(body)
        except ProtocolError as error:
            self._shed_count(error.code)
            self._json_response(writer, error.status, error_body(error.code, str(error)))
            return
        except Exception as error:  # computation failed
            self.stats.count("failed")
            logger.exception("query failed")
            self._json_response(writer, 500, error_body("internal", str(error)))
            return
        self.stats.count("completed")
        self._json_response(writer, 200, payload)

    async def _serve_query(self, body: bytes) -> dict:
        request = QueryRequest.from_body(body)
        started = time.perf_counter()
        epsilon, delta = self.session._resolve_accuracy(request.epsilon, request.delta)
        deadline = _Deadline(
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self.config.default_deadline_seconds
        )
        key, meta = self.session.resolve_request(request.query)

        # Fast path: a dominating cached answer is served without admission —
        # the whole point of the cache is that hits cost nothing.
        cached, dominance = self.session.cache.lookup(key, epsilon, delta)
        if cached is not None:
            self.stats.count("cache_fast_path")
            self.session.metrics.record_cache_hit(dominance=dominance)
            self.observatory.record_hit(
                meta.digest, "dominance" if dominance else "memory"
            )
            self.observatory.observe(
                "request_seconds", time.perf_counter() - started
            )
            return self._result_payload(cached, epsilon, delta, cached=True)

        result = await self._compute_coalesced(
            request, key, epsilon, delta, deadline, digest=meta.digest
        )
        self.observatory.observe("request_seconds", time.perf_counter() - started)
        return self._result_payload(result, epsilon, delta, cached=False)

    async def _compute_coalesced(
        self,
        request: QueryRequest,
        key: str,
        epsilon: float,
        delta: float,
        deadline: _Deadline,
        digest: str | None = None,
    ):
        """Admit (or join) the computation for ``key`` and await its answer."""
        loop = asyncio.get_running_loop()
        coalesce_key = (key, round(epsilon, 12), round(delta, 12))
        entry = self._inflight.get(coalesce_key)
        if entry is None:
            plan = self.session.explain(request.query, epsilon, delta)
            # Per-digest throughput priors (learned live or restored from
            # persisted profiles) price repeat plans with *their* history.
            cost = self.session.planner.estimated_execution_seconds(
                plan, digest=digest
            )
            code = self.admission.admit(cost, request.priority, deadline.remaining())
            if code is not None:
                raise ProtocolError(
                    code,
                    f"request shed ({code}): estimated cost {cost:.3f}s, "
                    f"backlog {self.admission.backlog_seconds:.3f}s of "
                    f"{self.admission.policy.capacity_seconds:.3f}s capacity",
                )
            self.stats.count("admitted")
            entry = self._new_inflight(request, coalesce_key, cost, loop, deadline)
        else:
            self.stats.count("coalesced_followers")
            if entry.followers == 0:
                self.stats.count("coalesced_leaders")
                self.session.metrics.record_coalesced()
            entry.followers += 1
            entry.deadlines.append(deadline)
        return await self._await_inflight(entry, deadline)

    def _new_inflight(
        self,
        request: QueryRequest,
        coalesce_key: tuple,
        cost: float,
        loop: asyncio.AbstractEventLoop,
        deadline: _Deadline,
    ) -> _Inflight:
        from repro.service.executor import BatchRequest

        entry = _Inflight(cost)
        entry.deadlines.append(deadline)
        admitted_at = time.perf_counter()

        def compute():
            # Time spent between admission and a pool thread picking the
            # work up is the serving-side queue: the admission-wait series.
            self.observatory.observe(
                "admission_wait_seconds", time.perf_counter() - admitted_at
            )
            # The executor boundary: work nobody can use any more is skipped,
            # never half-done — a shed request gets an error, not a partial.
            if not entry.viable():
                raise ProtocolError(
                    "deadline_exceeded", "deadline expired before execution began"
                )
            outcomes = self.session.submit_batch(
                [BatchRequest(request.query, epsilon=request.epsilon, delta=request.delta)],
                rng=request.seed,
            )
            return outcomes[0].result

        future = loop.run_in_executor(self._executor, compute)
        entry.future = future
        self._inflight[coalesce_key] = entry

        def _finished(fut) -> None:
            self._inflight.pop(coalesce_key, None)
            self.admission.release(cost)
            if fut.cancelled():
                return
            error = fut.exception()
            if error is not None and not isinstance(error, ProtocolError):
                logger.debug("inflight computation failed: %s", error)

        future.add_done_callback(_finished)
        return entry

    async def _await_inflight(self, entry: _Inflight, deadline: _Deadline):
        """Wait for a shared computation under this client's own deadline.

        The shared future is shielded: one waiter timing out (or
        disconnecting) must never cancel the computation other clients — and
        the cache — are waiting on.
        """
        try:
            return await asyncio.wait_for(
                asyncio.shield(entry.future), timeout=deadline.remaining()
            )
        except asyncio.TimeoutError:
            raise ProtocolError(
                "deadline_exceeded", "deadline expired while awaiting the result"
            ) from None

    def _result_payload(
        self, result, epsilon: float, delta: float, cached: bool
    ) -> dict:
        estimate = result.estimate
        payload: dict[str, Any] = {
            "value": result.value,
            "exact": result.exact,
            "cached": cached,
            "epsilon": epsilon,
            "delta": delta,
        }
        if estimate is not None:
            payload["certified_epsilon"] = estimate.epsilon
            payload["method"] = estimate.method
            payload["samples_used"] = estimate.samples_used
        else:
            payload["certified_epsilon"] = 0.0 if result.exact else epsilon
        return payload

    def _shed_count(self, code: str) -> None:
        counter = {
            "overloaded": "shed_overload",
            "queue_full": "shed_queue_full",
            "deadline_unreachable": "shed_deadline_unreachable",
            "deadline_exceeded": "shed_deadline_exceeded",
        }.get(code)
        if counter is not None:
            self.stats.count(counter)
        else:
            self.stats.count("failed")

    # ------------------------------------------------------------------
    # /v1/stream
    # ------------------------------------------------------------------
    def _stream_schedule(self, epsilon: float) -> Iterator[float]:
        """The ε ladder of a stream: geometric tightening down to the target."""
        stage = self.config.stream_start_epsilon
        while stage > epsilon:
            yield stage
            stage *= self.config.stream_factor
        yield epsilon

    async def _handle_stream(self, body: bytes, writer: asyncio.StreamWriter) -> bool:
        """Serve one anytime stream; returns False (connection closes after)."""
        self.stats.count("received")
        loop = asyncio.get_running_loop()
        try:
            request = QueryRequest.from_body(body)
            epsilon, delta = self.session._resolve_accuracy(
                request.epsilon, request.delta
            )
            deadline = _Deadline(
                request.deadline_seconds
                if request.deadline_seconds is not None
                else self.config.default_deadline_seconds
            )
            plan = self.session.explain(request.query, epsilon, delta)
            cost = self.session.planner.estimated_execution_seconds(
                plan, digest=self.session.resolve_request(request.query)[1].digest
            )
            code = self.admission.admit(cost, request.priority, deadline.remaining())
            if code is not None:
                self._shed_count(code)
                self._json_response(
                    writer,
                    {"overloaded": 503, "queue_full": 503}.get(code, 504),
                    error_body(code, f"request shed ({code})"),
                )
                await writer.drain()
                return True
        except ProtocolError as error:
            self._shed_count(error.code)
            self._json_response(writer, error.status, error_body(error.code, str(error)))
            await writer.drain()
            return True

        self.stats.count("admitted")
        self.stats.count("streams")
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        disconnected = False
        try:
            await self._send_chunk(
                writer,
                {
                    "event": "accepted",
                    "route": plan.estimator,
                    "epsilon": epsilon,
                    "delta": delta,
                    "estimated_cost_seconds": cost,
                },
            )
            # Mirror submit_batch's per-request seed derivation so the final
            # staged answer is bit-identical to the in-process batch path.
            derived_seed = spawn_seeds(ensure_rng(request.seed), 1)[0]
            stages = (
                [epsilon]
                if plan.estimator == "exact"
                else list(self._stream_schedule(epsilon))
            )
            result = None
            last_certified = float("inf")
            for stage_epsilon in stages:
                if deadline.expired():
                    raise ProtocolError(
                        "deadline_exceeded", "deadline expired between checkpoints"
                    )
                stage_future = loop.run_in_executor(
                    self._executor,
                    lambda e=stage_epsilon: self.session.volume(
                        request.query,
                        epsilon=e,
                        delta=delta,
                        rng=np.random.default_rng(derived_seed),
                    ),
                )
                try:
                    # Shielded: an expiring deadline (or a vanished client)
                    # abandons the wait, not the computation — the stage still
                    # lands in the cache for everyone else.
                    result = await asyncio.wait_for(
                        asyncio.shield(stage_future), timeout=deadline.remaining()
                    )
                except asyncio.TimeoutError:
                    raise ProtocolError(
                        "deadline_exceeded", "deadline expired mid-computation"
                    ) from None
                certified = (
                    result.estimate.epsilon if result.estimate is not None else 0.0
                )
                if stage_epsilon == stages[-1]:
                    break
                # A warm cache can certify several loose stages at once; only
                # genuine tightenings are worth a checkpoint event.
                if certified >= last_certified:
                    continue
                last_certified = certified
                self.stats.count("stream_checkpoints")
                await self._send_chunk(
                    writer,
                    {
                        "event": "checkpoint",
                        "estimate": result.value,
                        "eps": certified,
                    },
                )
            assert result is not None
            final = self._result_payload(result, epsilon, delta, cached=False)
            final["event"] = "final"
            await self._send_chunk(writer, final)
            self.stats.count("completed")
        except ProtocolError as error:
            self._shed_count(error.code)
            if not disconnected:
                try:
                    await self._send_chunk(
                        writer, {"event": "error", **error_body(error.code, str(error))}
                    )
                except (ConnectionResetError, BrokenPipeError, OSError):
                    disconnected = True
        except (ConnectionResetError, BrokenPipeError, OSError):
            # The client went away mid-stream.  Nothing is cancelled: the
            # stage future keeps computing and its result stays cached.
            disconnected = True
            self.stats.count("stream_disconnects")
        except Exception as error:  # pragma: no cover - computation failure
            self.stats.count("failed")
            logger.exception("stream failed")
            try:
                await self._send_chunk(
                    writer, {"event": "error", **error_body("internal", str(error))}
                )
            except (ConnectionResetError, BrokenPipeError, OSError):
                disconnected = True
        finally:
            self.admission.release(cost)
            if not disconnected:
                try:
                    writer.write(b"0\r\n\r\n")
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    pass
        return False

    @staticmethod
    async def _send_chunk(writer: asyncio.StreamWriter, event: dict) -> None:
        line = (json.dumps(event) + "\n").encode()
        writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
        await writer.drain()


def run_server(config: ServingConfig) -> None:
    """Build a server from ``config`` and block serving until interrupted.

    The blocking entry point behind ``repro serve``:
    ``run_server(load_config("deploy.toml"))`` owns the event loop until
    KeyboardInterrupt.  Embedders wanting a non-blocking server construct
    :class:`ServingServer` and ``await server.start()`` instead.
    """
    server = ServingServer(config)

    async def main() -> None:
        await server.start()
        try:
            await server.serve_forever()
        except asyncio.CancelledError:  # pragma: no cover - shutdown path
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
