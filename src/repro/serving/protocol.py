"""The serving wire protocol: request/response JSON and query (de)serialization.

Everything the HTTP front end speaks is defined here, so the server, the
``repro query`` client and the tests share one vocabulary:

* queries travel either as **text** in the language of
  :func:`repro.queries.parser.parse_query` (``"Zone(x, y) and x <= 1/2"``)
  or as a structured **AST document** (:func:`query_to_json` /
  :func:`query_from_json` round-trip every :class:`~repro.queries.ast.Query`);
* a :class:`QueryRequest` is the validated form of a ``POST /v1/query`` or
  ``POST /v1/stream`` body (accuracy, seed, deadline, priority);
* error payloads carry a stable machine-readable ``code`` from
  :data:`ERROR_CODES` next to the human-readable message;
* streamed responses are NDJSON event lines (one JSON object per line):
  ``accepted`` → zero or more ``checkpoint`` events, each a certified
  ``(estimate, eps)`` pair of the anytime estimator, → one ``final``
  (or ``error``) event.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.constraints.atoms import AtomicConstraint
from repro.queries.ast import QAnd, QConstraint, QExists, QNot, QOr, QRelation, Query
from repro.queries.parser import ParseError, parse_query

__all__ = [
    "ERROR_CODES",
    "ProtocolError",
    "QueryRequest",
    "error_body",
    "query_from_json",
    "query_to_json",
]

#: Machine-readable error codes the server emits, with their HTTP status.
ERROR_CODES = {
    "invalid_request": 400,     # malformed JSON / missing fields / bad values
    "invalid_query": 400,       # query text or AST document failed to parse
    "not_found": 404,           # unknown endpoint
    "method_not_allowed": 405,  # wrong HTTP verb for the endpoint
    "overloaded": 503,          # admission control shed the request
    "queue_full": 503,          # hard queue-depth limit reached
    "deadline_unreachable": 504,  # estimated cost exceeds the deadline at admission
    "deadline_exceeded": 504,   # deadline expired while queued or computing
    "internal": 500,            # computation failed
}


class ProtocolError(ValueError):
    """A request that cannot be served, carrying its wire error code.

    ``code`` is one of :data:`ERROR_CODES` (which fixes the HTTP status via
    :attr:`status`); the server maps raised instances straight onto
    ``{"error": {"code", "message"}}`` JSON bodies, e.g.
    ``raise ProtocolError("deadline_exceeded", "expired mid-computation")``.
    """

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.status = ERROR_CODES[code]


def error_body(code: str, message: str) -> dict:
    """The JSON error payload for ``code`` (every shed/failure uses this shape).

    ``error_body("overloaded", "backlog full")`` returns
    ``{"error": {"code": "overloaded", "message": "backlog full"}}`` — the
    single error shape clients and the CLI's exit-code mapping rely on.
    """
    return {"error": {"code": code, "message": message}}


# ----------------------------------------------------------------------
# Query (de)serialization
# ----------------------------------------------------------------------
def query_to_json(query: Query) -> dict:
    """Serialize a query AST to a JSON-able document (inverse of
    :func:`query_from_json`).

    Constraint atoms are rendered through their exact-rational textual form,
    which the parser reads back verbatim — a round trip
    (``query_from_json(query_to_json(q))``) preserves the plan digest of
    the query.
    """
    if isinstance(query, QRelation):
        return {"op": "relation", "name": query.name, "args": list(query.arguments)}
    if isinstance(query, QConstraint):
        return {"op": "constraint", "text": str(query.constraint)}
    if isinstance(query, QAnd):
        return {"op": "and", "args": [query_to_json(op) for op in query.operands]}
    if isinstance(query, QOr):
        return {"op": "or", "args": [query_to_json(op) for op in query.operands]}
    if isinstance(query, QNot):
        return {"op": "not", "arg": query_to_json(query.operand)}
    if isinstance(query, QExists):
        return {
            "op": "exists",
            "vars": list(query.variables),
            "arg": query_to_json(query.operand),
        }
    raise TypeError(f"unsupported query node {query!r}")


def _constraint_from_text(text: str) -> AtomicConstraint:
    parsed = parse_query(text)
    if not isinstance(parsed, QConstraint):
        raise ProtocolError(
            "invalid_query",
            f"constraint node must hold a single linear comparison, got {text!r}",
        )
    return parsed.constraint


def query_from_json(document: Mapping[str, Any]) -> Query:
    """Rebuild a query AST from its :func:`query_to_json` document.

    The inverse of :func:`query_to_json`: accepts the structured ``ast``
    form of the wire protocol and returns the query AST, raising
    :class:`ProtocolError` (``invalid_query``) on unknown ops or malformed
    documents.  Round trips preserve the plan digest.
    """
    if not isinstance(document, Mapping):
        raise ProtocolError("invalid_query", "query document must be a JSON object")
    op = document.get("op")
    try:
        if op == "relation":
            return QRelation(document["name"], document["args"])
        if op == "constraint":
            return QConstraint(_constraint_from_text(document["text"]))
        if op == "and":
            return QAnd([query_from_json(arg) for arg in document["args"]])
        if op == "or":
            return QOr([query_from_json(arg) for arg in document["args"]])
        if op == "not":
            return QNot(query_from_json(document["arg"]))
        if op == "exists":
            return QExists(document["vars"], query_from_json(document["arg"]))
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError, ParseError) as error:
        raise ProtocolError("invalid_query", f"bad query document: {error}") from error
    raise ProtocolError("invalid_query", f"unknown query op {op!r}")


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QueryRequest:
    """One validated volume request as it arrives over the wire.

    Attributes
    ----------
    query:
        The parsed query AST.
    epsilon / delta:
        Requested accuracy; ``None`` defers to the session's defaults.
    seed:
        Root seed of the request's random stream.  The server serves the
        request exactly as ``session.submit_batch([...], rng=seed)`` would,
        so a fixed seed makes the network answer bit-identical to the
        in-process one.  ``None`` draws a fresh nondeterministic stream.
    deadline_seconds:
        Wall-clock budget from arrival; expired requests are shed with a
        clean ``deadline_exceeded`` error, never a partial result.  ``None``
        means the server's default (which may itself be ``None`` = no
        deadline).
    priority:
        0 (shed first) … 9 (shed last); see
        :class:`~repro.serving.admission.AdmissionController`.
    """

    query: Query
    epsilon: float | None = None
    delta: float | None = None
    seed: int | None = None
    deadline_seconds: float | None = None
    priority: int = 5
    raw: dict = field(default_factory=dict, repr=False, compare=False)

    @classmethod
    def from_body(cls, body: bytes | str | Mapping[str, Any]) -> "QueryRequest":
        """Parse and validate a request body (raises :class:`ProtocolError`)."""
        if isinstance(body, (bytes, str)):
            try:
                payload = json.loads(body or "{}")
            except json.JSONDecodeError as error:
                raise ProtocolError(
                    "invalid_request", f"body is not valid JSON: {error}"
                ) from error
        else:
            payload = dict(body)
        if not isinstance(payload, dict):
            raise ProtocolError("invalid_request", "body must be a JSON object")

        if "query" in payload and "ast" in payload:
            raise ProtocolError(
                "invalid_request", "give either 'query' (text) or 'ast', not both"
            )
        if "query" in payload:
            text = payload["query"]
            if not isinstance(text, str):
                raise ProtocolError("invalid_request", "'query' must be a string")
            try:
                query = parse_query(text)
            except ParseError as error:
                raise ProtocolError("invalid_query", str(error)) from error
        elif "ast" in payload:
            query = query_from_json(payload["ast"])
        else:
            raise ProtocolError("invalid_request", "missing 'query' text or 'ast'")

        epsilon = _optional_number(payload, "epsilon", low=0.0, high=1.0)
        delta = _optional_number(payload, "delta", low=0.0, high=1.0)
        seed = payload.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError("invalid_request", "'seed' must be an integer")
        deadline_ms = _optional_number(payload, "deadline_ms", low=0.0, high=None)
        priority = payload.get("priority", 5)
        if not isinstance(priority, int) or not 0 <= priority <= 9:
            raise ProtocolError(
                "invalid_request", "'priority' must be an integer in [0, 9]"
            )
        return cls(
            query=query,
            epsilon=epsilon,
            delta=delta,
            seed=seed,
            deadline_seconds=None if deadline_ms is None else deadline_ms / 1e3,
            priority=priority,
            raw=payload,
        )


def _optional_number(
    payload: Mapping[str, Any], name: str, low: float | None, high: float | None
) -> float | None:
    value = payload.get(name)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError("invalid_request", f"'{name}' must be a number")
    value = float(value)
    if low is not None and value < low:
        raise ProtocolError("invalid_request", f"'{name}' must be >= {low}")
    if high is not None and value >= high:
        raise ProtocolError("invalid_request", f"'{name}' must be < {high}")
    return value
