"""Admission control: planner-cost-driven load shedding for the front end.

The server never queues blindly.  Every arriving miss is planned first
(planning is a cheap structural scan), and the plan's estimated execution
seconds — :meth:`repro.service.planner.Planner.estimated_execution_seconds`,
continuously recalibrated from the session's measured per-route throughput —
feed a small, explicit shedding policy:

* the **backlog** is the sum of estimated seconds of every admitted-but-
  unfinished computation.  While ``backlog + request <= capacity_seconds``
  every request is admitted;
* past capacity the server is overloaded and sheds **by priority**:
  requests below :attr:`~AdmissionPolicy.bypass_priority` are rejected with
  an explicit ``overloaded`` error (HTTP 503), high-priority requests keep
  being admitted until the hard :attr:`~AdmissionPolicy.queue_limit`;
* the hard queue-depth limit sheds unconditionally (``queue_full``), so a
  flood of high-priority traffic cannot grow the queue without bound;
* a request whose **deadline** is already infeasible — estimated cost
  exceeds the remaining budget — is shed immediately
  (``deadline_unreachable``) instead of wasting queue space on an answer
  nobody will wait for.

Shedding is always **explicit**: a shed request receives a JSON error
naming the policy decision; nothing is silently dropped (benchmark E23
asserts a response for every request sent, under overload included).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["AdmissionController", "AdmissionPolicy", "ServingStats"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The knobs of the shedding policy (see the module docstring).

    ``capacity_seconds`` is the estimated backlog the deployment is willing
    to carry — roughly the worst acceptable queueing delay.  ``queue_limit``
    bounds the number of admitted-but-unfinished computations regardless of
    cost.  ``bypass_priority`` is the priority (0–9) from which requests may
    exceed capacity (but never the hard limit).
    """

    capacity_seconds: float = 2.0
    queue_limit: int = 256
    bypass_priority: int = 8

    def __post_init__(self) -> None:
        if self.capacity_seconds <= 0:
            raise ValueError("capacity_seconds must be positive")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if not 0 <= self.bypass_priority <= 9:
            raise ValueError("bypass_priority must lie in [0, 9]")


class ServingStats:
    """Counters of the serving front end (rendered under ``repro_serving_*``).

    Mutation is lock-guarded: handlers run on the event loop but computations
    finish on executor threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.received = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.shed_overload = 0
        self.shed_queue_full = 0
        self.shed_deadline_unreachable = 0
        self.shed_deadline_exceeded = 0
        self.coalesced_leaders = 0
        self.coalesced_followers = 0
        self.streams = 0
        self.stream_checkpoints = 0
        self.stream_disconnects = 0
        self.cache_fast_path = 0

    def count(self, name: str, amount: int = 1) -> None:
        """Increment one counter by ``amount``."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        """A plain-dict copy of every counter."""
        with self._lock:
            return {
                name: value
                for name, value in self.__dict__.items()
                if not name.startswith("_")
            }

    @property
    def shed_total(self) -> int:
        """All requests shed by any policy decision."""
        with self._lock:
            return (
                self.shed_overload
                + self.shed_queue_full
                + self.shed_deadline_unreachable
                + self.shed_deadline_exceeded
            )


class AdmissionController:
    """Tracks the estimated backlog and applies :class:`AdmissionPolicy`.

    The server calls :meth:`admit` once per planned miss and **must** pair
    every successful admission with exactly one :meth:`release` (completion
    and failure alike), or the backlog estimate drifts.

    Example::

        controller = AdmissionController(AdmissionPolicy(capacity_seconds=1.0))
        code = controller.admit(cost_seconds=0.3, priority=5, remaining_deadline=None)
        if code is None:
            try: ...  # compute
            finally: controller.release(0.3)
    """

    def __init__(self, policy: AdmissionPolicy | None = None) -> None:
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._lock = threading.Lock()
        self._backlog_seconds = 0.0
        self._depth = 0

    @property
    def backlog_seconds(self) -> float:
        """Estimated seconds of admitted-but-unfinished computation."""
        with self._lock:
            return self._backlog_seconds

    @property
    def depth(self) -> int:
        """Number of admitted-but-unfinished computations."""
        with self._lock:
            return self._depth

    def load(self) -> float:
        """Backlog as a fraction of capacity (> 1.0 means overloaded)."""
        with self._lock:
            return self._backlog_seconds / self.policy.capacity_seconds

    def admit(
        self,
        cost_seconds: float,
        priority: int,
        remaining_deadline: float | None,
    ) -> str | None:
        """Decide one request: ``None`` to admit, or the shed error code.

        ``cost_seconds`` is the planner's execution estimate for the miss;
        ``remaining_deadline`` the seconds left until the request's deadline
        (``None`` = no deadline).  On admission the backlog is charged
        atomically under the decision lock, so concurrent arrivals cannot
        both squeeze into the same capacity gap.
        """
        if remaining_deadline is not None and cost_seconds > remaining_deadline:
            return "deadline_unreachable"
        with self._lock:
            if self._depth >= self.policy.queue_limit:
                return "queue_full"
            over = (
                self._backlog_seconds + cost_seconds > self.policy.capacity_seconds
            )
            if over and self._depth > 0 and priority < self.policy.bypass_priority:
                # An idle server always takes the next request, whatever its
                # estimated cost — shedding with an empty queue would make
                # expensive queries unservable outright.
                return "overloaded"
            self._backlog_seconds += cost_seconds
            self._depth += 1
            return None

    def release(self, cost_seconds: float) -> None:
        """Return an admitted request's cost to the pool (always pairs admit)."""
        with self._lock:
            self._backlog_seconds = max(0.0, self._backlog_seconds - cost_seconds)
            self._depth = max(0, self._depth - 1)
