"""Per-deployment configuration of the serving front end.

A deployment is described by one TOML file (read with the stdlib
``tomllib``); :func:`load_config` turns it into a :class:`ServingConfig` and
:func:`build_session` materialises the session the server holds — database,
planner, persistent store and tracer included.  The same schema drives
``repro serve --config deploy.toml``; see ``docs/cli.md`` for the full
reference.  Example::

    [server]
    host = "127.0.0.1"
    port = 8787
    workers = 4
    capacity_seconds = 2.0
    queue_limit = 256
    bypass_priority = 8
    default_deadline_ms = 10000
    store = "results.db"

    [database]
    preset = "gis"            # or inline relations, below
    seed = 7

    [database.relations]      # inline alternative to a preset
    Zone = "0 <= x <= 2 and 0 <= y <= 1"

    [accuracy]
    epsilon = 0.1
    delta = 0.05

Only the tables you need are required; every field has the default shown by
:class:`ServingConfig`.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.constraints.database import ConstraintDatabase
from repro.constraints.parser import parse_relation

__all__ = ["ServingConfig", "build_database", "build_session", "load_config"]


@dataclass(frozen=True)
class ServingConfig:
    """Everything a deployment of the serving front end is parameterised by.

    ``workers`` sizes the executor thread pool computing admitted misses;
    ``capacity_seconds`` / ``queue_limit`` / ``bypass_priority`` are the
    admission policy (:class:`~repro.serving.admission.AdmissionPolicy`);
    ``stream_start_epsilon`` / ``stream_factor`` shape the anytime streaming
    schedule (first certified checkpoint, geometric tightening toward the
    requested ε).  ``database_preset`` or ``database_relations`` describe the
    served data; ``store_path`` attaches the persistent result store.
    ``observatory`` toggles the continuous-observability registry
    (histograms, per-digest profiles); ``slo_objective`` /
    ``slo_latency_threshold`` define the request-latency SLO the burn-rate
    gauges monitor; a positive ``audit_interval_seconds`` starts the
    idle-time calibration auditor, spending ``audit_budget_seconds`` of
    canary probes per idle cycle (see ``docs/observability.md``).
    """

    host: str = "127.0.0.1"
    port: int = 8787
    workers: int = 4
    capacity_seconds: float = 2.0
    queue_limit: int = 256
    bypass_priority: int = 8
    default_deadline_seconds: float | None = None
    default_priority: int = 5
    epsilon: float = 0.1
    delta: float = 0.05
    adaptive: bool = True
    share_subplans: bool = True
    store_path: str | None = None
    trace: bool = False
    observatory: bool = True
    slo_objective: float = 0.999
    slo_latency_threshold: float = 0.5
    audit_interval_seconds: float = 0.0
    audit_budget_seconds: float = 0.25
    stream_start_epsilon: float = 0.5
    stream_factor: float = 0.6
    database_preset: str | None = None
    database_seed: int = 0
    database_relations: Mapping[str, str] = field(default_factory=dict)
    database_variables: Mapping[str, list[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if not 0 < self.stream_factor < 1:
            raise ValueError("stream_factor must lie in (0, 1)")
        if not 0 < self.stream_start_epsilon < 1:
            raise ValueError("stream_start_epsilon must lie in (0, 1)")
        if not 0 <= self.default_priority <= 9:
            raise ValueError("default_priority must lie in [0, 9]")
        if not 0 < self.slo_objective < 1:
            raise ValueError("slo_objective must lie in (0, 1)")
        if self.slo_latency_threshold <= 0:
            raise ValueError("slo_latency_threshold must be positive")
        if self.audit_interval_seconds < 0:
            raise ValueError("audit_interval_seconds must be non-negative")
        if self.audit_budget_seconds <= 0:
            raise ValueError("audit_budget_seconds must be positive")


def load_config(source: str | Path | Mapping[str, Any]) -> ServingConfig:
    """Read a deployment TOML file (or an equivalent mapping).

    Unknown keys raise — a typo in a deployment file must fail loudly at
    startup, not silently fall back to a default.  Example::

        config = load_config("docs/examples/deploy.toml")
        config.port  # 8787

    The schema (``[server]`` / ``[database]`` / ``[accuracy]``) is
    documented in ``docs/cli.md``.
    """
    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            document = tomllib.load(handle)
    else:
        document = {key: value for key, value in source.items()}

    known_tables = {"server", "database", "accuracy"}
    unknown = set(document) - known_tables
    if unknown:
        raise ValueError(f"unknown config table(s): {sorted(unknown)}")

    server = dict(document.get("server", {}))
    database = dict(document.get("database", {}))
    accuracy = dict(document.get("accuracy", {}))

    values: dict[str, Any] = {}
    server_keys = {
        "host": "host",
        "port": "port",
        "workers": "workers",
        "capacity_seconds": "capacity_seconds",
        "queue_limit": "queue_limit",
        "bypass_priority": "bypass_priority",
        "default_priority": "default_priority",
        "adaptive": "adaptive",
        "share_subplans": "share_subplans",
        "store": "store_path",
        "trace": "trace",
        "observatory": "observatory",
        "slo_objective": "slo_objective",
        "slo_latency_threshold": "slo_latency_threshold",
        "audit_interval_seconds": "audit_interval_seconds",
        "audit_budget_seconds": "audit_budget_seconds",
        "stream_start_epsilon": "stream_start_epsilon",
        "stream_factor": "stream_factor",
    }
    for key, attr in server_keys.items():
        if key in server:
            values[attr] = server.pop(key)
    if "default_deadline_ms" in server:
        deadline = server.pop("default_deadline_ms")
        values["default_deadline_seconds"] = (
            None if deadline is None else float(deadline) / 1e3
        )
    if server:
        raise ValueError(f"unknown [server] key(s): {sorted(server)}")

    if "preset" in database:
        values["database_preset"] = database.pop("preset")
    if "seed" in database:
        values["database_seed"] = database.pop("seed")
    if "relations" in database:
        relations = database.pop("relations")
        if not isinstance(relations, Mapping):
            raise ValueError("[database.relations] must be a table of name = formula")
        values["database_relations"] = dict(relations)
    if "variables" in database:
        variables = database.pop("variables")
        if not isinstance(variables, Mapping):
            raise ValueError("[database.variables] must be a table of name = [vars]")
        values["database_variables"] = {
            name: list(order) for name, order in variables.items()
        }
    if database:
        raise ValueError(f"unknown [database] key(s): {sorted(database)}")

    for key in ("epsilon", "delta"):
        if key in accuracy:
            values[key] = accuracy.pop(key)
    if accuracy:
        raise ValueError(f"unknown [accuracy] key(s): {sorted(accuracy)}")

    return ServingConfig(**values)


def build_database(config: ServingConfig) -> ConstraintDatabase:
    """Materialise the configured database (preset and/or inline relations).

    Presets: ``"gis"`` (the synthetic map of :mod:`repro.workloads.gis`,
    deterministic in ``database.seed``) and ``"dumbbell"`` (the 2-d dumbbell
    union under the relation name ``Dumbbell``).  Inline
    ``[database.relations]`` formulas are parsed with
    :func:`repro.constraints.parser.parse_relation` and layered on top.
    """
    if config.database_preset is not None:
        if config.database_preset == "gis":
            from repro.workloads.gis import synthetic_map

            database = synthetic_map(rng=config.database_seed).database
        elif config.database_preset == "dumbbell":
            from repro.workloads.dumbbell import dumbbell

            database = ConstraintDatabase(
                instances={"Dumbbell": dumbbell(2).relation}
            )
        else:
            raise ValueError(
                f"unknown database preset {config.database_preset!r} "
                "(available: 'gis', 'dumbbell')"
            )
    else:
        database = ConstraintDatabase()
    for name, formula in config.database_relations.items():
        variables = config.database_variables.get(name)
        database.set_relation(name, parse_relation(formula, variables))
    if not database.names():
        raise ValueError(
            "the configured database is empty: give [database] a preset or "
            "at least one [database.relations] entry"
        )
    return database


def build_session(config: ServingConfig):
    """Build the :class:`~repro.service.session.ServiceSession` a server holds.

    Wires the configured database, default accuracy, the adaptive planner
    (streaming checkpoints ride on the adaptive route), the persistent store
    and — when ``trace`` is set — a recording tracer.
    """
    from repro.core.observable import GeneratorParams
    from repro.service.planner import Planner
    from repro.service.session import ServiceSession
    from repro.telemetry.tracer import RecordingTracer

    database = build_database(config)
    return ServiceSession(
        database,
        params=GeneratorParams(epsilon=config.epsilon, delta=config.delta),
        planner=Planner(adaptive=config.adaptive),
        share_subplans=config.share_subplans,
        tracer=RecordingTracer() if config.trace else None,
        store=config.store_path,
        observatory=config.observatory,
    )
