"""Network serving front end: asyncio HTTP/JSON over a :class:`ServiceSession`.

The layer cake, top to bottom (details in ``docs/serving.md``):

* :mod:`repro.serving.server` — the HTTP server: routing, coalescing,
  per-request deadlines, anytime streaming;
* :mod:`repro.serving.admission` — planner-cost-driven admission control
  and explicit load shedding;
* :mod:`repro.serving.protocol` — the wire vocabulary (request validation,
  query text/AST (de)serialization, stable error codes);
* :mod:`repro.serving.config` — per-deployment TOML configuration and
  session construction.

Quick start (or just ``repro serve``)::

    from repro.serving import ServingConfig, ServingServer

    config = ServingConfig(port=8787, database_preset="gis")
    server = ServingServer(config)
    # await server.start(); await server.serve_forever()
"""

from repro.serving.admission import AdmissionController, AdmissionPolicy, ServingStats
from repro.serving.config import (
    ServingConfig,
    build_database,
    build_session,
    load_config,
)
from repro.serving.protocol import (
    ERROR_CODES,
    ProtocolError,
    QueryRequest,
    error_body,
    query_from_json,
    query_to_json,
)
from repro.serving.server import ServingServer, run_server

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ERROR_CODES",
    "ProtocolError",
    "QueryRequest",
    "ServingConfig",
    "ServingServer",
    "ServingStats",
    "build_database",
    "build_session",
    "error_body",
    "load_config",
    "query_from_json",
    "query_to_json",
    "run_server",
]
