"""Constraint database schemas and instances.

A *relational database schema* is a set of relation names with arities; a
*finitely representable instance* maps each name to a generalized relation of
matching arity (Section 2 of the paper).  The classes below are deliberately
small: the heavy lifting happens in the relations themselves and in the query
layer (:mod:`repro.queries`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.constraints.relations import GeneralizedRelation


class RelationSchema:
    """The declaration of one relation name: its attributes (ordered)."""

    __slots__ = ("name", "attributes")

    def __init__(self, name: str, attributes: Iterable[str]) -> None:
        if not name:
            raise ValueError("relation name must be non-empty")
        self.name = name
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ValueError(f"duplicate attributes in schema of {name!r}")
        if not self.attributes:
            raise ValueError(f"relation {name!r} must have at least one attribute")

    @property
    def arity(self) -> int:
        """Number of attributes of the relation."""
        return len(self.attributes)

    def __repr__(self) -> str:
        return f"RelationSchema({self.name!r}, {self.attributes})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))


class DatabaseSchema:
    """A collection of relation schemas indexed by name."""

    def __init__(self, relations: Iterable[RelationSchema] = ()) -> None:
        self._relations: dict[str, RelationSchema] = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        """Register a relation schema (names must be unique)."""
        if relation.name in self._relations:
            raise ValueError(f"duplicate relation name {relation.name!r}")
        self._relations[relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"unknown relation {name!r}") from None

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def names(self) -> tuple[str, ...]:
        """The registered relation names, in insertion order."""
        return tuple(self._relations)

    def __repr__(self) -> str:
        return f"DatabaseSchema({list(self._relations.values())!r})"


class ConstraintDatabase:
    """A finitely representable instance: named generalized relations.

    The database checks that the stored relation's variable order matches the
    schema attributes, so queries can refer to attributes unambiguously.
    Mutation goes through :meth:`set_relation`, which keeps the schema in
    sync — the serving layer's fingerprints and cache invalidation build on
    that single entry point.  Example::

        db = ConstraintDatabase()
        db.set_relation("Zone", parse_relation("0 <= x <= 2 and 0 <= y <= 1"))
        db.relation("Zone").variables  # ("x", "y")
    """

    def __init__(
        self,
        schema: DatabaseSchema | None = None,
        instances: Mapping[str, GeneralizedRelation] | None = None,
    ) -> None:
        self.schema = schema if schema is not None else DatabaseSchema()
        self._instances: dict[str, GeneralizedRelation] = {}
        if instances:
            for name, relation in instances.items():
                self.set_relation(name, relation)

    def set_relation(self, name: str, relation: GeneralizedRelation) -> None:
        """Store (or replace) the instance of a relation name.

        When the name is not yet declared in the schema, a schema entry is
        created from the relation's own variable order.
        """
        if not isinstance(relation, GeneralizedRelation):
            raise TypeError("instances must be GeneralizedRelation objects")
        if name in self.schema:
            declared = self.schema[name]
            if declared.attributes != relation.variables:
                if declared.arity != relation.dimension:
                    raise ValueError(
                        f"relation {name!r} has arity {relation.dimension}, schema "
                        f"declares {declared.arity}"
                    )
                # Align the relation's variable names with the schema attributes.
                mapping = dict(zip(relation.variables, declared.attributes))
                relation = relation.rename(mapping)
        else:
            self.schema.add(RelationSchema(name, relation.variables))
        self._instances[name] = relation

    def relation(self, name: str) -> GeneralizedRelation:
        """Return the instance of a relation name."""
        try:
            return self._instances[name]
        except KeyError:
            raise KeyError(f"relation {name!r} has no instance") from None

    def __contains__(self, name: str) -> bool:
        return name in self._instances

    def names(self) -> tuple[str, ...]:
        """Names of relations that have an instance."""
        return tuple(self._instances)

    def __len__(self) -> int:
        return len(self._instances)

    def description_size(self) -> int:
        """Total description size of the stored instances (paper's size measure)."""
        return sum(relation.description_size() for relation in self._instances.values())

    def __repr__(self) -> str:
        return f"ConstraintDatabase({list(self._instances)!r})"
