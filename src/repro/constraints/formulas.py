"""First-order formulas over linear constraints (FO+LIN without schema atoms).

This module provides the abstract syntax tree of first-order formulas over the
structure ``R_lin = <R, +, -, <, 0, 1>``: atomic linear constraints combined
with boolean connectives and quantifiers.  Because ``R_lin`` admits quantifier
elimination, every formula denotes a finitely representable (generalized)
relation; :func:`formula_to_relation` performs the translation by normalising
to DNF and eliminating quantifiers with Fourier--Motzkin.

Formulas that additionally mention database relation symbols (the full query
language FO+LIN over a schema) live in :mod:`repro.queries.ast`; they are
compiled down to the schema-free formulas of this module once the database
instance is known.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.constraints.atoms import AtomicConstraint
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.terms import Number
from repro.constraints.tuples import GeneralizedTuple


class Formula:
    """Base class of FO+LIN formulas (schema-free)."""

    def free_variables(self) -> frozenset[str]:
        """The free variables of the formula."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        """Evaluate a *quantifier-free* formula under a full assignment.

        Quantified formulas raise :class:`ValueError`; use
        :func:`formula_to_relation` followed by a membership test instead.
        """
        raise NotImplementedError

    # Convenience connective constructors --------------------------------
    def and_(self, other: "Formula") -> "Formula":
        """Conjunction with another formula."""
        return And((self, other))

    def or_(self, other: "Formula") -> "Formula":
        """Disjunction with another formula."""
        return Or((self, other))

    def not_(self) -> "Formula":
        """Negation."""
        return Not(self)

    def exists(self, *variables: str) -> "Formula":
        """Existential quantification over the given variables."""
        return Exists(tuple(variables), self)

    def forall(self, *variables: str) -> "Formula":
        """Universal quantification over the given variables."""
        return ForAll(tuple(variables), self)


class Atom(Formula):
    """An atomic linear constraint used as a formula."""

    __slots__ = ("constraint",)

    def __init__(self, constraint: AtomicConstraint) -> None:
        if not isinstance(constraint, AtomicConstraint):
            raise TypeError("Atom wraps an AtomicConstraint")
        self.constraint = constraint

    def free_variables(self) -> frozenset[str]:
        return self.constraint.variables()

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        return self.constraint.satisfied_by(assignment)

    def __repr__(self) -> str:
        return f"Atom({self.constraint})"


class TrueFormula(Formula):
    """The formula satisfied by every assignment."""

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        return True

    def __repr__(self) -> str:
        return "TrueFormula()"


class FalseFormula(Formula):
    """The formula satisfied by no assignment."""

    def free_variables(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        return False

    def __repr__(self) -> str:
        return "FalseFormula()"


class And(Formula):
    """Finite conjunction."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Formula]) -> None:
        self.operands = tuple(operands)
        if not self.operands:
            raise ValueError("And requires at least one operand")

    def free_variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.free_variables()
        return result

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        return all(operand.evaluate(assignment) for operand in self.operands)

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.operands))})"


class Or(Formula):
    """Finite disjunction."""

    __slots__ = ("operands",)

    def __init__(self, operands: Iterable[Formula]) -> None:
        self.operands = tuple(operands)
        if not self.operands:
            raise ValueError("Or requires at least one operand")

    def free_variables(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for operand in self.operands:
            result |= operand.free_variables()
        return result

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        return any(operand.evaluate(assignment) for operand in self.operands)

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.operands))})"


class Not(Formula):
    """Negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Formula) -> None:
        self.operand = operand

    def free_variables(self) -> frozenset[str]:
        return self.operand.free_variables()

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        return not self.operand.evaluate(assignment)

    def __repr__(self) -> str:
        return f"Not({self.operand!r})"


class Exists(Formula):
    """Existential quantification over a tuple of variables."""

    __slots__ = ("variables", "body")

    def __init__(self, variables: Sequence[str], body: Formula) -> None:
        self.variables = tuple(variables)
        if not self.variables:
            raise ValueError("Exists requires at least one variable")
        self.body = body

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - set(self.variables)

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        raise ValueError("quantified formulas cannot be evaluated pointwise; "
                         "use formula_to_relation")

    def __repr__(self) -> str:
        return f"Exists({self.variables}, {self.body!r})"


class ForAll(Formula):
    """Universal quantification over a tuple of variables."""

    __slots__ = ("variables", "body")

    def __init__(self, variables: Sequence[str], body: Formula) -> None:
        self.variables = tuple(variables)
        if not self.variables:
            raise ValueError("ForAll requires at least one variable")
        self.body = body

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - set(self.variables)

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        raise ValueError("quantified formulas cannot be evaluated pointwise; "
                         "use formula_to_relation")

    def __repr__(self) -> str:
        return f"ForAll({self.variables}, {self.body!r})"


# ----------------------------------------------------------------------
# Normal forms and quantifier elimination
# ----------------------------------------------------------------------

def to_negation_normal_form(formula: Formula) -> Formula:
    """Push negations down to atoms (eliminating double negations).

    Universal quantifiers are rewritten as negated existentials first so that
    the result only contains ``Exists``, ``And``, ``Or`` and literals.
    """
    if isinstance(formula, (Atom, TrueFormula, FalseFormula)):
        return formula
    if isinstance(formula, And):
        return And(to_negation_normal_form(op) for op in formula.operands)
    if isinstance(formula, Or):
        return Or(to_negation_normal_form(op) for op in formula.operands)
    if isinstance(formula, Exists):
        return Exists(formula.variables, to_negation_normal_form(formula.body))
    if isinstance(formula, ForAll):
        # forall x. phi  ==  not exists x. not phi
        inner = Not(formula.body)
        rewritten = Not(Exists(formula.variables, inner))
        return to_negation_normal_form(rewritten)
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, Atom):
            return Atom(inner.constraint.negate())
        if isinstance(inner, TrueFormula):
            return FalseFormula()
        if isinstance(inner, FalseFormula):
            return TrueFormula()
        if isinstance(inner, Not):
            return to_negation_normal_form(inner.operand)
        if isinstance(inner, And):
            return Or(to_negation_normal_form(Not(op)) for op in inner.operands)
        if isinstance(inner, Or):
            return And(to_negation_normal_form(Not(op)) for op in inner.operands)
        if isinstance(inner, Exists):
            # not exists x. phi: kept as a dedicated NNF node whose body stays
            # in NNF; quantifier elimination later complements the projection.
            body = to_negation_normal_form(inner.body)
            return _NegatedExists(inner.variables, body)
        if isinstance(inner, ForAll):
            # not forall x. phi == exists x. not phi
            return Exists(inner.variables, to_negation_normal_form(Not(inner.body)))
        if isinstance(inner, _NegatedExists):
            # not (not exists x. phi) == exists x. phi
            return Exists(inner.variables, to_negation_normal_form(inner.body))
        raise TypeError(f"unsupported formula node {inner!r}")
    if isinstance(formula, _NegatedExists):
        return _NegatedExists(formula.variables, to_negation_normal_form(formula.body))
    raise TypeError(f"unsupported formula node {formula!r}")


class _NegatedExists(Formula):
    """Internal NNF node for ``not exists x. phi`` (a universal in disguise).

    Quantifier elimination handles it by eliminating the existential on the
    *negation* of the body's relation and complementing the result.
    """

    __slots__ = ("variables", "body")

    def __init__(self, variables: Sequence[str], body: Formula) -> None:
        self.variables = tuple(variables)
        self.body = body

    def free_variables(self) -> frozenset[str]:
        return self.body.free_variables() - set(self.variables)

    def evaluate(self, assignment: Mapping[str, Number]) -> bool:
        raise ValueError("quantified formulas cannot be evaluated pointwise")

    def __repr__(self) -> str:
        return f"_NegatedExists({self.variables}, {self.body!r})"


def formula_to_relation(
    formula: Formula,
    variables: Sequence[str] | None = None,
) -> GeneralizedRelation:
    """Translate a formula into an explicit DNF generalized relation.

    ``variables`` fixes the ambient variable order of the result; it must
    contain every free variable of the formula and defaults to the sorted free
    variables.  Quantifiers are eliminated bottom-up with Fourier--Motzkin.
    """
    free = formula.free_variables()
    if variables is None:
        order = tuple(sorted(free))
    else:
        order = tuple(variables)
        missing = free - set(order)
        if missing:
            raise ValueError(f"free variables {sorted(missing)} missing from the order")
    nnf = to_negation_normal_form(formula)
    relation = _relation_of(nnf, order)
    return relation.simplify()


def _relation_of(formula: Formula, order: tuple[str, ...]) -> GeneralizedRelation:
    """Recursive quantifier-eliminating translation of an NNF formula."""
    if isinstance(formula, TrueFormula):
        return GeneralizedRelation.universe(order)
    if isinstance(formula, FalseFormula):
        return GeneralizedRelation.empty(order)
    if isinstance(formula, Atom):
        return GeneralizedRelation(
            (GeneralizedTuple((formula.constraint,), order),), order
        )
    if isinstance(formula, And):
        result = _relation_of(formula.operands[0], order)
        for operand in formula.operands[1:]:
            result = result.intersection(_relation_of(operand, order)).with_variables(order)
        return result
    if isinstance(formula, Or):
        result = _relation_of(formula.operands[0], order)
        for operand in formula.operands[1:]:
            result = result.union(_relation_of(operand, order)).with_variables(order)
        return result
    if isinstance(formula, Exists):
        inner_order = _extend(order, formula.variables)
        inner = _relation_of(formula.body, inner_order)
        keep = tuple(name for name in inner_order if name not in set(formula.variables))
        projected = inner.project(keep)
        return projected.with_variables(order)
    if isinstance(formula, _NegatedExists):
        inner_order = _extend(order, formula.variables)
        inner = _relation_of(formula.body, inner_order)
        # not exists x. phi == complement(project(phi)) over the outer order.
        keep = tuple(name for name in inner_order if name not in set(formula.variables))
        projected = inner.project(keep).with_variables(order)
        return projected.complement()
    if isinstance(formula, Not):
        inner = formula.operand
        if isinstance(inner, Atom):
            return GeneralizedRelation(
                (GeneralizedTuple((inner.constraint.negate(),), order),), order
            )
        raise ValueError("formula is not in negation normal form")
    raise TypeError(f"unsupported formula node {formula!r}")


def _extend(order: Sequence[str], extra: Sequence[str]) -> tuple[str, ...]:
    extended = list(order)
    for name in extra:
        if name not in extended:
            extended.append(name)
    return tuple(extended)


def conjunction_of(constraints: Iterable[AtomicConstraint]) -> Formula:
    """Build the conjunction formula of several atomic constraints."""
    atoms = [Atom(constraint) for constraint in constraints]
    if not atoms:
        return TrueFormula()
    if len(atoms) == 1:
        return atoms[0]
    return And(atoms)


def disjunction_of(formulas: Iterable[Formula]) -> Formula:
    """Build the disjunction of several formulas (FalseFormula when empty)."""
    operands = list(formulas)
    if not operands:
        return FalseFormula()
    if len(operands) == 1:
        return operands[0]
    return Or(operands)


__all__ = [
    "Formula",
    "Atom",
    "TrueFormula",
    "FalseFormula",
    "And",
    "Or",
    "Not",
    "Exists",
    "ForAll",
    "to_negation_normal_form",
    "formula_to_relation",
    "conjunction_of",
    "disjunction_of",
]
