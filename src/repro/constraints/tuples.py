"""Generalized tuples: conjunctions of atomic linear constraints.

A *d-ary generalized tuple* (Section 2 of the paper) is a conjunction of
atomic formulas over ``R_lin``.  Geometrically a generalized tuple over linear
constraints is an intersection of halfspaces, hence a convex set.  The class
below is the symbolic counterpart of :class:`repro.geometry.polytope.HPolytope`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.constraints.atoms import AtomicConstraint, Relation, interval_constraints
from repro.constraints.terms import LinearTerm, Number, to_fraction

#: Relation codes of the vectorized membership kernel (see ``float_system``).
_REL_LE, _REL_LT, _REL_EQ, _REL_NE = 0, 1, 2, 3

_RELATION_CODES = {
    Relation.LE: _REL_LE,
    Relation.LT: _REL_LT,
    Relation.EQ: _REL_EQ,
    Relation.NE: _REL_NE,
}


class GeneralizedTuple:
    """A conjunction of :class:`AtomicConstraint` over a fixed variable order.

    The variable order is part of the tuple: it fixes the ambient dimension
    and the meaning of coordinates when the tuple is handed to the geometric
    layer.  Variables mentioned by the constraints must all appear in the
    order; the order may list extra variables (free coordinates).
    Example::

        x, y = variables("x", "y")
        cell = GeneralizedTuple([x >= 0, x <= y, y <= 1], ("x", "y"))
        cell.contains_point((0.25, 0.5))  # True
    """

    __slots__ = ("_constraints", "_variables", "_hash", "_float_system")

    def __init__(
        self,
        constraints: Iterable[AtomicConstraint],
        variables: Sequence[str] | None = None,
    ) -> None:
        atoms = tuple(constraints)
        for atom in atoms:
            if not isinstance(atom, AtomicConstraint):
                raise TypeError("constraints must be AtomicConstraint instances")
        mentioned: set[str] = set()
        for atom in atoms:
            mentioned |= atom.variables()
        if variables is None:
            order = tuple(sorted(mentioned))
        else:
            order = tuple(variables)
            if len(set(order)) != len(order):
                raise ValueError("variable order contains duplicates")
            missing = mentioned - set(order)
            if missing:
                raise ValueError(
                    f"constraints mention variables {sorted(missing)} absent from the order"
                )
        self._constraints = atoms
        self._variables = order
        self._hash: int | None = None
        self._float_system: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def box(
        cls,
        bounds: Mapping[str, tuple[Number, Number]],
        strict: bool = False,
    ) -> "GeneralizedTuple":
        """Build the axis-aligned box ``{lower_v <= v <= upper_v}``."""
        constraints: list[AtomicConstraint] = []
        for name in sorted(bounds):
            lower, upper = bounds[name]
            constraints.extend(interval_constraints(name, lower, upper, strict=strict))
        return cls(constraints, tuple(sorted(bounds)))

    @classmethod
    def universe(cls, variables: Sequence[str]) -> "GeneralizedTuple":
        """The tuple with no constraints (all of ``R^d``)."""
        return cls((), tuple(variables))

    @classmethod
    def empty(cls, variables: Sequence[str]) -> "GeneralizedTuple":
        """A syntactically unsatisfiable tuple."""
        return cls((AtomicConstraint.false(),), tuple(variables))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def constraints(self) -> tuple[AtomicConstraint, ...]:
        """The atomic constraints of the conjunction."""
        return self._constraints

    @property
    def variables(self) -> tuple[str, ...]:
        """The ordered ambient variables of the tuple."""
        return self._variables

    @property
    def dimension(self) -> int:
        """The ambient dimension (number of ordered variables)."""
        return len(self._variables)

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self):
        return iter(self._constraints)

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    def satisfied_by(self, assignment: Mapping[str, Number]) -> bool:
        """Membership test: does the assignment satisfy every constraint?"""
        return all(atom.satisfied_by(assignment) for atom in self._constraints)

    def contains_point(self, point: Sequence[Number]) -> bool:
        """Membership test for a point given in the tuple's variable order."""
        if len(point) != self.dimension:
            raise ValueError(
                f"point has dimension {len(point)}, tuple has dimension {self.dimension}"
            )
        assignment = dict(zip(self._variables, point))
        return self.satisfied_by(assignment)

    def float_system(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The constraints as float arrays ``(C, c0, codes)`` for batch evaluation.

        Row ``i`` encodes the atom ``C[i] . x + c0[i] <rel> 0`` with ``codes[i]``
        one of the relation codes (``<=``, ``<``, ``==``, ``!=``).  Coefficients
        are correctly rounded floats of the exact rationals, so the batch
        kernel agrees with the exact evaluator everywhere except on points
        within one float ulp of a constraint boundary (a measure-zero set that
        uniform random points never hit).  The arrays are cached on the tuple.
        """
        if self._float_system is None:
            rows = np.zeros((len(self._constraints), self.dimension))
            offsets = np.zeros(len(self._constraints))
            codes = np.zeros(len(self._constraints), dtype=np.int8)
            for index, atom in enumerate(self._constraints):
                row, offset = atom.coefficients_for(self._variables)
                rows[index] = [float(value) for value in row]
                offsets[index] = float(offset)
                codes[index] = _RELATION_CODES[atom.relation]
            self._float_system = (rows, offsets, codes)
        return self._float_system

    def warm_float_system(self) -> "GeneralizedTuple":
        """Materialise the cached float system (for shipping to workers).

        The batch executor's process backend pickles tuples into worker
        processes; warming first means the float arrays are computed once in
        the parent and ride along in the pickle instead of being rebuilt from
        the exact rationals in every worker.  Returns ``self`` for chaining.
        """
        self.float_system()
        return self

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Slots-aware pickle state: constraints, order and float cache.

        The cached float system is part of the state on purpose (see
        :meth:`warm_float_system`); the hash memo is process-local and
        recomputed lazily on the other side.
        """
        return {
            "constraints": self._constraints,
            "variables": self._variables,
            "float_system": self._float_system,
        }

    def __setstate__(self, state: dict) -> None:
        self._constraints = state["constraints"]
        self._variables = state["variables"]
        self._float_system = state["float_system"]
        self._hash = None

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership test for a ``(n, d)`` float array of points.

        Returns a boolean array of length ``n``.  One matrix product evaluates
        every atom at every point; see :meth:`float_system` for the (boundary
        only) difference with the exact :meth:`contains_point`.
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(
                f"points must have shape (n, {self.dimension}), got {points.shape}"
            )
        if not self._constraints:
            return np.ones(points.shape[0], dtype=bool)
        rows, offsets, codes = self.float_system()
        # Dispatches to the active repro.kernels backend; bit-identical to
        # the reference per-code comparison expressions by contract.
        from repro import kernels

        return kernels.system_membership_mask(rows, offsets, codes, points)

    def conjoin(self, other: "GeneralizedTuple") -> "GeneralizedTuple":
        """Conjunction of two tuples over the union of their variable orders."""
        order = _merge_orders(self._variables, other._variables)
        return GeneralizedTuple(self._constraints + other._constraints, order)

    def with_constraint(self, constraint: AtomicConstraint) -> "GeneralizedTuple":
        """Return the tuple extended with one more constraint."""
        order = _merge_orders(self._variables, tuple(sorted(constraint.variables())))
        return GeneralizedTuple(self._constraints + (constraint,), order)

    def with_variables(self, variables: Sequence[str]) -> "GeneralizedTuple":
        """Return the same conjunction over a different (superset) variable order."""
        return GeneralizedTuple(self._constraints, variables)

    def rename(self, mapping: Mapping[str, str]) -> "GeneralizedTuple":
        """Rename variables in constraints and in the variable order."""
        renamed_order = tuple(mapping.get(name, name) for name in self._variables)
        if len(set(renamed_order)) != len(renamed_order):
            raise ValueError("renaming collapses distinct variables")
        return GeneralizedTuple(
            (atom.rename(mapping) for atom in self._constraints), renamed_order
        )

    def substitute(
        self, substitution: Mapping[str, "LinearTerm | Number"]
    ) -> "GeneralizedTuple":
        """Substitute variables by terms in every constraint.

        Substituted variables are removed from the variable order; variables
        introduced by the substitution terms are appended (sorted) at the end.
        """
        new_atoms = tuple(atom.substitute(substitution) for atom in self._constraints)
        kept = [name for name in self._variables if name not in substitution]
        introduced: set[str] = set()
        for value in substitution.values():
            if isinstance(value, LinearTerm):
                introduced |= value.variables()
        for name in sorted(introduced):
            if name not in kept:
                kept.append(name)
        return GeneralizedTuple(new_atoms, tuple(kept))

    def relax(self) -> "GeneralizedTuple":
        """Closure: replace strict constraints by their non-strict versions."""
        return GeneralizedTuple(
            (atom.relax() for atom in self._constraints), self._variables
        )

    def simplify(self) -> "GeneralizedTuple":
        """Drop duplicate and trivially true constraints; collapse to empty when
        a trivially false constraint is present."""
        seen: list[AtomicConstraint] = []
        for atom in self._constraints:
            if atom.is_trivially_false():
                return GeneralizedTuple.empty(self._variables)
            if atom.is_trivially_true():
                continue
            if atom not in seen:
                seen.append(atom)
        return GeneralizedTuple(seen, self._variables)

    def is_syntactically_empty(self) -> bool:
        """True when some constraint is trivially false."""
        return any(atom.is_trivially_false() for atom in self._constraints)

    # ------------------------------------------------------------------
    # Linear-algebra form
    # ------------------------------------------------------------------
    def inequality_matrix(self) -> tuple[list[list[Fraction]], list[Fraction], list[bool]]:
        """Return ``(A, b, strict)`` with the system ``A x <= b`` (or ``<`` when strict).

        Equality constraints contribute two opposite inequality rows.  ``!=``
        constraints are ignored: they are volume-null and handled separately
        by the callers that need exact semantics.
        """
        rows: list[list[Fraction]] = []
        offsets: list[Fraction] = []
        strict_flags: list[bool] = []
        for atom in self._constraints:
            row, offset = atom.coefficients_for(self._variables)
            if atom.relation is Relation.LE or atom.relation is Relation.LT:
                rows.append(row)
                offsets.append(-offset)
                strict_flags.append(atom.relation is Relation.LT)
            elif atom.relation is Relation.EQ:
                rows.append(row)
                offsets.append(-offset)
                strict_flags.append(False)
                rows.append([-value for value in row])
                offsets.append(offset)
                strict_flags.append(False)
            elif atom.relation is Relation.NE:
                continue
            else:  # pragma: no cover - canonical form excludes GE/GT
                raise AssertionError(f"non-canonical relation {atom.relation!r}")
        return rows, offsets, strict_flags

    def bounding_box(self) -> dict[str, tuple[Fraction, Fraction]] | None:
        """Syntactic bounding box derived from single-variable constraints.

        Returns a mapping ``variable -> (lower, upper)`` when every variable is
        bounded both ways by constraints that mention only that variable, and
        ``None`` otherwise.  The geometric layer computes tight bounding boxes
        through linear programming; this method is the fast path used by
        workload constructors and the fixed-dimension grid sampler.
        """
        lower: dict[str, Fraction] = {}
        upper: dict[str, Fraction] = {}
        for atom in self._constraints:
            names = atom.variables()
            if len(names) != 1:
                continue
            (name,) = names
            coefficient = atom.term.coefficient(name)
            offset = atom.term.constant_term
            if atom.relation in (Relation.LE, Relation.LT):
                bound = -offset / coefficient
                if coefficient > 0:
                    if name not in upper or bound < upper[name]:
                        upper[name] = bound
                else:
                    if name not in lower or bound > lower[name]:
                        lower[name] = bound
            elif atom.relation is Relation.EQ:
                bound = -offset / coefficient
                if name not in upper or bound < upper[name]:
                    upper[name] = bound
                if name not in lower or bound > lower[name]:
                    lower[name] = bound
        box: dict[str, tuple[Fraction, Fraction]] = {}
        for name in self._variables:
            if name not in lower or name not in upper:
                return None
            box[name] = (lower[name], upper[name])
        return box

    # ------------------------------------------------------------------
    # Structural equality / hashing / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedTuple):
            return NotImplemented
        return (
            self._constraints == other._constraints
            and self._variables == other._variables
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._constraints, self._variables))
        return self._hash

    def __repr__(self) -> str:
        return f"GeneralizedTuple({self!s})"

    def __str__(self) -> str:
        if not self._constraints:
            return "TRUE"
        return " AND ".join(str(atom) for atom in self._constraints)

    def description_size(self) -> int:
        """Number of symbols in the defining formula (paper's size measure)."""
        size = 0
        for atom in self._constraints:
            size += 2 + len(atom.term.coefficients)
        return max(size, 1)


def _merge_orders(left: Sequence[str], right: Sequence[str]) -> tuple[str, ...]:
    """Merge two variable orders keeping the left order and appending new names."""
    merged = list(left)
    for name in right:
        if name not in merged:
            merged.append(name)
    return tuple(merged)


def box_tuple(
    lowers: Sequence[Number], uppers: Sequence[Number], prefix: str = "x"
) -> GeneralizedTuple:
    """Axis-aligned box with generated variable names ``x1 .. xd``."""
    if len(lowers) != len(uppers):
        raise ValueError("lower and upper bound sequences differ in length")
    bounds = {
        f"{prefix}{index + 1}": (to_fraction(low), to_fraction(high))
        for index, (low, high) in enumerate(zip(lowers, uppers))
    }
    return GeneralizedTuple.box(bounds)
