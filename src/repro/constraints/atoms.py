"""Atomic linear constraints.

An :class:`AtomicConstraint` is a comparison ``term <rel> 0`` where ``term`` is
a :class:`~repro.constraints.terms.LinearTerm` and ``<rel>`` is one of
``<=, <, ==, !=``.  Together with conjunction these atoms form *generalized
tuples* (Section 2 of the paper); unions of generalized tuples form
*generalized relations*.

The canonical representation keeps every constraint in the form
``term <rel> 0`` with ``rel`` restricted to ``LE``, ``LT``, ``EQ`` and ``NE``;
``>=`` and ``>`` are normalised by negating the term.  This makes structural
equality, negation and Fourier--Motzkin elimination straightforward.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Mapping

from repro.constraints.terms import LinearTerm, Number, to_fraction


class Relation(enum.Enum):
    """Comparison relations of the linear constraint language."""

    LE = "<="
    LT = "<"
    GE = ">="
    GT = ">"
    EQ = "=="
    NE = "!="

    @property
    def is_strict(self) -> bool:
        """True for strict inequalities (``<`` and ``>``)."""
        return self in (Relation.LT, Relation.GT)

    @property
    def is_equality(self) -> bool:
        """True for ``==`` and ``!=``."""
        return self in (Relation.EQ, Relation.NE)


_NEGATIONS = {
    Relation.LE: Relation.GT,
    Relation.LT: Relation.GE,
    Relation.GE: Relation.LT,
    Relation.GT: Relation.LE,
    Relation.EQ: Relation.NE,
    Relation.NE: Relation.EQ,
}


class AtomicConstraint:
    """A single linear constraint in canonical form ``term <rel> 0``.

    Use :meth:`compare` (or the comparison operators on
    :class:`~repro.constraints.terms.LinearTerm`) to build constraints;
    the constructor expects the canonical ``term <rel> 0`` shape directly.
    """

    __slots__ = ("_term", "_relation", "_hash")

    def __init__(self, term: LinearTerm, relation: Relation) -> None:
        if not isinstance(term, LinearTerm):
            raise TypeError("term must be a LinearTerm")
        if not isinstance(relation, Relation):
            raise TypeError("relation must be a Relation")
        if relation in (Relation.GE, Relation.GT):
            # Canonicalise: t >= 0  <=>  -t <= 0, and t > 0 <=> -t < 0.
            term = -term
            relation = Relation.LE if relation is Relation.GE else Relation.LT
        self._term = term
        self._relation = relation
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def compare(
        cls, left: LinearTerm, relation: Relation, right: LinearTerm
    ) -> "AtomicConstraint":
        """Build the constraint ``left <rel> right`` in canonical form."""
        return cls(left - right, relation)

    @classmethod
    def true(cls) -> "AtomicConstraint":
        """A constraint satisfied by every point (``0 <= 0``)."""
        return cls(LinearTerm.zero(), Relation.LE)

    @classmethod
    def false(cls) -> "AtomicConstraint":
        """A constraint satisfied by no point (``1 <= 0``)."""
        return cls(LinearTerm.constant(1), Relation.LE)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def term(self) -> LinearTerm:
        """The canonical left-hand side (compared against zero)."""
        return self._term

    @property
    def relation(self) -> Relation:
        """The canonical relation (one of ``LE``, ``LT``, ``EQ``, ``NE``)."""
        return self._relation

    def variables(self) -> frozenset[str]:
        """The variables mentioned by the constraint."""
        return self._term.variables()

    def is_trivially_true(self) -> bool:
        """True when the constraint holds for every assignment."""
        if not self._term.is_constant():
            return False
        value = self._term.constant_term
        return _evaluate_relation(value, self._relation)

    def is_trivially_false(self) -> bool:
        """True when the constraint holds for no assignment."""
        if not self._term.is_constant():
            return False
        value = self._term.constant_term
        return not _evaluate_relation(value, self._relation)

    # ------------------------------------------------------------------
    # Logic
    # ------------------------------------------------------------------
    def negate(self) -> "AtomicConstraint":
        """Return the complementary constraint (¬(t <= 0) becomes t > 0, etc.)."""
        return AtomicConstraint(self._term, _NEGATIONS[self._relation])

    def satisfied_by(self, assignment: Mapping[str, Number]) -> bool:
        """Evaluate the constraint for a full variable assignment."""
        value = self._term.evaluate(assignment)
        return _evaluate_relation(value, self._relation)

    def substitute(self, substitution: Mapping[str, "LinearTerm | Number"]) -> "AtomicConstraint":
        """Substitute variables by terms/numbers in the constraint."""
        return AtomicConstraint(self._term.substitute(substitution), self._relation)

    def rename(self, mapping: Mapping[str, str]) -> "AtomicConstraint":
        """Rename variables according to ``mapping``."""
        return AtomicConstraint(self._term.rename(mapping), self._relation)

    def relax(self) -> "AtomicConstraint":
        """Return the non-strict (closed) version of the constraint.

        Strict inequalities become non-strict and ``!=`` becomes the trivial
        constraint.  The relaxed constraint defines the topological closure of
        the original constraint set, which has the same d-dimensional volume —
        the property the samplers and estimators rely on.
        """
        if self._relation is Relation.LT:
            return AtomicConstraint(self._term, Relation.LE)
        if self._relation is Relation.NE:
            return AtomicConstraint.true()
        return self

    # ------------------------------------------------------------------
    # Geometry bridge
    # ------------------------------------------------------------------
    def coefficients_for(self, variable_order: tuple[str, ...]) -> tuple[list[Fraction], Fraction]:
        """Return ``(row, offset)`` such that the constraint is ``row . x + offset <rel> 0``.

        ``row`` lists the coefficient of each variable in ``variable_order``.
        Variables of the constraint missing from ``variable_order`` raise
        :class:`ValueError` because the geometric interpretation would be
        ambiguous.
        """
        missing = self.variables() - set(variable_order)
        if missing:
            raise ValueError(
                f"constraint mentions variables {sorted(missing)} absent from the order"
            )
        row = [self._term.coefficient(name) for name in variable_order]
        return row, self._term.constant_term

    # ------------------------------------------------------------------
    # Structural equality / hashing / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AtomicConstraint):
            return NotImplemented
        return self._term == other._term and self._relation == other._relation

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._term, self._relation))
        return self._hash

    def __repr__(self) -> str:
        return f"AtomicConstraint({self._term!s} {self._relation.value} 0)"

    def __str__(self) -> str:
        return f"{self._term!s} {self._relation.value} 0"


def _evaluate_relation(value: Fraction, relation: Relation) -> bool:
    """Evaluate ``value <rel> 0`` for a concrete rational value."""
    if relation is Relation.LE:
        return value <= 0
    if relation is Relation.LT:
        return value < 0
    if relation is Relation.EQ:
        return value == 0
    if relation is Relation.NE:
        return value != 0
    if relation is Relation.GE:
        return value >= 0
    if relation is Relation.GT:
        return value > 0
    raise AssertionError(f"unhandled relation {relation!r}")


def interval_constraints(name: str, lower: Number, upper: Number, strict: bool = False) -> tuple[AtomicConstraint, AtomicConstraint]:
    """Return the pair of constraints ``lower <= name <= upper`` (or strict).

    A small convenience used pervasively by the workloads (boxes are products
    of intervals) and by the SAT encoding of Section 4.1.3.
    """
    var = LinearTerm.variable(name)
    low = to_fraction(lower)
    high = to_fraction(upper)
    if low > high:
        raise ValueError(f"empty interval for {name}: [{low}, {high}]")
    relation = Relation.LT if strict else Relation.LE
    lower_constraint = AtomicConstraint.compare(LinearTerm.constant(low), relation, var)
    upper_constraint = AtomicConstraint.compare(var, relation, LinearTerm.constant(high))
    return lower_constraint, upper_constraint
