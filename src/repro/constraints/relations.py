"""Generalized relations: finite unions of generalized tuples (DNF form).

A *finitely representable relation* over ``R_lin`` is definable by a
quantifier-free formula; since the structure admits quantifier elimination and
every quantifier-free formula has a disjunctive normal form, each generalized
relation is a finite union of generalized tuples (Section 2 of the paper).

:class:`GeneralizedRelation` is the symbolic object the whole library revolves
around: the samplers, volume estimators and composition operators of
:mod:`repro.core` consume it, the query layer of :mod:`repro.queries` produces
it, and the exact baselines of :mod:`repro.volume` integrate it.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.constraints.terms import Number
from repro.constraints.tuples import GeneralizedTuple


class GeneralizedRelation:
    """A finite union of :class:`GeneralizedTuple` over a common variable order.

    The disjuncts of a relation all share the relation's ambient variable
    order, so a relation is a subset of ``R^d`` with ``d = len(variables)``.
    """

    __slots__ = ("_disjuncts", "_variables", "_hash")

    def __init__(
        self,
        disjuncts: Iterable[GeneralizedTuple],
        variables: Sequence[str] | None = None,
    ) -> None:
        tuples = list(disjuncts)
        for disjunct in tuples:
            if not isinstance(disjunct, GeneralizedTuple):
                raise TypeError("disjuncts must be GeneralizedTuple instances")
        if variables is None:
            order: list[str] = []
            for disjunct in tuples:
                for name in disjunct.variables:
                    if name not in order:
                        order.append(name)
            variable_order = tuple(order)
        else:
            variable_order = tuple(variables)
            if len(set(variable_order)) != len(variable_order):
                raise ValueError("variable order contains duplicates")
        aligned = tuple(
            disjunct
            if disjunct.variables == variable_order
            else disjunct.with_variables(
                _extend_order(variable_order, disjunct.variables)
            )
            for disjunct in tuples
        )
        for disjunct in aligned:
            extra = set(disjunct.variables) - set(variable_order)
            if extra:
                raise ValueError(
                    f"disjunct mentions variables {sorted(extra)} outside the relation order"
                )
        self._disjuncts = tuple(
            disjunct.with_variables(variable_order) for disjunct in aligned
        )
        self._variables = variable_order
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_tuple(cls, disjunct: GeneralizedTuple) -> "GeneralizedRelation":
        """Wrap a single generalized tuple as a relation."""
        return cls((disjunct,), disjunct.variables)

    @classmethod
    def empty(cls, variables: Sequence[str]) -> "GeneralizedRelation":
        """The empty relation over the given variables."""
        return cls((), variables)

    @classmethod
    def universe(cls, variables: Sequence[str]) -> "GeneralizedRelation":
        """The full space ``R^d`` over the given variables."""
        return cls((GeneralizedTuple.universe(variables),), variables)

    @classmethod
    def box(
        cls, bounds: Mapping[str, tuple[Number, Number]], strict: bool = False
    ) -> "GeneralizedRelation":
        """Axis-aligned box as a one-disjunct relation."""
        return cls.from_tuple(GeneralizedTuple.box(bounds, strict=strict))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def disjuncts(self) -> tuple[GeneralizedTuple, ...]:
        """The generalized tuples whose union is the relation."""
        return self._disjuncts

    @property
    def variables(self) -> tuple[str, ...]:
        """The ordered ambient variables."""
        return self._variables

    @property
    def dimension(self) -> int:
        """The ambient dimension."""
        return len(self._variables)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __iter__(self):
        return iter(self._disjuncts)

    def is_syntactically_empty(self) -> bool:
        """True when the relation has no disjunct or only trivially empty ones."""
        return all(d.is_syntactically_empty() for d in self._disjuncts) if self._disjuncts else True

    def warm_float_systems(self) -> "GeneralizedRelation":
        """Materialise every disjunct's cached float system (for workers).

        The batch executor's process backend pickles the database's relations
        into worker processes once per batch; warming first ships the float
        constraint systems ready to use instead of rebuilding them from the
        exact rationals in every worker.  Returns ``self`` for chaining.
        """
        for disjunct in self._disjuncts:
            disjunct.warm_float_system()
        return self

    # ------------------------------------------------------------------
    # Pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Slots-aware pickle state (the hash memo is recomputed lazily)."""
        return {"disjuncts": self._disjuncts, "variables": self._variables}

    def __setstate__(self, state: dict) -> None:
        self._disjuncts = state["disjuncts"]
        self._variables = state["variables"]
        self._hash = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def satisfied_by(self, assignment: Mapping[str, Number]) -> bool:
        """Does the assignment satisfy at least one disjunct?"""
        return any(disjunct.satisfied_by(assignment) for disjunct in self._disjuncts)

    def contains_point(self, point: Sequence[Number]) -> bool:
        """Membership test for a point in the relation's variable order."""
        if len(point) != self.dimension:
            raise ValueError(
                f"point has dimension {len(point)}, relation has dimension {self.dimension}"
            )
        assignment = dict(zip(self._variables, point))
        return self.satisfied_by(assignment)

    def membership_index(self, point: Sequence[Number]) -> int | None:
        """Return the smallest disjunct index containing the point (or ``None``).

        This is the ``j(x)`` of the union generator (Theorem 4.1): the
        acceptance step outputs a point only when it was drawn from the
        first disjunct that contains it.
        """
        assignment = dict(zip(self._variables, point))
        for index, disjunct in enumerate(self._disjuncts):
            if disjunct.satisfied_by(assignment):
                return index
        return None

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership for a ``(n, d)`` float array (boolean array out).

        Each disjunct is evaluated as one matrix product
        (:meth:`GeneralizedTuple.contains_points`); points already accepted by
        an earlier disjunct are excluded from later evaluations, so a union
        costs one pass over the not-yet-matched points per disjunct.
        """
        return self.membership_indices(points) >= 0

    def membership_indices(self, points: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`membership_index`: smallest containing disjunct per point.

        Returns an int array of length ``n`` holding the first disjunct index
        containing each point, or ``-1`` for points outside the relation —
        the batched ``j(x)`` of the union generator (Theorem 4.1).
        """
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != self.dimension:
            raise ValueError(
                f"points must have shape (n, {self.dimension}), got {points.shape}"
            )
        indices = np.full(points.shape[0], -1, dtype=np.int64)
        remaining = np.arange(points.shape[0])
        for index, disjunct in enumerate(self._disjuncts):
            if remaining.size == 0:
                break
            hits = disjunct.contains_points(points[remaining])
            indices[remaining[hits]] = index
            remaining = remaining[~hits]
        return indices

    # ------------------------------------------------------------------
    # Boolean operations (symbolic, DNF preserving)
    # ------------------------------------------------------------------
    def union(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """Union of two relations (concatenation of disjunct lists)."""
        order = _merge_orders(self._variables, other._variables)
        return GeneralizedRelation(self._disjuncts + other._disjuncts, order)

    def intersection(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """Intersection by distributing conjunction over the disjuncts."""
        order = _merge_orders(self._variables, other._variables)
        products = [
            left.conjoin(right)
            for left in self._disjuncts
            for right in other._disjuncts
        ]
        return GeneralizedRelation(products, order)

    def complement(self) -> "GeneralizedRelation":
        """Complement within ``R^d``, returned in DNF.

        The complement of a DNF is a CNF of negated atoms; distributing it
        back into DNF may grow exponentially in the number of disjuncts, which
        mirrors the symbolic costs the paper's sampling approach avoids.
        """
        if not self._disjuncts:
            return GeneralizedRelation.universe(self._variables)
        # Start from the single empty conjunction and refine per disjunct.
        current: list[GeneralizedTuple] = [GeneralizedTuple.universe(self._variables)]
        for disjunct in self._disjuncts:
            next_round: list[GeneralizedTuple] = []
            negated_atoms = [atom.negate() for atom in disjunct.constraints]
            if not negated_atoms:
                # Complement of the universe is empty.
                return GeneralizedRelation.empty(self._variables)
            for partial in current:
                for atom in negated_atoms:
                    candidate = partial.with_constraint(atom).with_variables(self._variables)
                    candidate = candidate.simplify()
                    if not candidate.is_syntactically_empty():
                        next_round.append(candidate)
            current = next_round
            if not current:
                return GeneralizedRelation.empty(self._variables)
        return GeneralizedRelation(current, self._variables)

    def difference(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """Set difference ``self \\ other`` in DNF."""
        other_aligned = GeneralizedRelation(
            other._disjuncts, _merge_orders(self._variables, other._variables)
        )
        return self.intersection(other_aligned.complement())

    def project(self, keep: Sequence[str]) -> "GeneralizedRelation":
        """Exact projection onto the variables in ``keep`` (Fourier--Motzkin).

        This is the symbolic baseline the paper's Proposition 4.3 compares
        against; its cost is doubly exponential in the number of eliminated
        variables in the worst case.
        """
        from repro.constraints.fourier_motzkin import eliminate_variables

        keep_order = tuple(keep)
        unknown = set(keep_order) - set(self._variables)
        if unknown:
            raise ValueError(f"cannot keep unknown variables {sorted(unknown)}")
        eliminate = [name for name in self._variables if name not in keep_order]
        projected: list[GeneralizedTuple] = []
        for disjunct in self._disjuncts:
            reduced = eliminate_variables(disjunct, eliminate)
            if reduced is not None:
                projected.append(reduced.with_variables(keep_order))
        return GeneralizedRelation(projected, keep_order)

    def rename(self, mapping: Mapping[str, str]) -> "GeneralizedRelation":
        """Rename variables across all disjuncts and the variable order."""
        renamed_order = tuple(mapping.get(name, name) for name in self._variables)
        if len(set(renamed_order)) != len(renamed_order):
            raise ValueError("renaming collapses distinct variables")
        return GeneralizedRelation(
            (disjunct.rename(mapping) for disjunct in self._disjuncts), renamed_order
        )

    def product(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """Cartesian product: variable sets must be disjoint."""
        overlap = set(self._variables) & set(other._variables)
        if overlap:
            raise ValueError(f"product requires disjoint variables, shared: {sorted(overlap)}")
        order = self._variables + other._variables
        products = [
            left.conjoin(right)
            for left in self._disjuncts
            for right in other._disjuncts
        ]
        if not self._disjuncts or not other._disjuncts:
            return GeneralizedRelation.empty(order)
        return GeneralizedRelation(products, order)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def simplify(self) -> "GeneralizedRelation":
        """Simplify every disjunct and drop syntactically empty ones."""
        kept: list[GeneralizedTuple] = []
        for disjunct in self._disjuncts:
            simplified = disjunct.simplify()
            if not simplified.is_syntactically_empty() and simplified not in kept:
                kept.append(simplified)
        return GeneralizedRelation(kept, self._variables)

    def relax(self) -> "GeneralizedRelation":
        """Replace strict constraints by non-strict ones in every disjunct."""
        return GeneralizedRelation(
            (disjunct.relax() for disjunct in self._disjuncts), self._variables
        )

    def with_variables(self, variables: Sequence[str]) -> "GeneralizedRelation":
        """Re-embed the relation in a (superset) variable order."""
        return GeneralizedRelation(self._disjuncts, variables)

    def bounding_box(self) -> dict[str, tuple[Fraction, Fraction]] | None:
        """Union of the syntactic bounding boxes of the disjuncts (or ``None``)."""
        box: dict[str, tuple[Fraction, Fraction]] | None = None
        for disjunct in self._disjuncts:
            disjunct_box = disjunct.bounding_box()
            if disjunct_box is None:
                return None
            if box is None:
                box = dict(disjunct_box)
            else:
                for name, (low, high) in disjunct_box.items():
                    current_low, current_high = box[name]
                    box[name] = (min(current_low, low), max(current_high, high))
        return box

    def description_size(self) -> int:
        """Number of symbols of the defining formula (paper's size measure)."""
        return max(sum(d.description_size() for d in self._disjuncts), 1)

    # ------------------------------------------------------------------
    # Structural equality / hashing / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return (
            self._disjuncts == other._disjuncts and self._variables == other._variables
        )

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash((self._disjuncts, self._variables))
        return self._hash

    def __repr__(self) -> str:
        return f"GeneralizedRelation({len(self._disjuncts)} disjuncts over {self._variables})"

    def __str__(self) -> str:
        if not self._disjuncts:
            return "FALSE"
        return " OR ".join(f"({disjunct})" for disjunct in self._disjuncts)


def _merge_orders(left: Sequence[str], right: Sequence[str]) -> tuple[str, ...]:
    merged = list(left)
    for name in right:
        if name not in merged:
            merged.append(name)
    return tuple(merged)


def _extend_order(order: Sequence[str], subset: Sequence[str]) -> tuple[str, ...]:
    extended = list(order)
    for name in subset:
        if name not in extended:
            extended.append(name)
    return tuple(extended)
