"""Linear constraint database substrate.

This package implements the symbolic side of the constraint database model of
Kanellakis, Kuper and Revesz used by the paper: linear terms, atomic
constraints, generalized tuples (conjunctions), generalized relations (DNF),
first-order formulas with quantifier elimination (Fourier--Motzkin), a small
textual language, and database schemas/instances with a symbolic relational
algebra.
"""

from repro.constraints.algebra import (
    difference,
    intersection,
    natural_join,
    product,
    project,
    rename,
    select,
    semijoin,
    union,
)
from repro.constraints.atoms import AtomicConstraint, Relation, interval_constraints
from repro.constraints.database import ConstraintDatabase, DatabaseSchema, RelationSchema
from repro.constraints.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Not,
    Or,
    TrueFormula,
    conjunction_of,
    disjunction_of,
    formula_to_relation,
    to_negation_normal_form,
)
from repro.constraints.fourier_motzkin import (
    EliminationBudgetExceeded,
    eliminate_variable,
    eliminate_variables,
    is_satisfiable,
    project_tuple,
)
from repro.constraints.parser import ParseError, parse_formula, parse_relation, parse_term
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.terms import LinearTerm, to_fraction, variables
from repro.constraints.tuples import GeneralizedTuple, box_tuple

__all__ = [
    "AtomicConstraint",
    "Relation",
    "interval_constraints",
    "ConstraintDatabase",
    "DatabaseSchema",
    "RelationSchema",
    "Formula",
    "Atom",
    "And",
    "Or",
    "Not",
    "Exists",
    "ForAll",
    "TrueFormula",
    "FalseFormula",
    "conjunction_of",
    "disjunction_of",
    "formula_to_relation",
    "to_negation_normal_form",
    "EliminationBudgetExceeded",
    "eliminate_variable",
    "eliminate_variables",
    "is_satisfiable",
    "project_tuple",
    "ParseError",
    "parse_formula",
    "parse_relation",
    "parse_term",
    "GeneralizedRelation",
    "GeneralizedTuple",
    "box_tuple",
    "LinearTerm",
    "variables",
    "to_fraction",
    "select",
    "project",
    "rename",
    "union",
    "intersection",
    "difference",
    "product",
    "natural_join",
    "semijoin",
]
