"""A small textual language for FO+LIN formulas.

The parser turns strings such as ::

    "0 <= x <= 1 and 0 <= y <= 1"
    "exists z. (x + z <= 1 and z >= 0) or not (y > 2)"
    "2*x - 3*y + 1 < 0"

into :class:`~repro.constraints.formulas.Formula` objects, and
:func:`parse_relation` further converts quantifier-free (or quantified)
formulas into explicit :class:`~repro.constraints.relations.GeneralizedRelation`
objects in DNF.

Grammar (informal)::

    formula    := quantified
    quantified := ("exists" | "forall") name+ "." quantified | disjunction
    disjunction:= conjunction ("or" conjunction)*
    conjunction:= negation ("and" negation)*
    negation   := "not" negation | "(" formula ")" | comparison
    comparison := sum (relop sum)+            # chains allowed: a <= b <= c
    sum        := product (("+"|"-") product)*
    product    := NUMBER "*" name | name | NUMBER | "-" product | "(" sum ")"

Keywords are case-insensitive; ``&``/``|``/``!`` are accepted as synonyms of
``and``/``or``/``not``, and ``=`` as a synonym of ``==``.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Sequence

from repro.constraints.atoms import AtomicConstraint, Relation
from repro.constraints.formulas import (
    And,
    Atom,
    Exists,
    FalseFormula,
    ForAll,
    Formula,
    Not,
    Or,
    TrueFormula,
    formula_to_relation,
)
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.terms import LinearTerm


class ParseError(ValueError):
    """Raised when the input text is not a well-formed formula."""


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<number>\d+(?:\.\d+)?|\.\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|==|!=|=|<|>|\+|-|\*|/|\(|\)|\.|,|&|\||!)
  | (?P<space>\s+)
  | (?P<error>.)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "exists", "forall", "true", "false"}

_RELATION_TOKENS = {
    "<=": Relation.LE,
    "<": Relation.LT,
    ">=": Relation.GE,
    ">": Relation.GT,
    "==": Relation.EQ,
    "=": Relation.EQ,
    "!=": Relation.NE,
}


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int) -> None:
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"_Token({self.kind}, {self.value!r}, {self.position})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    for match in _TOKEN_PATTERN.finditer(text):
        kind = match.lastgroup
        value = match.group()
        if kind == "space":
            continue
        if kind == "error":
            raise ParseError(f"unexpected character {value!r} at position {match.start()}")
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(_Token("keyword", value.lower(), match.start()))
        else:
            tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: list[_Token], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    # Token helpers -------------------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _advance(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> _Token:
        token = self._advance()
        if token.kind != kind or (value is not None and token.value != value):
            expected = value if value is not None else kind
            raise ParseError(
                f"expected {expected!r} at position {token.position}, found {token.value!r}"
            )
        return token

    def _match_keyword(self, *keywords: str) -> str | None:
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value in keywords:
            self._advance()
            return token.value
        return None

    def _match_op(self, *ops: str) -> str | None:
        token = self._peek()
        if token is not None and token.kind == "op" and token.value in ops:
            self._advance()
            return token.value
        return None

    # Grammar -------------------------------------------------------------
    def parse_formula(self) -> Formula:
        formula = self._quantified()
        leftover = self._peek()
        if leftover is not None:
            raise ParseError(
                f"unexpected trailing input {leftover.value!r} at position {leftover.position}"
            )
        return formula

    def _quantified(self) -> Formula:
        keyword = self._match_keyword("exists", "forall")
        if keyword is None:
            return self._disjunction()
        names: list[str] = []
        while True:
            token = self._peek()
            if token is not None and token.kind == "name":
                names.append(self._advance().value)
                self._match_op(",")
            else:
                break
        if not names:
            raise ParseError(f"{keyword} requires at least one variable")
        self._expect("op", ".")
        body = self._quantified()
        if keyword == "exists":
            return Exists(tuple(names), body)
        return ForAll(tuple(names), body)

    def _disjunction(self) -> Formula:
        operands = [self._conjunction()]
        while self._match_keyword("or") or self._match_op("|"):
            operands.append(self._conjunction())
        if len(operands) == 1:
            return operands[0]
        return Or(operands)

    def _conjunction(self) -> Formula:
        operands = [self._negation()]
        while self._match_keyword("and") or self._match_op("&"):
            operands.append(self._negation())
        if len(operands) == 1:
            return operands[0]
        return And(operands)

    def _negation(self) -> Formula:
        if self._match_keyword("not") or self._match_op("!"):
            return Not(self._negation())
        if self._match_keyword("true"):
            return TrueFormula()
        if self._match_keyword("false"):
            return FalseFormula()
        token = self._peek()
        if token is not None and token.kind == "keyword" and token.value in ("exists", "forall"):
            return self._quantified()
        if token is not None and token.kind == "op" and token.value == "(":
            # Could be a parenthesised formula or a parenthesised arithmetic
            # expression starting a comparison; try the formula first.
            saved = self._index
            self._advance()
            try:
                inner = self._quantified()
                self._expect("op", ")")
            except ParseError:
                self._index = saved
                return self._comparison()
            next_token = self._peek()
            if next_token is not None and next_token.kind == "op" and next_token.value in _RELATION_TOKENS:
                # It was actually an arithmetic group, e.g. "(x + y) <= 1".
                self._index = saved
                return self._comparison()
            return inner
        return self._comparison()

    def _comparison(self) -> Formula:
        terms = [self._sum()]
        relations: list[Relation] = []
        while True:
            token = self._peek()
            if token is not None and token.kind == "op" and token.value in _RELATION_TOKENS:
                self._advance()
                relations.append(_RELATION_TOKENS[token.value])
                terms.append(self._sum())
            else:
                break
        if not relations:
            raise ParseError("expected a comparison operator")
        atoms = [
            Atom(AtomicConstraint.compare(terms[index], relation, terms[index + 1]))
            for index, relation in enumerate(relations)
        ]
        if len(atoms) == 1:
            return atoms[0]
        return And(atoms)

    def _sum(self) -> LinearTerm:
        term = self._product()
        while True:
            operator = self._match_op("+", "-")
            if operator is None:
                return term
            right = self._product()
            term = term + right if operator == "+" else term - right

    def _product(self) -> LinearTerm:
        if self._match_op("-"):
            return -self._product()
        if self._match_op("+"):
            return self._product()
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in arithmetic expression")
        if token.kind == "op" and token.value == "(":
            self._advance()
            inner = self._sum()
            self._expect("op", ")")
            return self._scaled(inner)
        if token.kind == "number":
            self._advance()
            value = Fraction(token.value) if "." not in token.value else Fraction(str(token.value))
            constant = LinearTerm.constant(value)
            if self._match_op("*"):
                factor = self._product()
                if factor.is_constant():
                    return LinearTerm.constant(factor.constant_term * value)
                return factor * value
            return self._scaled(constant)
        if token.kind == "name":
            self._advance()
            return self._scaled(LinearTerm.variable(token.value))
        raise ParseError(
            f"unexpected token {token.value!r} at position {token.position} in expression"
        )

    def _scaled(self, term: LinearTerm) -> LinearTerm:
        """Handle postfix scaling and division: ``x * 2`` and ``x / 2``."""
        while True:
            if self._match_op("*"):
                factor = self._product()
                if factor.is_constant():
                    term = term * factor.constant_term
                elif term.is_constant():
                    term = factor * term.constant_term
                else:
                    raise ParseError("products of two variables are not linear")
            elif self._match_op("/"):
                divisor = self._product()
                if not divisor.is_constant():
                    raise ParseError("division by a variable is not linear")
                term = term / divisor.constant_term
            else:
                return term


def parse_formula(text: str) -> Formula:
    """Parse a textual FO+LIN formula into an AST.

    The surface syntax covers linear (in)equalities over rational constants
    (``1/2``), chained comparisons (``0 <= x <= 1``), the connectives
    ``and`` / ``or`` / ``not`` and quantifiers ``exists`` / ``forall``.
    Example::

        formula = parse_formula("exists y (0 <= y <= 1 and x + y <= 3/2)")
    """
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty formula")
    return _Parser(tokens, text).parse_formula()


def parse_relation(text: str, variables: Sequence[str] | None = None) -> GeneralizedRelation:
    """Parse a formula and convert it to a DNF generalized relation.

    ``variables`` optionally fixes the ambient variable order (it must cover
    the free variables of the formula).
    """
    return formula_to_relation(parse_formula(text), variables)


def parse_term(text: str) -> LinearTerm:
    """Parse an arithmetic expression into a linear term."""
    tokens = _tokenize(text)
    if not tokens:
        raise ParseError("empty term")
    parser = _Parser(tokens, text)
    term = parser._sum()
    leftover = parser._peek()
    if leftover is not None:
        raise ParseError(
            f"unexpected trailing input {leftover.value!r} at position {leftover.position}"
        )
    return term
