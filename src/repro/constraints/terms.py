"""Linear terms over the reals.

A :class:`LinearTerm` represents an affine expression

    c_1 * x_1 + c_2 * x_2 + ... + c_n * x_n + b

over named real variables, with exact rational coefficients.  Linear terms are
the building blocks of atomic constraints in the structure
``R_lin = <R, +, -, <, 0, 1>`` used by the paper (Section 2).

All arithmetic is exact: coefficients are stored as :class:`fractions.Fraction`
so that quantifier elimination (Fourier--Motzkin) and emptiness tests do not
suffer from floating point drift.  Conversion to floating point only happens
at the geometry boundary (see :mod:`repro.geometry`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Union

Number = Union[int, float, Fraction]


def to_fraction(value: Number) -> Fraction:
    """Convert a number to an exact :class:`Fraction`.

    Integers and fractions convert exactly.  Floats are converted through
    their decimal representation (``Fraction(str(value))``) so that a literal
    such as ``0.1`` becomes ``1/10`` rather than the exact binary expansion,
    which matches the intent of textual constraint definitions.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError(f"cannot represent non-finite value {value!r} exactly")
        return Fraction(str(value))
    raise TypeError(f"unsupported numeric type: {type(value).__name__}")


class LinearTerm:
    """An affine expression ``sum(coeff[v] * v) + constant`` over named variables.

    Instances are immutable and hashable.  The public API mirrors ordinary
    arithmetic so that terms can be combined naturally::

        x = LinearTerm.variable("x")
        y = LinearTerm.variable("y")
        t = 2 * x - y + 1
    """

    __slots__ = ("_coefficients", "_constant", "_hash")

    def __init__(
        self,
        coefficients: Mapping[str, Number] | None = None,
        constant: Number = 0,
    ) -> None:
        cleaned: dict[str, Fraction] = {}
        if coefficients:
            for name, value in coefficients.items():
                if not isinstance(name, str) or not name:
                    raise TypeError("variable names must be non-empty strings")
                frac = to_fraction(value)
                if frac != 0:
                    cleaned[name] = frac
        self._coefficients = cleaned
        self._constant = to_fraction(constant)
        self._hash: int | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def variable(cls, name: str) -> "LinearTerm":
        """Return the term consisting of a single variable with coefficient 1."""
        return cls({name: 1}, 0)

    @classmethod
    def constant(cls, value: Number) -> "LinearTerm":
        """Return a constant term."""
        return cls({}, value)

    @classmethod
    def zero(cls) -> "LinearTerm":
        """Return the zero term."""
        return cls({}, 0)

    @classmethod
    def from_coefficients(
        cls, variables: Iterable[str], coefficients: Iterable[Number], constant: Number = 0
    ) -> "LinearTerm":
        """Build a term from parallel sequences of variable names and coefficients."""
        names = list(variables)
        coeffs = list(coefficients)
        if len(names) != len(coeffs):
            raise ValueError("variables and coefficients must have the same length")
        return cls(dict(zip(names, coeffs)), constant)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def coefficients(self) -> Mapping[str, Fraction]:
        """Mapping from variable name to its (non-zero) coefficient."""
        return dict(self._coefficients)

    @property
    def constant_term(self) -> Fraction:
        """The constant offset of the term."""
        return self._constant

    def coefficient(self, name: str) -> Fraction:
        """Return the coefficient of ``name`` (zero when the variable is absent)."""
        return self._coefficients.get(name, Fraction(0))

    def variables(self) -> frozenset[str]:
        """The set of variables with a non-zero coefficient."""
        return frozenset(self._coefficients)

    def is_constant(self) -> bool:
        """True when the term mentions no variable."""
        return not self._coefficients

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "LinearTerm | Number") -> "LinearTerm":
        other_term = _as_term(other)
        if other_term is NotImplemented:
            return NotImplemented
        merged = dict(self._coefficients)
        for name, value in other_term._coefficients.items():
            merged[name] = merged.get(name, Fraction(0)) + value
        return LinearTerm(merged, self._constant + other_term._constant)

    def __radd__(self, other: "LinearTerm | Number") -> "LinearTerm":
        return self.__add__(other)

    def __neg__(self) -> "LinearTerm":
        return LinearTerm(
            {name: -value for name, value in self._coefficients.items()},
            -self._constant,
        )

    def __sub__(self, other: "LinearTerm | Number") -> "LinearTerm":
        other_term = _as_term(other)
        if other_term is NotImplemented:
            return NotImplemented
        return self + (-other_term)

    def __rsub__(self, other: "LinearTerm | Number") -> "LinearTerm":
        other_term = _as_term(other)
        if other_term is NotImplemented:
            return NotImplemented
        return other_term + (-self)

    def __mul__(self, scalar: Number) -> "LinearTerm":
        if isinstance(scalar, LinearTerm):
            raise TypeError("linear terms cannot be multiplied together")
        factor = to_fraction(scalar)
        return LinearTerm(
            {name: value * factor for name, value in self._coefficients.items()},
            self._constant * factor,
        )

    def __rmul__(self, scalar: Number) -> "LinearTerm":
        return self.__mul__(scalar)

    def __truediv__(self, scalar: Number) -> "LinearTerm":
        factor = to_fraction(scalar)
        if factor == 0:
            raise ZeroDivisionError("division of a linear term by zero")
        return self * (Fraction(1) / factor)

    def scale(self, factor: Number) -> "LinearTerm":
        """Return the term multiplied by ``factor`` (alias of ``*``)."""
        return self * factor

    # ------------------------------------------------------------------
    # Evaluation and substitution
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, Number]) -> Fraction:
        """Evaluate the term for the given variable assignment.

        Raises :class:`KeyError` when a variable of the term is not assigned.
        """
        total = self._constant
        for name, coefficient in self._coefficients.items():
            total += coefficient * to_fraction(assignment[name])
        return total

    def substitute(self, substitution: Mapping[str, "LinearTerm | Number"]) -> "LinearTerm":
        """Replace variables by terms or numbers and return the resulting term."""
        result = LinearTerm({}, self._constant)
        for name, coefficient in self._coefficients.items():
            if name in substitution:
                replacement = substitution[name]
                replacement_term = (
                    replacement
                    if isinstance(replacement, LinearTerm)
                    else LinearTerm.constant(replacement)
                )
                result = result + replacement_term * coefficient
            else:
                result = result + LinearTerm({name: coefficient}, 0)
        return result

    def rename(self, mapping: Mapping[str, str]) -> "LinearTerm":
        """Rename variables according to ``mapping`` (identity when absent)."""
        renamed: dict[str, Fraction] = {}
        for name, coefficient in self._coefficients.items():
            new_name = mapping.get(name, name)
            renamed[new_name] = renamed.get(new_name, Fraction(0)) + coefficient
        return LinearTerm(renamed, self._constant)

    # ------------------------------------------------------------------
    # Comparisons producing constraints (imported lazily to avoid cycles)
    # ------------------------------------------------------------------
    def __le__(self, other: "LinearTerm | Number"):
        from repro.constraints.atoms import AtomicConstraint, Relation

        return AtomicConstraint.compare(self, Relation.LE, _as_term_strict(other))

    def __lt__(self, other: "LinearTerm | Number"):
        from repro.constraints.atoms import AtomicConstraint, Relation

        return AtomicConstraint.compare(self, Relation.LT, _as_term_strict(other))

    def __ge__(self, other: "LinearTerm | Number"):
        from repro.constraints.atoms import AtomicConstraint, Relation

        return AtomicConstraint.compare(self, Relation.GE, _as_term_strict(other))

    def __gt__(self, other: "LinearTerm | Number"):
        from repro.constraints.atoms import AtomicConstraint, Relation

        return AtomicConstraint.compare(self, Relation.GT, _as_term_strict(other))

    def equals(self, other: "LinearTerm | Number"):
        """Return the equality constraint ``self == other``.

        Named ``equals`` rather than ``__eq__`` because ``__eq__`` implements
        structural equality of terms (needed for hashing and container use).
        """
        from repro.constraints.atoms import AtomicConstraint, Relation

        return AtomicConstraint.compare(self, Relation.EQ, _as_term_strict(other))

    # ------------------------------------------------------------------
    # Structural equality / hashing / representation
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LinearTerm):
            return NotImplemented
        return (
            self._coefficients == other._coefficients
            and self._constant == other._constant
        )

    def __hash__(self) -> int:
        if self._hash is None:
            items = tuple(sorted(self._coefficients.items()))
            self._hash = hash((items, self._constant))
        return self._hash

    def __repr__(self) -> str:
        return f"LinearTerm({self!s})"

    def __str__(self) -> str:
        parts: list[str] = []
        for name in sorted(self._coefficients):
            coefficient = self._coefficients[name]
            if coefficient == 1:
                parts.append(f"+ {name}")
            elif coefficient == -1:
                parts.append(f"- {name}")
            elif coefficient < 0:
                parts.append(f"- {-coefficient}*{name}")
            else:
                parts.append(f"+ {coefficient}*{name}")
        if self._constant != 0 or not parts:
            sign = "-" if self._constant < 0 else "+"
            parts.append(f"{sign} {abs(self._constant)}")
        text = " ".join(parts)
        if text.startswith("+ "):
            text = text[2:]
        return text


def _as_term(value: "LinearTerm | Number") -> "LinearTerm":
    """Convert ``value`` to a term, returning ``NotImplemented`` for foreign types."""
    if isinstance(value, LinearTerm):
        return value
    if isinstance(value, (int, float, Fraction)):
        return LinearTerm.constant(value)
    return NotImplemented  # type: ignore[return-value]


def _as_term_strict(value: "LinearTerm | Number") -> "LinearTerm":
    """Convert ``value`` to a term, raising for unsupported types."""
    term = _as_term(value)
    if term is NotImplemented:
        raise TypeError(f"cannot interpret {value!r} as a linear term")
    return term


def variables(*names: str) -> tuple[LinearTerm, ...]:
    """Convenience constructor for a tuple of variable terms.

    ``x, y = variables("x", "y")`` gives :class:`LinearTerm` handles that
    compose with ``+``/``-``/scalar ``*`` and whose comparisons build
    constraints: ``x + 2 * y <= 1`` is an :class:`AtomicConstraint`.
    """
    return tuple(LinearTerm.variable(name) for name in names)
