"""Fourier--Motzkin elimination for conjunctions of linear constraints.

This module implements the symbolic projection used as the exact baseline in
the paper (Proposition 4.3 compares the sampling-based reconstruction of a
projection against "the Fourier--Motzkin algorithm whose complexity is
O(2^(2^k)) where k is the number of projected variables").

Elimination works on :class:`~repro.constraints.tuples.GeneralizedTuple`
objects, i.e. conjunctions; projecting a full DNF relation eliminates the
variables in each disjunct independently
(:meth:`repro.constraints.relations.GeneralizedRelation.project`).

Semantics notes
---------------
* Equality constraints involving the eliminated variable are used as
  substitutions (Gaussian step) before the inequality combination step, which
  keeps the output small.
* Strict inequalities are preserved: the combination of a strict and a
  non-strict bound is strict.  Over the reals, Fourier--Motzkin is exact for
  mixed strict/non-strict systems.
* ``!=`` constraints mentioning the eliminated variable are dropped.  The
  projection of a set with a hyperplane removed equals the projection of the
  full set up to a measure-zero slice; all consumers of projections in this
  library (volume estimation, sampling, reconstruction) are insensitive to
  measure-zero differences.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Sequence

from repro.constraints.atoms import AtomicConstraint, Relation
from repro.constraints.terms import LinearTerm
from repro.constraints.tuples import GeneralizedTuple


class EliminationBudgetExceeded(RuntimeError):
    """Raised when Fourier--Motzkin exceeds its constraint-count budget.

    The doubly exponential blow-up of Fourier--Motzkin is precisely the cost
    the paper's sampling approach avoids; benchmarks (experiment E7) rely on
    this exception to report the blow-up instead of hanging.
    """


def eliminate_variable(
    tuple_: GeneralizedTuple,
    variable: str,
    max_constraints: int | None = None,
) -> GeneralizedTuple | None:
    """Eliminate one variable from a conjunction.

    Returns the projected conjunction over the remaining variables, or ``None``
    when the system is detected to be unsatisfiable during elimination.
    ``max_constraints`` optionally bounds the number of produced constraints
    (raising :class:`EliminationBudgetExceeded` beyond it).
    """
    if variable not in tuple_.variables:
        return tuple_
    remaining_order = tuple(name for name in tuple_.variables if name != variable)

    involved: list[AtomicConstraint] = []
    untouched: list[AtomicConstraint] = []
    for atom in tuple_.constraints:
        if variable in atom.variables():
            involved.append(atom)
        else:
            untouched.append(atom)

    if not involved:
        return GeneralizedTuple(untouched, remaining_order)

    # Gaussian step: use an equality to substitute the variable away.
    for atom in involved:
        if atom.relation is Relation.EQ:
            coefficient = atom.term.coefficient(variable)
            # atom: coeff * v + rest == 0  =>  v = -rest / coeff
            rest = atom.term - LinearTerm({variable: coefficient}, 0)
            replacement = rest * (Fraction(-1) / coefficient)
            substituted = [
                a.substitute({variable: replacement})
                for a in tuple_.constraints
                if a is not atom
            ]
            reduced = GeneralizedTuple(substituted, remaining_order).simplify()
            if reduced.is_syntactically_empty():
                return None
            return reduced

    lower_bounds: list[tuple[LinearTerm, bool]] = []  # v >= bound (strict?)
    upper_bounds: list[tuple[LinearTerm, bool]] = []  # v <= bound (strict?)
    for atom in involved:
        if atom.relation is Relation.NE:
            continue
        coefficient = atom.term.coefficient(variable)
        rest = atom.term - LinearTerm({variable: coefficient}, 0)
        strict = atom.relation is Relation.LT
        # atom: coeff*v + rest (<=|<) 0
        bound = rest * (Fraction(-1) / coefficient)
        if coefficient > 0:
            upper_bounds.append((bound, strict))
        else:
            lower_bounds.append((bound, strict))

    produced: list[AtomicConstraint] = list(untouched)
    for lower, lower_strict in lower_bounds:
        for upper, upper_strict in upper_bounds:
            strict = lower_strict or upper_strict
            relation = Relation.LT if strict else Relation.LE
            produced.append(AtomicConstraint(lower - upper, relation))
            if max_constraints is not None and len(produced) > max_constraints:
                raise EliminationBudgetExceeded(
                    f"elimination of {variable!r} produced more than "
                    f"{max_constraints} constraints"
                )

    reduced = GeneralizedTuple(produced, remaining_order).simplify()
    if reduced.is_syntactically_empty():
        return None
    return reduced


def eliminate_variables(
    tuple_: GeneralizedTuple,
    variables: Iterable[str],
    max_constraints: int | None = None,
) -> GeneralizedTuple | None:
    """Eliminate several variables in sequence (cheapest-first heuristic).

    Variables are eliminated in an order chosen greedily to minimise the
    number of lower-bound/upper-bound combinations at each step, a standard
    heuristic that keeps intermediate systems small without affecting
    correctness.
    """
    current: GeneralizedTuple | None = tuple_
    to_eliminate = [name for name in variables]
    while to_eliminate and current is not None:
        next_variable = _cheapest_variable(current, to_eliminate)
        to_eliminate.remove(next_variable)
        current = eliminate_variable(current, next_variable, max_constraints)
    return current


def project_tuple(
    tuple_: GeneralizedTuple,
    keep: Sequence[str],
    max_constraints: int | None = None,
) -> GeneralizedTuple | None:
    """Project a conjunction onto ``keep`` by eliminating every other variable."""
    eliminate = [name for name in tuple_.variables if name not in set(keep)]
    projected = eliminate_variables(tuple_, eliminate, max_constraints)
    if projected is None:
        return None
    return projected.with_variables(tuple(keep))


def is_satisfiable(tuple_: GeneralizedTuple) -> bool:
    """Exact satisfiability over the reals by eliminating every variable.

    The conjunction is satisfiable iff eliminating every variable does not
    derive a contradiction.  This is exponential in the worst case but exact,
    and serves as the ground-truth emptiness test for the unit tests; the
    geometric layer provides the scalable LP-based test.
    """
    result = eliminate_variables(tuple_, list(tuple_.variables))
    return result is not None


def _cheapest_variable(tuple_: GeneralizedTuple, candidates: Sequence[str]) -> str:
    """Pick the candidate whose elimination produces the fewest constraints."""
    best_name = candidates[0]
    best_cost: int | None = None
    for name in candidates:
        lowers = 0
        uppers = 0
        others = 0
        for atom in tuple_.constraints:
            if name not in atom.variables():
                others += 1
                continue
            if atom.relation is Relation.EQ:
                # An equality makes elimination essentially free.
                lowers, uppers = 0, 0
                others = len(tuple_.constraints) - 1
                break
            coefficient = atom.term.coefficient(name)
            if coefficient > 0:
                uppers += 1
            else:
                lowers += 1
        cost = others + lowers * uppers
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_name = name
    return best_name
