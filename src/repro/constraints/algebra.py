"""Symbolic relational algebra over generalized relations.

The constraint database model supports the classical relational algebra, with
each operator implemented symbolically on the DNF representation:

* ``select``     — add constraints (a selection condition) to every disjunct;
* ``project``    — existential quantification, by Fourier--Motzkin;
* ``join``       — natural join = conjunction on shared attributes;
* ``product``    — Cartesian product of relations with disjoint attributes;
* ``union`` / ``intersection`` / ``difference`` — boolean operations;
* ``rename``     — attribute renaming.

These symbolic operators are the *exact* baselines the paper's approximate
(sampling-based) operators of :mod:`repro.core` are measured against: exact
projection and difference can blow up symbolically, which is the motivation
for the sampling approach.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.constraints.atoms import AtomicConstraint
from repro.constraints.relations import GeneralizedRelation
from repro.constraints.tuples import GeneralizedTuple


def select(
    relation: GeneralizedRelation, condition: Iterable[AtomicConstraint]
) -> GeneralizedRelation:
    """Selection: keep only the points satisfying every constraint in ``condition``."""
    constraints = tuple(condition)
    extra_variables: set[str] = set()
    for constraint in constraints:
        extra_variables |= constraint.variables()
    unknown = extra_variables - set(relation.variables)
    if unknown:
        raise ValueError(
            f"selection mentions attributes {sorted(unknown)} absent from the relation"
        )
    condition_tuple = GeneralizedTuple(constraints, relation.variables)
    selected = [disjunct.conjoin(condition_tuple) for disjunct in relation.disjuncts]
    return GeneralizedRelation(selected, relation.variables).simplify()


def project(relation: GeneralizedRelation, attributes: Sequence[str]) -> GeneralizedRelation:
    """Projection onto ``attributes`` (exact, via Fourier--Motzkin)."""
    return relation.project(attributes)


def rename(relation: GeneralizedRelation, mapping: Mapping[str, str]) -> GeneralizedRelation:
    """Rename attributes according to ``mapping``."""
    return relation.rename(mapping)


def union(left: GeneralizedRelation, right: GeneralizedRelation) -> GeneralizedRelation:
    """Union of two relations over the same attributes."""
    _check_same_attributes(left, right, "union")
    return left.union(right.with_variables(left.variables))


def intersection(left: GeneralizedRelation, right: GeneralizedRelation) -> GeneralizedRelation:
    """Intersection of two relations over the same attributes."""
    _check_same_attributes(left, right, "intersection")
    return left.intersection(right.with_variables(left.variables)).with_variables(left.variables)


def difference(left: GeneralizedRelation, right: GeneralizedRelation) -> GeneralizedRelation:
    """Difference ``left \\ right`` of two relations over the same attributes."""
    _check_same_attributes(left, right, "difference")
    return left.difference(right.with_variables(left.variables)).with_variables(left.variables)


def product(left: GeneralizedRelation, right: GeneralizedRelation) -> GeneralizedRelation:
    """Cartesian product of relations with disjoint attribute sets."""
    return left.product(right)


def natural_join(left: GeneralizedRelation, right: GeneralizedRelation) -> GeneralizedRelation:
    """Natural join: conjunction over the union of attributes.

    Shared attributes are identified (as in the classical natural join); when
    there is no shared attribute the join degenerates to the Cartesian product.
    """
    # Shared attributes are identified implicitly: both operands use the same
    # variable names for them, so the conjunction equates them for free.
    order = list(left.variables)
    for name in right.variables:
        if name not in order:
            order.append(name)
    joined = [
        lhs.conjoin(rhs).with_variables(tuple(order))
        for lhs in left.disjuncts
        for rhs in right.disjuncts
    ]
    if not left.disjuncts or not right.disjuncts:
        return GeneralizedRelation.empty(tuple(order))
    return GeneralizedRelation(joined, tuple(order))


def semijoin(left: GeneralizedRelation, right: GeneralizedRelation) -> GeneralizedRelation:
    """Semijoin: the part of ``left`` that joins with ``right``."""
    return natural_join(left, right).project(left.variables)


def _check_same_attributes(
    left: GeneralizedRelation, right: GeneralizedRelation, operation: str
) -> None:
    if set(left.variables) != set(right.variables):
        raise ValueError(
            f"{operation} requires identical attribute sets, got "
            f"{left.variables} and {right.variables}"
        )
