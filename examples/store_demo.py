"""Persistent store demo: restart-warm serving and incremental invalidation.

Run with ``PYTHONPATH=src python examples/store_demo.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import ServiceSession
from repro.constraints import ConstraintDatabase
from repro.constraints.relations import GeneralizedRelation
from repro.queries import QAnd, QRelation


def _database() -> ConstraintDatabase:
    db = ConstraintDatabase()
    db.set_relation("districts", GeneralizedRelation.box({"x": (0, 2), "y": (0, 1)}))
    db.set_relation("zones", GeneralizedRelation.box({"x": (0, 1.5), "y": (0, 1)}))
    return db


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "results.db"
        districts = QRelation("districts", ("x", "y"))
        zones = QRelation("zones", ("x", "y"))
        overlap = QAnd((districts, zones))

        # 1. A session over a store path persists every answer it computes.
        session = ServiceSession(_database(), store=store_path)
        for query, label in ((districts, "districts"), (zones, "zones"), (overlap, "overlap")):
            print(f"area({label}) = {session.volume(query).value:.3f}")
        print(f"store holds {len(session.store)} entries at {store_path.name}")
        session.store.close()

        # 2. A "restarted process": a brand-new session over the same file
        #    warms itself from disk and serves without recomputing.
        restarted = ServiceSession(_database(), store=store_path)
        value = restarted.volume(districts).value
        print(
            f"restart: area(districts) = {value:.3f} "
            f"({restarted.cache.hits} cache hit, 0 plans executed)"
        )

        # 3. Plan-aware invalidation: growing `zones` drops only the entries
        #    whose plans reference it — the districts entry survives on disk.
        restarted.update_relation(
            "zones", GeneralizedRelation.box({"x": (0, 3), "y": (0, 1)})
        )
        survivors = [(key[:12], relations) for key, _, relations in restarted.store.entries()]
        print(f"after mutating zones, surviving entries: {survivors}")
        print(f"area(zones) now = {restarted.volume(zones).value:.3f} (recomputed)")
        print(f"area(districts) = {restarted.volume(districts).value:.3f} (still cached)")
        print(
            "store invalidations recorded: "
            f"{restarted.metrics.snapshot()['store_invalidations']}"
        )
        restarted.store.close()


if __name__ == "__main__":
    main()
