"""GIS-style overlap analysis: approximate aggregates over a synthetic map.

The paper's motivating application: statistical queries over spatial data
("how much of district 1 lies inside the flood zone?") answered by sampling
instead of symbolic evaluation.  Run with
``python examples/gis_overlap_analysis.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core import GeneratorParams
from repro.queries import QAnd, QRelation, QueryEngine, overlap_fraction
from repro.workloads import synthetic_map


def main() -> None:
    rng = np.random.default_rng(11)
    world = synthetic_map(district_count=3, zone_count=2, corridor_count=1, rng=np.random.default_rng(3))
    engine = QueryEngine(world.database, params=GeneratorParams(epsilon=0.2, delta=0.1))

    print("synthetic map features:", ", ".join(world.feature_names()))

    # Exact vs approximate area of each district.
    for district in world.districts:
        query = QRelation(district, ("x", "y"))
        exact = engine.volume(query, mode="exact").value
        approx = engine.volume(query, mode="approximate", rng=rng).value
        print(f"{district}: exact area {exact:8.3f}   sampled estimate {approx:8.3f}   "
              f"error {abs(approx - exact) / exact:6.1%}")

    # Overlap between the first district and each zone (a decision-support aggregate).
    district = world.districts[0]
    for zone in world.zones:
        query = QAnd((QRelation(district, ("x", "y")), QRelation(zone, ("x", "y"))))
        exact = engine.volume(query, mode="exact").value
        if exact < 1e-9:
            print(f"{district} ∩ {zone}: no overlap")
            continue
        fraction = overlap_fraction(district, zone, world.database, epsilon=0.2, delta=0.1, rng=rng)
        print(f"{district} ∩ {zone}: exact overlap area {exact:.3f}, "
              f"estimated covered fraction of the district {fraction.value:.1%}")


if __name__ == "__main__":
    main()
