"""The logical plan IR in action: canonicalization, rewrites, explain, sharing.

Builds a small GIS-style database, shows how structurally different spellings
of the same query canonicalize to one plan digest, what the rewriter does to
a messy query (constraint pushdown, double-negation and duplicate-disjunct
elimination), and prints ``QueryEngine.explain`` output — the per-node
route/cost annotations plus the service planner's whole-query verdict.
Finally it serves a small batch with a shared subexpression and reads the
sharing counters back from the service metrics.

Run with::

    PYTHONPATH=src python examples/plan_demo.py
"""

from __future__ import annotations

from repro.constraints import ConstraintDatabase, parse_relation
from repro.constraints.terms import variables
from repro.core import GeneratorParams
from repro.plan import build_plan, plan_digest, rewrite_plan
from repro.queries import QueryEngine
from repro.queries.ast import QAnd, QConstraint, QNot, QOr, QRelation
from repro.service import BatchRequest, Planner, ServiceSession

x, y = variables("x", "y")


def _database() -> ConstraintDatabase:
    db = ConstraintDatabase()
    db.set_relation(
        "base_map",
        parse_relation(
            "0 <= a <= 1 and 0 <= b <= 1 or 2 <= a <= 3 and 0 <= b <= 1", ["a", "b"]
        ),
    )
    db.set_relation("zone1", parse_relation("4 <= a <= 6 and 0 <= b <= 1", ["a", "b"]))
    db.set_relation("zone2", parse_relation("7 <= a <= 9 and 0 <= b <= 1", ["a", "b"]))
    return db


def main() -> None:
    db = _database()
    engine = QueryEngine(db, params=GeneratorParams(epsilon=0.3, delta=0.2))
    base = QRelation("base_map", ("x", "y"))
    zone1 = QRelation("zone1", ("x", "y"))
    zone2 = QRelation("zone2", ("x", "y"))

    print("== Canonicalization: spelling does not matter ==")
    spelled_one_way = QAnd((base, zone1)).or_(zone2)
    spelled_another = QOr((zone2, QAnd((zone1, base))))
    print("digest 1:", plan_digest(spelled_one_way)[:16], "…")
    print("digest 2:", plan_digest(spelled_another)[:16], "…")
    assert plan_digest(spelled_one_way) == plan_digest(spelled_another)

    print("\n== Rewrites: pushdown, double negation, duplicate disjuncts ==")
    messy = QOr(
        (
            QAnd((base, QConstraint(x <= 0.5), QNot(QNot(zone1)))),
            QAnd((base, QConstraint(x <= 0.5), zone1)),  # duplicate disjunct
        )
    )
    plan = rewrite_plan(build_plan(messy), db)
    print("rewritten plan key:", plan.key)

    print("\n== explain(): routes, costs, digests, the planner's verdict ==")
    query = QOr((base, QAnd((zone1, QNot(zone2)))))
    explanation = engine.explain(query)
    print(explanation.render())
    verdict = explanation.service_plan
    print(f"service plan: {verdict.estimator} (budget {verdict.sample_budget})")
    print(f"reason: {verdict.reason}")

    print("\n== Subplan sharing across a batch ==")
    session = ServiceSession(
        db,
        params=GeneratorParams(epsilon=0.3, delta=0.2),
        planner=Planner(exact_dimension_limit=0, monte_carlo_dimension_limit=0),
    )
    shared_queries = [QOr((base, zone1)), QOr((base, zone2))]
    outcomes = session.submit_batch(
        [BatchRequest(q) for q in shared_queries], rng=7
    )
    for query, outcome in zip(shared_queries, outcomes):
        print(f"vol({query!r}) ≈ {outcome.result.value:.3f}")
    snapshot = session.metrics.snapshot()
    print(
        "subplan cache: "
        f"{snapshot['subplan_hits']} hit(s), "
        f"{snapshot['subplan_stores']} store(s) — the shared base_map scan "
        "was estimated once"
    )


if __name__ == "__main__":
    main()
