"""Geometric #DNF: estimate the satisfying mass of a DNF formula by sampling.

Section 4.1.3 of the paper encodes propositional formulas geometrically
(literal x -> 3/4 < x < 1, literal ¬x -> 0 < x < 1/4).  A DNF formula becomes
a union of boxes whose volume the union estimator (the geometric Karp--Luby
scheme) recovers — the continuous analogue of approximate #DNF counting.

Run with ``python examples/sat_model_counting.py``.  Set ``REPRO_SMOKE=1``
for a loose-accuracy run on the smaller formulas only (CI executes every
example this way).
"""

from __future__ import annotations

import os

import numpy as np

from repro.core import GeneratorParams
from repro.queries.compiler import observable_from_relation
from repro.workloads import (
    dnf_geometric_volume,
    dnf_satisfying_fraction,
    dnf_to_relation,
    random_dnf,
)


def main() -> None:
    rng = np.random.default_rng(13)
    smoke = bool(os.environ.get("REPRO_SMOKE"))
    params = GeneratorParams(epsilon=0.4 if smoke else 0.2, delta=0.1)
    sizes = [(4, 4)] if smoke else [(4, 4), (5, 6), (6, 8)]

    for variable_count, term_count in sizes:
        formula = random_dnf(variable_count, term_count, literals_per_term=3, rng=rng)
        relation = dnf_to_relation(formula)

        exact_volume = dnf_geometric_volume(formula)
        exact_fraction = dnf_satisfying_fraction(formula)

        plan = observable_from_relation(relation, params=params)
        if hasattr(plan, "max_volume_trials"):
            plan.max_volume_trials = 4000
        estimate = plan.estimate_volume(rng=rng)

        print(f"DNF with {variable_count} variables, {term_count} terms:")
        print(f"  satisfying fraction (brute force): {exact_fraction:.4f}")
        print(f"  geometric volume     exact: {exact_volume:.5f}   "
              f"estimated: {estimate.value:.5f}   "
              f"relative error {abs(estimate.value - exact_volume) / exact_volume:.1%}")
        print(f"  sampling work: {estimate.samples_used} generated points")
        print()


if __name__ == "__main__":
    main()
