"""Serving layer demo: plans, cache hits and deterministic batches.

Run with ``PYTHONPATH=src python examples/service_demo.py``.
"""

from __future__ import annotations

import numpy as np

from repro import GeneratorParams, ServiceSession
from repro.harness import service_metrics_result
from repro.queries import QAnd, QRelation
from repro.service import BatchRequest
from repro.workloads import synthetic_map


def main() -> None:
    world = synthetic_map(
        district_count=3, zone_count=2, corridor_count=1,
        rng=np.random.default_rng(7),
    )
    session = ServiceSession(
        world.database, params=GeneratorParams(gamma=0.25, epsilon=0.25, delta=0.15)
    )

    # 1. The planner explains its route before anything runs.
    district = QRelation(world.districts[0], ("x", "y"))
    plan = session.explain(district)
    print(f"plan for area({world.districts[0]}): {plan.estimator}")
    print(f"  reason: {plan.reason}")

    # 2. First request computes; the repeat — even with the operands of the
    #    conjunction swapped — is served from the cache.
    zone = QRelation(world.zones[0], ("x", "y"))
    overlap = QAnd((district, zone))
    swapped = QAnd((zone, district))
    first = session.volume(district, rng=1)
    again = session.volume(district, rng=2)
    print(f"area = {first.value:.3f} (repeat served from cache: {again is first})")

    # 3. A batch fans misses out over worker threads; per-request random
    #    streams are derived upfront, so a fixed seed gives bit-identical
    #    results for any worker count.
    requests = [BatchRequest(QRelation(name, ("x", "y"))) for name in world.feature_names()]
    requests.append(BatchRequest(overlap))
    requests.append(BatchRequest(swapped))  # coalesces with `overlap`
    outcomes = session.submit_batch(requests, workers=4, rng=42)
    for outcome, request in zip(outcomes, requests):
        source = "cache" if outcome.cached else outcome.plan.estimator
        print(f"  batch[{outcome.index}] = {outcome.result.value:8.3f}   ({source})")

    # 4. Metrics feed the same table machinery as the paper experiments.
    print()
    print(service_metrics_result(session.metrics).to_text())


if __name__ == "__main__":
    main()
