"""Adaptive estimation demo: stop when certified, refine instead of recompute.

A coarse volume request is answered by the confidence-sequence route with a
small fraction of the fixed Chernoff budget; a later, tighter request for the
*same* query is then served by **continuing** the cached sample stream in
place — the service never starts over.

Run with ``PYTHONPATH=src python examples/adaptive_demo.py``.
"""

from __future__ import annotations

from repro import GeneratorParams, Planner, ServiceSession
from repro.queries import QRelation
from repro.volume.chernoff import chernoff_ratio_sample_size
from repro.workloads import dumbbell


def main() -> None:
    workload = dumbbell(4)
    from repro.constraints.database import ConstraintDatabase

    database = ConstraintDatabase()
    database.set_relation("D", workload.relation)
    query = QRelation("D", workload.relation.variables)

    session = ServiceSession(
        database,
        params=GeneratorParams(epsilon=0.2, delta=0.1),
        planner=Planner(adaptive=True),
    )

    # 1. The planner picks the adaptive route and caps it at the budget a
    #    fixed estimator would commit up front.
    plan = session.explain(query)
    print(f"plan: {plan.estimator} (cap {plan.sample_budget} samples)")
    print(f"  reason: {plan.reason}")

    # 2. The coarse request stops as soon as ε = 0.2 is *certified* — far
    #    below the fixed budget, because the dumbbell fills two thirds of
    #    its bounding box.
    fixed_budget = chernoff_ratio_sample_size(0.2, 0.1, 0.05)
    coarse = session.volume(query, epsilon=0.2, rng=11)
    assert coarse.estimate is not None
    print(
        f"eps=0.20: volume ~ {coarse.value:.4f} after "
        f"{coarse.estimate.samples_used} samples "
        f"(fixed budget: {fixed_budget}, exact: {workload.exact_volume:.4f})"
    )

    # 3. The tighter request refines the cached answer in place: the
    #    confidence sequence is valid at every checkpoint simultaneously, so
    #    continuing the same stream to ε = 0.05 is statistically free and
    #    only the *difference* in samples is drawn.
    refined = session.volume(query, epsilon=0.05, rng=12)
    assert refined.estimate is not None
    new = refined.estimate.details["new_samples"]
    total = refined.estimate.samples_used
    print(
        f"eps=0.05: volume ~ {refined.value:.4f} after {new} additional samples "
        f"(stream total {total}; a cold run would draw all {total})"
    )
    print(f"refinements served: {session.metrics.refinements}")

    # 4. Intermediate accuracies now hit the refined entry by ε-dominance.
    session.volume(query, epsilon=0.1)
    print(f"eps=0.10: served from cache (hits: {session.metrics.cache_hits})")


if __name__ == "__main__":
    main()
