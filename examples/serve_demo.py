"""Serving front end demo: launch a server, stream an anytime query, scrape metrics.

Run with ``PYTHONPATH=src python examples/serve_demo.py``.

The demo starts a real :class:`~repro.serving.server.ServingServer` on an
ephemeral port (the same thing ``repro serve`` runs), then acts as three
different clients against it:

1. a plain ``POST /v1/query`` — one JSON answer, served exactly;
2. an anytime ``POST /v1/stream`` — certified ``(estimate, eps)``
   checkpoints arriving as the adaptive estimator tightens, then a final
   bit-identical to the in-process batch path;
3. a Prometheus scrape of ``GET /metrics``.

Set ``REPRO_SMOKE=1`` to run the streamed query at a looser ε (CI executes
every example this way).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import threading

from repro.serving import ServingConfig, ServingServer

SMOKE = bool(os.environ.get("REPRO_SMOKE"))


def start_server(config: ServingConfig) -> tuple[ServingServer, int, threading.Event]:
    """Host the server on a daemon thread; returns (server, port, stop event)."""
    holder: dict = {}
    ready = threading.Event()

    def run() -> None:
        async def main():
            server = ServingServer(config)
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            holder["port"] = await server.start()
            ready.set()
            await holder["stop"].wait()
            await server.stop()

        asyncio.run(main())

    threading.Thread(target=run, daemon=True).start()
    ready.wait(timeout=15)
    stop = threading.Event()

    def shutdown() -> None:
        holder["loop"].call_soon_threadsafe(holder["stop"].set)

    stop.shutdown = shutdown  # type: ignore[attr-defined]
    return holder["server"], holder["port"], stop


def main() -> None:
    config = ServingConfig(
        port=0,
        workers=2,
        database_relations={
            "Zone": "0 <= x <= 2 and 0 <= y <= 1",
            "Hyper": "0 <= x <= 1 and 0 <= y <= 1 and 0 <= z <= 1 and 0 <= w <= 1",
        },
    )
    server, port, stop = start_server(config)
    print(f"server listening on 127.0.0.1:{port}")

    # 1. One plain query: 2-d, so the planner answers exactly.
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    connection.request(
        "POST", "/v1/query", body=json.dumps({"query": "Zone(x, y) and x <= 1/2"})
    )
    payload = json.loads(connection.getresponse().read())
    connection.close()
    print(f"volume(Zone and x <= 1/2) = {payload['value']} (exact: {payload['exact']})")

    # 2. An anytime stream: 4-d routes onto the adaptive estimator, and the
    #    certified checkpoints arrive as NDJSON events.
    epsilon = 0.2 if SMOKE else 0.08
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=300)
    connection.request(
        "POST",
        "/v1/stream",
        body=json.dumps(
            {
                "query": "Hyper(x, y, z, w) and x + y + z + w <= 2",
                "epsilon": epsilon,
                "seed": 7,
            }
        ),
    )
    response = connection.getresponse()
    for line in response.read().decode().splitlines():
        if not line.strip():
            continue
        event = json.loads(line)
        if event["event"] == "accepted":
            print(f"stream accepted (route: {event['route']}, target eps {epsilon})")
        elif event["event"] == "checkpoint":
            print(f"  checkpoint: estimate {event['estimate']:.4f} at eps {event['eps']}")
        elif event["event"] == "final":
            print(
                f"  final: {event['value']:.6f} "
                f"(certified eps {event['certified_epsilon']}, "
                f"{event['samples_used']} samples)"
            )
    connection.close()

    # 3. A Prometheus scrape, as a monitoring stack would do it.
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    connection.request("GET", "/metrics")
    exposition = connection.getresponse().read().decode()
    connection.close()
    print("metrics scrape (serving lines):")
    for line in exposition.splitlines():
        if line.startswith("repro_serving") and "_total" in line:
            print(f"  {line}")

    stop.shutdown()  # type: ignore[attr-defined]


if __name__ == "__main__":
    main()
