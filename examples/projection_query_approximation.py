"""Approximating a projection query: the paper's example ∃z[(R1 ∧ R2) ∨ R4].

The classical (symbolic) route eliminates the quantifier with Fourier--Motzkin;
the paper's route samples the result through the projection generator
(Algorithm 2) and reconstructs its shape as a union of convex hulls
(Algorithms 4--5).  This example runs both and compares them.

Run with ``python examples/projection_query_approximation.py``.
"""

from __future__ import annotations

import numpy as np

from repro.constraints import ConstraintDatabase, parse_relation
from repro.core import GeneratorParams, relation_membership, symmetric_difference_volume
from repro.geometry.volume import relation_volume_exact
from repro.queries import QAnd, QExists, QOr, QRelation, QueryEngine


def main() -> None:
    rng = np.random.default_rng(5)

    # The constraint database of the paper's Section 4.3.2 example.
    database = ConstraintDatabase()
    database.set_relation("R1", parse_relation("0 <= a <= 1 and 0 <= b <= 1", ["a", "b"]))
    database.set_relation("R2", parse_relation("0 <= a <= 1 and 0 <= b <= 2", ["a", "b"]))
    database.set_relation("R4", parse_relation("2 <= a <= 3 and 0 <= b <= 1", ["a", "b"]))

    engine = QueryEngine(database, params=GeneratorParams(epsilon=0.25, delta=0.1))

    # The query  ∃z [(R1(x, z) ∧ R2(z, y)) ∨ R4(x, y)].
    # (The paper writes the second disjunct as R4(x, z); taken literally its
    # projection is an unbounded cylinder in y, so this example uses the
    # bounded variant R4(x, y) to keep the exact result well-bounded.)
    query = QExists(
        ("z",),
        QOr((
            QAnd((QRelation("R1", ("x", "z")), QRelation("R2", ("z", "y")))),
            QRelation("R4", ("x", "y")),
        )),
    )

    # Exact symbolic evaluation (quantifier elimination).
    exact = engine.evaluate_exact(query)
    exact_volume = relation_volume_exact(exact)
    print("exact result:", exact)
    print(f"exact volume: {exact_volume:.3f}")

    # Sampling-based evaluation: draw points of the result without materialising it.
    points = engine.sample_result(query, 300, rng=rng)
    print("sampled", len(points), "points of the result; bounding box:",
          points.min(axis=0).round(2), "to", points.max(axis=0).round(2))

    # Shape reconstruction: union of convex hulls (Algorithm 5).
    estimate = engine.reconstruct(query, samples_per_component=400, rng=rng)
    print(f"reconstruction: {len(estimate.hulls)} hull(s), "
          f"total hull volume {estimate.total_hull_volume:.3f}")

    # Quality: Monte-Carlo estimate of the symmetric difference.
    sym_diff = symmetric_difference_volume(
        relation_membership(estimate.relation),
        relation_membership(exact),
        [(-0.5, 3.5), (-0.5, 2.5)],
        samples=6000,
        rng=rng,
    )
    print(f"symmetric difference vs exact result: {sym_diff:.3f} "
          f"({sym_diff / exact_volume:.1%} of the exact volume)")


if __name__ == "__main__":
    main()
