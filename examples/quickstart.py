"""Quickstart: define a constraint relation, sample it, estimate its volume.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import numpy as np

from repro import GeneratorParams, parse_relation
from repro.core import ConvexObservable, UnionObservable
from repro.geometry.volume import relation_volume_exact


def main() -> None:
    rng = np.random.default_rng(42)
    params = GeneratorParams(gamma=0.25, epsilon=0.2, delta=0.1)

    # 1. Define a generalized relation with the small textual language:
    #    an L-shaped region given as the union (DNF) of two boxes.
    relation = parse_relation(
        "0 <= x <= 2 and 0 <= y <= 1 or 0 <= x <= 1 and 1 <= y <= 3"
    )
    print("relation:", relation)
    print("exact volume (inclusion-exclusion):", relation_volume_exact(relation))

    # 2. Wrap each convex disjunct as an observable relation and compose them
    #    with the union generator (Theorem 4.1).
    members = [ConvexObservable(disjunct, params=params, sampler="hit_and_run")
               for disjunct in relation.disjuncts]
    union = UnionObservable(members, params=params)

    # 3. Generate almost uniform points of the union.
    points = union.generate_many(500, rng)
    print("generated", len(points), "points; mean =", points.mean(axis=0).round(3))

    # 4. Estimate the volume with a relative (1 + epsilon) guarantee.
    estimate = union.estimate_volume(rng=rng)
    print(f"estimated volume = {estimate.value:.3f} "
          f"(method {estimate.method}, {estimate.samples_used} samples)")


if __name__ == "__main__":
    main()
